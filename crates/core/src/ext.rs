//! The paper's §7 future-work model, implemented: a delivery **window**
//! `[d_lo, d_hi]` in place of the single bound `d`, and **per-process** step
//! bounds `(c1, c2)` for the transmitter and the receiver.
//!
//! > "For example, we can replace `d` by two constants, `d1 ≤ d2`, that
//! > determine the time range in which a packet is delivered, or we can
//! > assume that each process is associated with its own `c1` and `c2`."
//!
//! The interesting consequence for the r-passive protocol: Figure 3's
//! `δ1`-step wait exists to ensure burst `i` is fully delivered before any
//! packet of burst `i+1` arrives. With a minimum delay `d_lo > 0` that
//! requirement weakens to
//!
//! ```text
//! t_last_send(i) + d_hi  ≤  t_first_send(i+1) + d_lo
//! ```
//!
//! i.e. a send gap of only `d_hi - d_lo`, which needs
//! `⌈(d_hi - d_lo)/c1⌉` inter-burst steps instead of `δ1 = ⌈d_hi/c1⌉`.
//! As `d_lo → d_hi` (a nearly deterministic channel) the wait phase
//! vanishes and the r-passive effort halves to `δ1·c2 / b` — experiment E8
//! measures exactly this.

use crate::action::Message;
use crate::params::{ParamError, TimingParams};
use crate::protocols::beta::{BetaReceiver, BetaTransmitter};
use crate::protocols::ProtocolError;
use core::fmt;
use rstp_automata::TimeDelta;

/// Step bounds `(c1, c2)` for one process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ProcessTiming {
    c1: TimeDelta,
    c2: TimeDelta,
}

impl ProcessTiming {
    /// Validates `0 < c1 ≤ c2`.
    ///
    /// # Errors
    ///
    /// [`ParamError`] on violation.
    pub fn new(c1: TimeDelta, c2: TimeDelta) -> Result<Self, ParamError> {
        if c1.is_zero() {
            return Err(ParamError::new("c1 must be positive"));
        }
        if c1 > c2 {
            return Err(ParamError::new(format!("c1 = {c1} exceeds c2 = {c2}")));
        }
        Ok(ProcessTiming { c1, c2 })
    }

    /// Convenience constructor from ticks.
    ///
    /// # Errors
    ///
    /// Same as [`ProcessTiming::new`].
    pub fn from_ticks(c1: u64, c2: u64) -> Result<Self, ParamError> {
        ProcessTiming::new(TimeDelta::from_ticks(c1), TimeDelta::from_ticks(c2))
    }

    /// Minimum step spacing.
    #[must_use]
    pub fn c1(self) -> TimeDelta {
        self.c1
    }

    /// Maximum step spacing.
    #[must_use]
    pub fn c2(self) -> TimeDelta {
        self.c2
    }
}

/// The §7 parameter set: per-process step bounds and a delivery window.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TimingParamsExt {
    transmitter: ProcessTiming,
    receiver: ProcessTiming,
    d_lo: TimeDelta,
    d_hi: TimeDelta,
}

impl TimingParamsExt {
    /// Validates `d_lo ≤ d_hi` and `max(c2) ≤ d_hi` (the analogue of the
    /// paper's `c2 ≤ d`).
    ///
    /// # Errors
    ///
    /// [`ParamError`] on violation.
    pub fn new(
        transmitter: ProcessTiming,
        receiver: ProcessTiming,
        d_lo: TimeDelta,
        d_hi: TimeDelta,
    ) -> Result<Self, ParamError> {
        if d_lo > d_hi {
            return Err(ParamError::new(format!(
                "d_lo = {d_lo} exceeds d_hi = {d_hi}"
            )));
        }
        let max_c2 = transmitter.c2.max(receiver.c2);
        if max_c2 > d_hi {
            return Err(ParamError::new(format!(
                "max process c2 = {max_c2} exceeds d_hi = {d_hi}"
            )));
        }
        Ok(TimingParamsExt {
            transmitter,
            receiver,
            d_lo,
            d_hi,
        })
    }

    /// Lifts a classical triple into the extended model
    /// (`d_lo = 0`, identical processes).
    #[must_use]
    pub fn from_classic(params: TimingParams) -> Self {
        let pt = ProcessTiming {
            c1: params.c1(),
            c2: params.c2(),
        };
        TimingParamsExt {
            transmitter: pt,
            receiver: pt,
            d_lo: TimeDelta::ZERO,
            d_hi: params.d(),
        }
    }

    /// The transmitter's step bounds.
    #[must_use]
    pub fn transmitter(self) -> ProcessTiming {
        self.transmitter
    }

    /// The receiver's step bounds.
    #[must_use]
    pub fn receiver(self) -> ProcessTiming {
        self.receiver
    }

    /// The minimum delivery delay.
    #[must_use]
    pub fn d_lo(self) -> TimeDelta {
        self.d_lo
    }

    /// The maximum delivery delay.
    #[must_use]
    pub fn d_hi(self) -> TimeDelta {
        self.d_hi
    }

    /// The window width `d_hi - d_lo` — the channel's *delay uncertainty*,
    /// which is what the r-passive wait phase actually pays for.
    #[must_use]
    pub fn window(self) -> TimeDelta {
        self.d_hi - self.d_lo
    }

    /// The transmitter's `δ1`: most transmitter steps within `d_hi`.
    #[must_use]
    pub fn delta1(self) -> u64 {
        self.d_hi.div_ceil(self.transmitter.c1)
    }

    /// The transmitter's `δ2`: fewest transmitter steps within `d_hi`.
    #[must_use]
    pub fn delta2(self) -> u64 {
        self.d_hi.div_floor(self.transmitter.c2).max(1)
    }

    /// The collapse to a classical triple that stays safe in this model:
    /// `(min c1, max c2, d_hi)`.
    ///
    /// # Errors
    ///
    /// [`ParamError`] if the collapsed triple violates `c2 ≤ d` (cannot
    /// happen for values accepted by [`TimingParamsExt::new`]).
    pub fn conservative(self) -> Result<TimingParams, ParamError> {
        TimingParams::new(
            self.transmitter.c1.min(self.receiver.c1),
            self.transmitter.c2.max(self.receiver.c2),
            self.d_hi,
        )
    }

    /// The wait-phase length (in transmitter steps) that the window model
    /// actually requires between bursts: enough steps that the send gap is
    /// at least `d_hi - d_lo`, i.e. `wait = max(0, ⌈window/c1⌉ - 1)`
    /// (the `-1` because the next burst's own first send adds one step of
    /// spacing).
    #[must_use]
    pub fn ext_passive_wait_steps(self) -> u64 {
        if self.window().is_zero() {
            return 0;
        }
        self.window()
            .div_ceil(self.transmitter.c1)
            .saturating_sub(1)
    }

    /// Builds the window-optimized r-passive transmitter: bursts of `δ1`
    /// packets separated by only [`ext_passive_wait_steps`] waits.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BetaTransmitter::with_shape`].
    ///
    /// [`ext_passive_wait_steps`]: TimingParamsExt::ext_passive_wait_steps
    pub fn passive_transmitter(
        self,
        k: u64,
        input: &[Message],
    ) -> Result<BetaTransmitter, ProtocolError> {
        BetaTransmitter::with_shape(k, self.delta1(), self.ext_passive_wait_steps(), input)
    }

    /// The matching receiver (identical to the classical `A^β(k)` receiver
    /// for this burst size).
    ///
    /// # Errors
    ///
    /// Same conditions as [`BetaReceiver::with_burst`].
    pub fn passive_receiver(
        self,
        k: u64,
        expected_bits: usize,
    ) -> Result<BetaReceiver, ProtocolError> {
        BetaReceiver::with_burst(k, self.delta1(), expected_bits)
    }

    /// Upper bound on the window-optimized r-passive effort:
    /// `(δ1 + wait) · c2_t / ⌊log2 μ_k(δ1)⌋` — reduces to the paper's
    /// `2·δ1·c2 / b` at `d_lo = 0` and to `δ1·c2 / b` at `d_lo = d_hi`.
    #[must_use]
    pub fn ext_passive_upper(self, k: u64) -> f64 {
        let delta1 = self.delta1();
        let round = delta1 + self.ext_passive_wait_steps();
        (round as f64) * (self.transmitter.c2.ticks() as f64)
            / f64::from(crate::bounds::block_bits(k, delta1))
    }
}

impl fmt::Display for TimingParamsExt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t:[{},{}] r:[{},{}] d:[{},{}]",
            self.transmitter.c1.ticks(),
            self.transmitter.c2.ticks(),
            self.receiver.c1.ticks(),
            self.receiver.c2.ticks(),
            self.d_lo.ticks(),
            self.d_hi.ticks()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dt(n: u64) -> TimeDelta {
        TimeDelta::from_ticks(n)
    }

    fn ext(c1t: u64, c2t: u64, c1r: u64, c2r: u64, dlo: u64, dhi: u64) -> TimingParamsExt {
        TimingParamsExt::new(
            ProcessTiming::from_ticks(c1t, c2t).unwrap(),
            ProcessTiming::from_ticks(c1r, c2r).unwrap(),
            dt(dlo),
            dt(dhi),
        )
        .unwrap()
    }

    #[test]
    fn process_timing_validation() {
        assert!(ProcessTiming::from_ticks(0, 1).is_err());
        assert!(ProcessTiming::from_ticks(2, 1).is_err());
        let p = ProcessTiming::from_ticks(1, 2).unwrap();
        assert_eq!(p.c1().ticks(), 1);
        assert_eq!(p.c2().ticks(), 2);
    }

    #[test]
    fn ext_validation() {
        let pt = ProcessTiming::from_ticks(1, 2).unwrap();
        assert!(TimingParamsExt::new(pt, pt, dt(5), dt(4)).is_err()); // d_lo > d_hi
        assert!(TimingParamsExt::new(pt, pt, dt(0), dt(1)).is_err()); // c2 > d_hi
        assert!(TimingParamsExt::new(pt, pt, dt(0), dt(2)).is_ok());
    }

    #[test]
    fn from_classic_roundtrip() {
        let p = TimingParams::from_ticks(2, 3, 12).unwrap();
        let e = TimingParamsExt::from_classic(p);
        assert_eq!(e.d_lo(), TimeDelta::ZERO);
        assert_eq!(e.d_hi().ticks(), 12);
        assert_eq!(e.delta1(), p.delta1());
        assert_eq!(e.delta2(), p.delta2());
        assert_eq!(e.conservative().unwrap(), p);
    }

    #[test]
    fn conservative_takes_worst_of_both_processes() {
        let e = ext(2, 3, 1, 5, 0, 12);
        let c = e.conservative().unwrap();
        assert_eq!(c.c1().ticks(), 1);
        assert_eq!(c.c2().ticks(), 5);
        assert_eq!(c.d().ticks(), 12);
    }

    #[test]
    fn wait_steps_shrink_with_the_window() {
        // Classic: d_lo = 0, window = 12, c1 = 2 -> wait = 5 (plus the next
        // send's own step = 6 steps >= 12 ticks gap = δ1 spacing).
        assert_eq!(ext(2, 3, 2, 3, 0, 12).ext_passive_wait_steps(), 5);
        // Narrower windows need fewer waits…
        assert_eq!(ext(2, 3, 2, 3, 6, 12).ext_passive_wait_steps(), 2);
        assert_eq!(ext(2, 3, 2, 3, 10, 12).ext_passive_wait_steps(), 0);
        // …and a deterministic-delay channel needs none.
        assert_eq!(ext(2, 3, 2, 3, 12, 12).ext_passive_wait_steps(), 0);
    }

    #[test]
    fn deterministic_delay_halves_the_passive_bound() {
        let loose = ext(2, 3, 2, 3, 0, 12);
        let tight = ext(2, 3, 2, 3, 12, 12);
        let k = 4;
        let classic = crate::bounds::passive_upper(loose.conservative().unwrap(), k);
        assert!((loose.ext_passive_upper(k) - classic).abs() / classic < 0.2);
        // δ1 sends, zero waits: exactly half the classic round.
        assert!((tight.ext_passive_upper(k) - classic / 2.0).abs() < 1e-9);
    }

    #[test]
    fn window_protocol_round_trips() {
        use crate::action::{Packet, RstpAction};
        use rstp_automata::Automaton;

        let e = ext(2, 3, 2, 3, 8, 12); // window 4 -> wait = 1
        assert_eq!(e.ext_passive_wait_steps(), 1);
        let input = vec![true, false, true, true, false, true];
        let t = e.passive_transmitter(3, &input).unwrap();
        let r = e.passive_receiver(3, input.len()).unwrap();
        assert_eq!(t.wait_len(), 1);

        let mut ts = t.initial_state();
        let mut rs = r.initial_state();
        while let Some(a) = t.enabled(&ts).first().copied() {
            ts = t.step(&ts, &a).unwrap();
            if let RstpAction::Send(Packet::Data(s)) = a {
                rs = r.step(&rs, &RstpAction::Recv(Packet::Data(s))).unwrap();
            }
        }
        assert_eq!(rs.decoded, input);
    }

    #[test]
    fn display() {
        let e = ext(1, 2, 3, 4, 5, 10);
        assert_eq!(e.to_string(), "t:[1,2] r:[3,4] d:[5,10]");
    }
}
