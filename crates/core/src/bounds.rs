//! Closed-form effort bounds (paper §5 and §6).
//!
//! | function | paper result | formula |
//! |---|---|---|
//! | [`alpha_effort`] | §4 example | `δ1 · c2` per message |
//! | [`passive_lower`] | Theorem 5.3 | `δ1 · c2 / log2 ζ_k(δ1)` |
//! | [`passive_upper`] | §6.1 | `2 · δ1 · c2 / ⌊log2 μ_k(δ1)⌋` (effort of `A^β(k)`) |
//! | [`active_lower`] | Theorem 5.6 | `d / log2 ζ_k(δ2)` |
//! | [`active_upper`] | §6.2 | `(3d + c2) / ⌊log2 μ_k(δ2)⌋` (effort of `A^γ(k)`) |
//!
//! All bounds are returned as `f64` ticks-per-message. Logarithms of the
//! (potentially astronomically large) counting functions are computed as
//! sums of `f64` logs, so no bound ever overflows — [`log2_mu`] handles
//! `k`, `δ` far beyond what exact `u128` counting allows, and agrees with
//! exact counting to ~1e-10 relative error where both are defined.
//!
//! The passive/active **crossover** analysis (which protocol's guarantee is
//! better for given parameters) is in [`compare_upper_bounds`] and
//! [`crossover_ratio`]: `A^β` pays `2·δ1·c2 ≈ 2d·(c2/c1)·(c2/c1)⁻¹…` — in
//! uncertainty terms, `2·d·(c2/c1)` per window versus `A^γ`'s flat `3d + c2`
//! — so the active protocol wins once `c2/c1` is large enough (modulo the
//! differing block sizes `δ1 ≥ δ2`).

use crate::params::TimingParams;

/// `log2 C(n, r)` as `f64`, overflow-free: `Σ_{i=1..r} log2((n-r+i)/i)`.
///
/// Returns `0.0` for `r = 0` or `r = n`, and `-inf`-free `0` convention is
/// never needed because callers only use `r ≤ n`.
///
/// # Panics
///
/// Panics if `r > n` (the coefficient would be zero and its log undefined).
#[must_use]
pub fn log2_binomial(n: u64, r: u64) -> f64 {
    assert!(r <= n, "log2_binomial: r = {r} > n = {n}");
    let r = r.min(n - r);
    (1..=r)
        .map(|i| (((n - r + i) as f64) / (i as f64)).log2())
        .sum()
}

/// `log2 μ_k(n) = log2 C(n+k-1, k-1)` as `f64` (paper §3).
///
/// # Panics
///
/// Panics if `k = 0`.
#[must_use]
pub fn log2_mu(k: u64, n: u64) -> f64 {
    assert!(k >= 1, "log2_mu: k must be >= 1");
    log2_binomial(n + k - 1, k - 1)
}

/// `log2 ζ_k(n) = log2 Σ_{j=1..n} μ_k(j)` as `f64`, via log-sum-exp so the
/// sum never overflows.
///
/// # Panics
///
/// Panics if `k = 0` or `n = 0` (`ζ_k(0) = 0` has no logarithm).
#[must_use]
pub fn log2_zeta(k: u64, n: u64) -> f64 {
    assert!(n >= 1, "log2_zeta: n must be >= 1");
    let logs: Vec<f64> = (1..=n).map(|j| log2_mu(k, j)).collect();
    let max = logs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let sum: f64 = logs.iter().map(|&l| (l - max).exp2()).sum();
    max + sum.log2()
}

/// `⌊log2 μ_k(n)⌋` as a `u32`, the block length `b` of the §6 protocols.
///
/// Uses exact `u128` counting when it fits and falls back to the `f64`
/// logarithm (with a guard band against the floor landing on a rounding
/// error) beyond that.
///
/// # Panics
///
/// Panics if `μ_k(n) < 2` (no information; `k < 2` or `n = 0`).
#[must_use]
pub fn block_bits(k: u64, n: u64) -> u32 {
    if let Ok(bits) = rstp_combinatorics::block_bits(k, n) {
        return bits;
    }
    let l = log2_mu(k, n);
    assert!(l >= 1.0, "block_bits: mu_{k}({n}) carries no information");
    // mu values this large (> u128) put l >= 127, far from any plausible
    // rounding-induced off-by-one at the floor.
    l.floor() as u32
}

/// Effort of the simple r-passive protocol `A^α`: `δ1 · c2` ticks per
/// message (paper §4: one message per round of `δ1` steps, each step at
/// most `c2`).
#[must_use]
pub fn alpha_effort(params: TimingParams) -> f64 {
    params.delta1() as f64 * params.c2().ticks() as f64
}

/// Theorem 5.3: every r-passive solution with `|P^tr| = k` has effort at
/// least `δ1 · c2 / log2 ζ_k(δ1)`.
#[must_use]
pub fn passive_lower(params: TimingParams, k: u64) -> f64 {
    let delta1 = params.delta1();
    (delta1 as f64) * (params.c2().ticks() as f64) / log2_zeta(k, delta1)
}

/// §6.1: the effort of `A^β(k)` is at most
/// `2 · δ1 · c2 / ⌊log2 μ_k(δ1)⌋`.
#[must_use]
pub fn passive_upper(params: TimingParams, k: u64) -> f64 {
    let delta1 = params.delta1();
    2.0 * (delta1 as f64) * (params.c2().ticks() as f64) / f64::from(block_bits(k, delta1))
}

/// Theorem 5.6: every active solution with `|P^tr| = k` has effort at least
/// `d / log2 ζ_k(δ2)`.
#[must_use]
pub fn active_lower(params: TimingParams, k: u64) -> f64 {
    (params.d().ticks() as f64) / log2_zeta(k, params.delta2())
}

/// §6.2: the effort of `A^γ(k)` is at most
/// `(3d + c2) / ⌊log2 μ_k(δ2)⌋`.
#[must_use]
pub fn active_upper(params: TimingParams, k: u64) -> f64 {
    let delta2 = params.delta2();
    (3.0 * params.d().ticks() as f64 + params.c2().ticks() as f64)
        / f64::from(block_bits(k, delta2))
}

/// Finite-`n` version of [`passive_upper`]: the exact worst-case effort
/// sample of `A^β(k)` on an input of length `n`.
///
/// The asymptotic bound assumes `b | n`; a real input pays for
/// `⌈n/b⌉` bursts, and the last send happens at local step
/// `(blocks-1)·2δ1 + δ1 - 1` (0-based, first step at time 0), each step at
/// most `c2`. As `n → ∞` this converges to [`passive_upper`] from either
/// side of the divisibility boundary.
///
/// Returns 0 for `n = 0`.
#[must_use]
pub fn passive_upper_finite(params: TimingParams, k: u64, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let delta1 = params.delta1();
    let b = u64::from(block_bits(k, delta1));
    let blocks = (n as u64).div_ceil(b);
    let last_send_step = (blocks - 1) * 2 * delta1 + delta1 - 1;
    (last_send_step * params.c2().ticks()) as f64 / n as f64
}

/// Finite-`n` version of [`active_upper`]: worst-case effort sample of
/// `A^γ(k)` on an input of length `n` — `⌈n/b⌉` rounds of at most
/// `3d + c2` wall-clock each (§6.2's per-round argument), divided by `n`.
///
/// Returns 0 for `n = 0`.
#[must_use]
pub fn active_upper_finite(params: TimingParams, k: u64, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let delta2 = params.delta2();
    let b = u64::from(block_bits(k, delta2));
    let blocks = (n as u64).div_ceil(b);
    let per_round = 3 * params.d().ticks() + params.c2().ticks();
    (blocks * per_round) as f64 / n as f64
}

/// Which family's §6 protocol has the better (smaller) guaranteed effort.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// The r-passive `A^β(k)` guarantee is at least as good.
    Passive,
    /// The active `A^γ(k)` guarantee is strictly better.
    Active,
}

/// Compares the §6 upper bounds for the same `k`: returns
/// [`Family::Active`] iff `A^γ(k)`'s guarantee beats `A^β(k)`'s.
#[must_use]
pub fn compare_upper_bounds(params: TimingParams, k: u64) -> Family {
    if active_upper(params, k) < passive_upper(params, k) {
        Family::Active
    } else {
        Family::Passive
    }
}

/// The smallest integer uncertainty ratio `c2/c1` (scanning `c2 = r·c1`,
/// `r = 1, 2, …, max_ratio`) at which the active guarantee beats the
/// passive one, holding `c1` and `d` fixed. `None` if the crossover does
/// not occur within `max_ratio` (or `r·c1 > d` exits the parameter space
/// first).
#[must_use]
pub fn crossover_ratio(c1: u64, d: u64, k: u64, max_ratio: u64) -> Option<u64> {
    for r in 1..=max_ratio {
        let c2 = r * c1;
        if c2 > d {
            return None;
        }
        let Ok(params) = TimingParams::from_ticks(c1, c2, d) else {
            return None;
        };
        if compare_upper_bounds(params, k) == Family::Active {
            return Some(r);
        }
    }
    None
}

/// Capacity planning: the smallest alphabet size `k ∈ [2, max_k]` whose
/// guaranteed effort (for the given family) meets `target_effort`
/// ticks/message, or `None` if even `max_k` does not.
///
/// Inverts the §6 guarantees: effort falls monotonically in `k` (more
/// symbols → more bits per burst), so a linear scan from 2 up finds the
/// minimum. Typical use: "my packets can carry `B` bits, so `k ≤ 2^B` —
/// what's the cheapest alphabet meeting my latency budget?"
#[must_use]
pub fn min_alphabet_for(
    params: TimingParams,
    family: Family,
    target_effort: f64,
    max_k: u64,
) -> Option<u64> {
    (2..=max_k).find(|&k| {
        let bound = match family {
            Family::Passive => passive_upper(params, k),
            Family::Active => active_upper(params, k),
        };
        bound <= target_effort
    })
}

/// The theoretical floor for a family at `k`: no alphabet of size `≤ k`
/// can beat this (Theorems 5.3 / 5.6).
#[must_use]
pub fn family_lower(params: TimingParams, family: Family, k: u64) -> f64 {
    match family {
        Family::Passive => passive_lower(params, k),
        Family::Active => active_lower(params, k),
    }
}

/// One row of the effort-vs-`k` curve (experiment E6): the four bounds at a
/// given alphabet size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoundsRow {
    /// Alphabet size.
    pub k: u64,
    /// Theorem 5.3 lower bound.
    pub passive_lower: f64,
    /// `A^β(k)` upper bound.
    pub passive_upper: f64,
    /// Theorem 5.6 lower bound.
    pub active_lower: f64,
    /// `A^γ(k)` upper bound.
    pub active_upper: f64,
}

/// The effort-vs-`k` curve over `k ∈ ks` (experiment E6: "the larger `P`
/// is, the less effort the solution requires", §6).
#[must_use]
pub fn effort_curve(params: TimingParams, ks: &[u64]) -> Vec<BoundsRow> {
    ks.iter()
        .map(|&k| BoundsRow {
            k,
            passive_lower: passive_lower(params, k),
            passive_upper: passive_upper(params, k),
            active_lower: active_lower(params, k),
            active_upper: active_upper(params, k),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstp_combinatorics::{log2_f64, mu, zeta};

    fn params() -> TimingParams {
        TimingParams::from_ticks(2, 3, 12).unwrap() // δ1 = 6, δ2 = 4
    }

    #[test]
    fn log2_binomial_matches_exact() {
        for n in 1..=60u64 {
            for r in 0..=n {
                let exact = log2_f64(rstp_combinatorics::binomial(n, r).unwrap());
                let approx = log2_binomial(n, r);
                assert!(
                    (exact - approx).abs() < 1e-9,
                    "C({n},{r}): {exact} vs {approx}"
                );
            }
        }
    }

    #[test]
    fn log2_binomial_handles_huge_inputs() {
        // C(2000, 1000) has ~1994 bits; exact u128 counting would overflow.
        let l = log2_binomial(2000, 1000);
        assert!(l > 1980.0 && l < 2000.0, "{l}");
    }

    #[test]
    #[should_panic(expected = "r = 3 > n = 2")]
    fn log2_binomial_domain() {
        let _ = log2_binomial(2, 3);
    }

    #[test]
    fn log2_mu_and_zeta_match_exact_counting() {
        for k in 2..=8u64 {
            for n in 1..=12u64 {
                let exact_mu = log2_f64(mu(k, n).unwrap());
                assert!((log2_mu(k, n) - exact_mu).abs() < 1e-9);
                let exact_zeta = log2_f64(zeta(k, n).unwrap());
                assert!((log2_zeta(k, n) - exact_zeta).abs() < 1e-9, "zeta({k},{n})");
            }
        }
    }

    #[test]
    fn block_bits_agrees_with_exact_and_survives_overflow() {
        assert_eq!(block_bits(2, 7), 3);
        assert_eq!(block_bits(4, 4), 5);
        // Far beyond u128: mu_64(1000) has thousands of bits.
        let huge = block_bits(64, 1000);
        assert!(huge > 128, "{huge}");
        let expected = log2_mu(64, 1000).floor() as u32;
        assert_eq!(huge, expected);
    }

    #[test]
    fn alpha_effort_formula() {
        // δ1 = 6, c2 = 3 -> 18 ticks per message.
        assert!((alpha_effort(params()) - 18.0).abs() < 1e-12);
    }

    #[test]
    fn lower_bounds_below_upper_bounds() {
        // The sandwich the paper proves: lower <= protocol effort <= upper,
        // so in particular lower < upper for every parameter point.
        for k in [2u64, 3, 4, 8, 16] {
            for (c1, c2, d) in [(1, 1, 4), (1, 2, 8), (2, 3, 12), (1, 4, 16), (3, 5, 30)] {
                let p = TimingParams::from_ticks(c1, c2, d).unwrap();
                assert!(
                    passive_lower(p, k) <= passive_upper(p, k),
                    "passive k={k} {p}"
                );
                assert!(active_lower(p, k) <= active_upper(p, k), "active k={k} {p}");
            }
        }
    }

    #[test]
    fn constant_factor_gap_is_bounded() {
        // The paper: the §6 solutions are "only a constant factor worse"
        // than the lower bounds. Check the ratio stays modest across a
        // parameter sweep (the constant depends on zeta-vs-mu and the
        // floor, empirically < 8 here).
        for k in [2u64, 4, 16] {
            for d in [8u64, 16, 64, 256] {
                let p = TimingParams::from_ticks(1, 2, d).unwrap();
                let ratio = passive_upper(p, k) / passive_lower(p, k);
                assert!(ratio < 8.0, "passive ratio {ratio} at k={k}, d={d}");
                let ratio = active_upper(p, k) / active_lower(p, k);
                assert!(ratio < 16.0, "active ratio {ratio} at k={k}, d={d}");
            }
        }
    }

    #[test]
    fn finite_bounds_converge_to_asymptotic() {
        let p = params();
        let k = 4;
        for n in [1usize, 7, 64, 1000, 100_000] {
            // The finite bound is within one block's slop of the
            // asymptotic bound, from either side.
            let fin = passive_upper_finite(p, k, n);
            assert!(fin > 0.0);
            let act = active_upper_finite(p, k, n);
            assert!(act > 0.0);
        }
        let big = 10_000_000usize;
        assert!(
            (passive_upper_finite(p, k, big) - passive_upper(p, k)).abs() / passive_upper(p, k)
                < 0.01
        );
        assert!(
            (active_upper_finite(p, k, big) - active_upper(p, k)).abs() / active_upper(p, k) < 0.01
        );
        assert_eq!(passive_upper_finite(p, k, 0), 0.0);
        assert_eq!(active_upper_finite(p, k, 0), 0.0);
    }

    #[test]
    fn finite_passive_bound_accounts_for_padding_slop() {
        // (c1, c2, d) = (1, 2, 8), k = 4: delta1 = 8, mu_4(8) = 165,
        // b = 7. n = 240 is not a multiple of 7, so the finite bound
        // exceeds the asymptotic one — the case that motivated this
        // function.
        let p = TimingParams::from_ticks(1, 2, 8).unwrap();
        let fin = passive_upper_finite(p, 4, 240);
        let asym = passive_upper(p, 4);
        assert!(fin > asym, "fin {fin} !> asym {asym}");
        assert!(fin < asym * 1.1);
    }

    #[test]
    fn beta_beats_alpha_once_blocks_carry_more_than_two_bits() {
        // alpha: delta1*c2 per bit; beta: 2*delta1*c2/b per bit. beta wins
        // iff b > 2.
        let p = TimingParams::from_ticks(1, 1, 8).unwrap(); // δ1 = 8
        let b = block_bits(2, 8); // mu_2(8) = 9 -> 3 bits
        assert_eq!(b, 3);
        assert!(passive_upper(p, 2) < alpha_effort(p));
        // With δ1 = 2: mu_2(2) = 3 -> 1 bit; alpha is better.
        let p2 = TimingParams::from_ticks(4, 4, 8).unwrap();
        assert_eq!(block_bits(2, p2.delta1()), 1);
        assert!(passive_upper(p2, 2) > alpha_effort(p2));
    }

    #[test]
    fn effort_decreases_in_k() {
        // §6: "the larger P is, the least effort the solution requires".
        let p = params();
        let curve = effort_curve(p, &[2, 4, 8, 16, 32]);
        for w in curve.windows(2) {
            assert!(w[1].passive_upper <= w[0].passive_upper);
            assert!(w[1].active_upper <= w[0].active_upper);
            assert!(w[1].passive_lower <= w[0].passive_lower);
            assert!(w[1].active_lower <= w[0].active_lower);
        }
    }

    #[test]
    fn active_wins_at_high_uncertainty() {
        // c2/c1 = 1: passive's 2*δ1*c2 = 2*d*… is comparable to 3d; the
        // passive guarantee (denominator log mu_k(δ1), larger block) wins
        // or ties. At c2/c1 = 8 the passive bound inflates 8x and active
        // must win.
        let k = 4;
        let even = TimingParams::from_ticks(1, 1, 16).unwrap();
        let skewed = TimingParams::from_ticks(1, 8, 16).unwrap();
        assert_eq!(compare_upper_bounds(even, k), Family::Passive);
        assert_eq!(compare_upper_bounds(skewed, k), Family::Active);
    }

    #[test]
    fn crossover_ratio_found_and_monotone_sensible() {
        let r = crossover_ratio(1, 64, 4, 64).expect("crossover must exist");
        assert!(r > 1, "active cannot win at ratio 1 here");
        // Everything at or past the crossover stays active.
        for ratio in r..=(r + 3).min(64) {
            let p = TimingParams::from_ticks(1, ratio, 64).unwrap();
            assert_eq!(compare_upper_bounds(p, 4), Family::Active);
        }
    }

    #[test]
    fn min_alphabet_scan() {
        let p = params(); // δ1 = 6, δ2 = 4
                          // The k=2 passive guarantee is 2·6·3/2 = 18; asking for 18 should
                          // return 2, asking for something only a larger alphabet meets
                          // should return that k, and an impossible target returns None.
        let at2 = passive_upper(p, 2);
        assert_eq!(min_alphabet_for(p, Family::Passive, at2, 64), Some(2));
        let at16 = passive_upper(p, 16);
        let k = min_alphabet_for(p, Family::Passive, at16, 64).unwrap();
        assert!(k <= 16 && passive_upper(p, k) <= at16);
        if k > 2 {
            assert!(passive_upper(p, k - 1) > at16);
        }
        assert_eq!(min_alphabet_for(p, Family::Passive, 0.0001, 64), None);
        // Active family goes through the same scan.
        let g = active_upper(p, 8);
        let ka = min_alphabet_for(p, Family::Active, g, 64).unwrap();
        assert!(active_upper(p, ka) <= g);
    }

    #[test]
    fn family_lower_dispatch() {
        let p = params();
        assert_eq!(family_lower(p, Family::Passive, 4), passive_lower(p, 4));
        assert_eq!(family_lower(p, Family::Active, 4), active_lower(p, 4));
    }

    #[test]
    fn crossover_ratio_none_when_out_of_range() {
        assert_eq!(crossover_ratio(1, 4, 2, 1), None);
        // c2 exceeds d before any crossover.
        assert_eq!(crossover_ratio(3, 6, 2, 10), None);
    }
}
