//! Microbenchmarks for the §3 counting machinery: `μ_k(n)`, `ζ_k(n)`,
//! and multiset rank/unrank — the per-burst cost the protocols pay.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rstp_combinatorics::{mu, zeta, Multiset, MultisetCodec};

fn bench_counting(c: &mut Criterion) {
    let mut g = c.benchmark_group("counting");
    for &(k, n) in &[(2u64, 8u64), (16, 16), (16, 64), (64, 64)] {
        g.bench_with_input(
            BenchmarkId::new("mu", format!("k{k}_n{n}")),
            &(k, n),
            |b, &(k, n)| {
                b.iter(|| mu(black_box(k), black_box(n)).unwrap());
            },
        );
        g.bench_with_input(
            BenchmarkId::new("zeta", format!("k{k}_n{n}")),
            &(k, n),
            |b, &(k, n)| {
                b.iter(|| zeta(black_box(k), black_box(n)).unwrap());
            },
        );
    }
    g.finish();
}

fn bench_rank(c: &mut Criterion) {
    let mut g = c.benchmark_group("rank");
    for &(k, n) in &[(4u64, 8u64), (16, 16), (8, 32)] {
        let codec = MultisetCodec::new(k, n).unwrap();
        let mid = codec.total() / 2;
        let m: Multiset = codec.unrank(mid).unwrap();
        g.bench_with_input(
            BenchmarkId::new("rank", format!("k{k}_n{n}")),
            &m,
            |b, m| b.iter(|| codec.rank(black_box(m)).unwrap()),
        );
        g.bench_with_input(
            BenchmarkId::new("unrank", format!("k{k}_n{n}")),
            &mid,
            |b, &r| b.iter(|| codec.unrank(black_box(r)).unwrap()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_counting, bench_rank);
criterion_main!(benches);
