//! Simulation throughput for the extension protocols: the pipelined
//! window-2 active protocol (E11) and the Stenning baseline (E9), plus the
//! §7 window-optimized passive protocol (E8).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rstp_core::TimingParams;
use rstp_sim::adversary::{DeliveryPolicy, StepPolicy};
use rstp_sim::harness::{random_input, run_configured, ProtocolKind, RunConfig};

fn bench_extensions(c: &mut Criterion) {
    let params = TimingParams::from_ticks(1, 2, 8).unwrap();
    let n = 256usize;
    let input = random_input(n, 0xE11);
    let mut g = c.benchmark_group("effort_extensions");
    g.throughput(Throughput::Elements(n as u64));
    let cases = [
        ("pipelined_k4", ProtocolKind::Pipelined { k: 4, window: 2 }),
        (
            "stenning",
            ProtocolKind::Stenning {
                timeout_steps: None,
            },
        ),
        ("framed_k4", ProtocolKind::Framed { k: 4 }),
    ];
    for (label, kind) in cases {
        g.bench_with_input(BenchmarkId::from_parameter(label), &input, |b, input| {
            b.iter(|| {
                let out = run_configured(
                    &RunConfig {
                        kind,
                        params,
                        step: StepPolicy::AllSlow,
                        delivery: DeliveryPolicy::MaxDelay,
                        record_trace: false,
                        ..RunConfig::default()
                    },
                    black_box(input),
                )
                .unwrap();
                assert_eq!(out.metrics.writes as usize, input.len());
                out.metrics.effort(input.len())
            });
        });
    }
    // Window-optimized passive protocol at d_lo = 6 (window [6, 8]).
    g.bench_function("beta_window_k4", |b| {
        b.iter(|| {
            let out = run_configured(
                &RunConfig {
                    kind: ProtocolKind::BetaWindow { k: 4 },
                    params,
                    d_lo_ticks: 6,
                    step: StepPolicy::AllSlow,
                    delivery: DeliveryPolicy::Random { seed: 5 },
                    record_trace: false,
                    ..RunConfig::default()
                },
                black_box(&input),
            )
            .unwrap();
            assert_eq!(out.metrics.writes as usize, input.len());
            out.metrics.effort(input.len())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
