//! End-to-end simulation throughput for `A^α` (Figure 1) — one full
//! transmit-and-check run per iteration. Regenerates experiment E1's
//! measurement path under Criterion timing.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rstp_core::TimingParams;
use rstp_sim::adversary::{DeliveryPolicy, StepPolicy};
use rstp_sim::harness::{random_input, run_configured, ProtocolKind, RunConfig};

fn bench_alpha(c: &mut Criterion) {
    let params = TimingParams::from_ticks(1, 2, 8).unwrap();
    let mut g = c.benchmark_group("effort_alpha");
    for &n in &[64usize, 256, 1024] {
        let input = random_input(n, 0xA1);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            b.iter(|| {
                let out = run_configured(
                    &RunConfig {
                        kind: ProtocolKind::Alpha,
                        params,
                        step: StepPolicy::AllSlow,
                        delivery: DeliveryPolicy::MaxDelay,
                        record_trace: false,
                        ..RunConfig::default()
                    },
                    black_box(input),
                )
                .unwrap();
                assert_eq!(out.metrics.writes as usize, input.len());
                out.metrics.effort(input.len())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_alpha);
criterion_main!(benches);
