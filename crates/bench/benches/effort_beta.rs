//! End-to-end simulation throughput for `A^β(k)` (Figure 3), swept over
//! the alphabet size — the measurement path of experiments E2/E6.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rstp_core::TimingParams;
use rstp_sim::adversary::{DeliveryPolicy, StepPolicy};
use rstp_sim::harness::{random_input, run_configured, ProtocolKind, RunConfig};

fn bench_beta(c: &mut Criterion) {
    let params = TimingParams::from_ticks(1, 2, 8).unwrap();
    let n = 512usize;
    let input = random_input(n, 0xB2);
    let mut g = c.benchmark_group("effort_beta");
    g.throughput(Throughput::Elements(n as u64));
    for &k in &[2u64, 4, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &input, |b, input| {
            b.iter(|| {
                let out = run_configured(
                    &RunConfig {
                        kind: ProtocolKind::Beta { k },
                        params,
                        step: StepPolicy::AllSlow,
                        delivery: DeliveryPolicy::ReverseBurst {
                            burst: params.delta1(),
                        },
                        record_trace: false,
                        ..RunConfig::default()
                    },
                    black_box(input),
                )
                .unwrap();
                assert_eq!(out.metrics.writes as usize, input.len());
                out.metrics.effort(input.len())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_beta);
criterion_main!(benches);
