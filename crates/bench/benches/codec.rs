//! Block-codec throughput: encoding a message stream into bursts and
//! decoding multisets back — the per-block work of `A^β(k)` / `A^γ(k)`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rstp_codec::{BlockCodec, Multiset};

fn bench_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec_stream");
    let input: Vec<bool> = (0..4096).map(|i| i % 3 == 0).collect();
    for &(k, delta) in &[(2u64, 8u64), (4, 8), (16, 8), (16, 32)] {
        let codec = BlockCodec::new(k, delta).unwrap();
        g.throughput(Throughput::Elements(input.len() as u64));
        g.bench_with_input(
            BenchmarkId::new("encode", format!("k{k}_d{delta}")),
            &codec,
            |b, codec| b.iter(|| codec.encode_stream(black_box(&input)).unwrap()),
        );
        let blocks: Vec<Multiset> = codec
            .encode_stream(&input)
            .unwrap()
            .iter()
            .map(|blk| codec.collect(blk.packets()).unwrap())
            .collect();
        g.bench_with_input(
            BenchmarkId::new("decode", format!("k{k}_d{delta}")),
            &blocks,
            |b, blocks| b.iter(|| codec.decode_stream(black_box(blocks), input.len()).unwrap()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);
