//! Bound-formula throughput: the effort-vs-k curve and crossover scan
//! (experiments E6/E7's analytic halves) under Criterion timing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rstp_core::bounds;
use rstp_core::TimingParams;

fn bench_bounds(c: &mut Criterion) {
    let params = TimingParams::from_ticks(1, 2, 64).unwrap();
    let ks: Vec<u64> = (2..=64).collect();
    c.bench_function("effort_curve_k2_64", |b| {
        b.iter(|| bounds::effort_curve(black_box(params), black_box(&ks)));
    });
    c.bench_function("crossover_scan", |b| {
        b.iter(|| bounds::crossover_ratio(black_box(1), black_box(64), black_box(4), 64));
    });
    c.bench_function("log2_zeta_k16_n128", |b| {
        b.iter(|| bounds::log2_zeta(black_box(16), black_box(128)));
    });
}

criterion_group!(benches, bench_bounds);
criterion_main!(benches);
