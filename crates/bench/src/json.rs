//! Machine-readable experiment output: a tiny hand-rolled JSON writer
//! (the workspace builds offline, so no serde) plus the mapping from a
//! rendered [`ExperimentOutput`] to the `BENCH_e*.json` record schema.
//!
//! Every record carries the experiment id, the grid point (the sweep
//! columns of the table row), the measured effort, the lower/upper bound
//! where the experiment has one, and the measured/lower ratio.

use crate::experiments::ExperimentOutput;
use core::fmt::Write as _;

/// A JSON value. Only what the bench tables need.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

/// Escapes a string per RFC 8259.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Json {
    /// Renders the value with two-space indentation.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Num(x) if x.is_finite() => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str("  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    let _ = write!(out, "  \"{}\": ", escape(key));
                    value.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

/// A table cell as JSON: a number when it parses as one, else a string.
fn cell_value(cell: &str) -> Json {
    match cell.parse::<f64>() {
        Ok(x) if x.is_finite() => Json::Num(x),
        _ => Json::Str(cell.to_string()),
    }
}

/// Classifies a column by its header name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Column {
    Measured,
    Lower,
    Upper,
    Ratio,
    Grid,
}

fn classify(header: &str) -> Column {
    let h = header.to_ascii_lowercase();
    // Ratio columns first: "meas/lower" contains both marker words.
    let quotient_of_bound =
        h.contains('/') && (h.contains("lower") || h.contains("upper") || h.contains("bound"));
    if quotient_of_bound || h.contains("ratio") || h.contains("gap") {
        Column::Ratio
    } else if h.contains("lower") || h.contains("floor") {
        Column::Lower
    } else if h.contains("upper") || h.contains("guarantee") || h.contains("closed form") {
        Column::Upper
    } else if h.contains("measured") || h == "effort" || h.contains("worst effort") {
        Column::Measured
    } else {
        Column::Grid
    }
}

/// Converts one experiment's output into its `BENCH_e*.json` document.
///
/// Schema: `{experiment, title, notes, records: [{experiment, grid,
/// measured, lower, upper, ratio}]}`. Experiments without a bound column
/// (for example the Lemma 5.1 distinguishability count) carry `null` in
/// the missing fields; their table cells stay available under `grid`.
#[must_use]
pub fn experiment_json(out: &ExperimentOutput) -> Json {
    let id = out.id.to_string();
    let header = out.table.header();
    let kinds: Vec<Column> = header.iter().map(|h| classify(h)).collect();
    // The first column of every bench table is the sweep variable; if the
    // classifier claimed it as a metric (e.g. a table *about* lower
    // bounds), keep it as the grid point instead so no record is empty.
    let mut kinds = kinds;
    if let Some(first) = kinds.first_mut() {
        *first = Column::Grid;
    }

    let mut records = Vec::with_capacity(out.table.len());
    for row in out.table.rows() {
        let mut grid = Vec::new();
        let mut measured = Json::Null;
        let mut lower = Json::Null;
        let mut upper = Json::Null;
        let mut ratio = Json::Null;
        for ((head, cell), kind) in header.iter().zip(row).zip(&kinds) {
            match kind {
                Column::Grid => grid.push((head.clone(), cell_value(cell))),
                Column::Measured => measured = cell_value(cell),
                Column::Lower => lower = cell_value(cell),
                // First upper-like column wins (finite-n before asymptotic).
                Column::Upper if upper == Json::Null => upper = cell_value(cell),
                Column::Upper => grid.push((head.clone(), cell_value(cell))),
                Column::Ratio if ratio == Json::Null => ratio = cell_value(cell),
                Column::Ratio => grid.push((head.clone(), cell_value(cell))),
            }
        }
        // Derive the ratio when the table has measured and lower but no
        // explicit gap column.
        if ratio == Json::Null {
            if let (Json::Num(m), Json::Num(l)) = (&measured, &lower) {
                if *l > 0.0 {
                    ratio = Json::Num(m / l);
                }
            }
        }
        records.push(Json::Obj(vec![
            ("experiment".into(), Json::Str(id.clone())),
            ("grid".into(), Json::Obj(grid)),
            ("measured".into(), measured),
            ("lower".into(), lower),
            ("upper".into(), upper),
            ("ratio".into(), ratio),
        ]));
    }

    Json::Obj(vec![
        ("experiment".into(), Json::Str(id)),
        ("title".into(), Json::Str(out.title.clone())),
        (
            "notes".into(),
            Json::Arr(out.notes.iter().map(|n| Json::Str(n.clone())).collect()),
        ),
        ("records".into(), Json::Arr(records)),
    ])
}

/// The file name for one experiment's JSON document: `BENCH_e2.json`.
#[must_use]
pub fn json_file_name(out: &ExperimentOutput) -> String {
    format!("BENCH_{}.json", out.id.to_string().to_ascii_lowercase())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_experiment, ExperimentId};

    #[test]
    fn escaping() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn rendering_shapes() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Num(4.0).render(), "4");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Str("x\"y".into()).render(), "\"x\\\"y\"");
        assert_eq!(Json::Arr(vec![]).render(), "[]");
        let obj = Json::Obj(vec![("a".into(), Json::Num(1.0))]);
        assert_eq!(obj.render(), "{\n  \"a\": 1\n}");
    }

    #[test]
    fn cell_values() {
        assert_eq!(cell_value("3.25"), Json::Num(3.25));
        assert_eq!(cell_value("beta"), Json::Str("beta".into()));
    }

    #[test]
    fn column_classification() {
        assert_eq!(classify("k"), Column::Grid);
        assert_eq!(classify("lower"), Column::Lower);
        assert_eq!(classify("upper(n)"), Column::Upper);
        assert_eq!(classify("measured"), Column::Measured);
        assert_eq!(classify("meas/lower"), Column::Ratio);
        assert_eq!(classify("gap"), Column::Ratio);
    }

    #[test]
    fn e2_records_have_the_full_schema() {
        let out = run_experiment(ExperimentId::E2);
        let doc = experiment_json(&out);
        let rendered = doc.render();
        assert!(rendered.contains("\"experiment\": \"E2\""), "{rendered}");
        assert!(rendered.contains("\"records\""), "{rendered}");
        assert!(rendered.contains("\"measured\""), "{rendered}");
        assert!(rendered.contains("\"lower\""), "{rendered}");
        assert!(rendered.contains("\"ratio\""), "{rendered}");
        // E2 sweeps k, so every record's grid carries k.
        assert!(rendered.contains("\"k\": 2"), "{rendered}");
        assert_eq!(json_file_name(&out), "BENCH_e2.json");
    }

    #[test]
    fn every_experiment_serializes_with_populated_records() {
        for id in crate::all_experiments() {
            let out = run_experiment(id);
            let doc = experiment_json(&out);
            match &doc {
                Json::Obj(fields) => {
                    let records = fields
                        .iter()
                        .find(|(k, _)| k == "records")
                        .map(|(_, v)| v)
                        .expect("records field");
                    match records {
                        Json::Arr(rs) => {
                            assert_eq!(rs.len(), out.table.len(), "{id}");
                        }
                        other => panic!("{id}: records not an array: {other:?}"),
                    }
                }
                other => panic!("{id}: not an object: {other:?}"),
            }
        }
    }
}
