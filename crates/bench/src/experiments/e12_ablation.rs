//! E12 — ablations: remove each load-bearing design choice of `A^β(k)` and
//! watch it fail (or get cheaper where the paper says it may).
//!
//! **Ablation A — multiset vs positional coding.** A burst of `δ` packets
//! *could* carry `⌊δ·log2 k⌋` bits if arrival order were trustworthy
//! (positional base-`k` code), versus the multiset code's
//! `⌊log2 μ_k(δ)⌋`. The difference is the *price of reordering-resilience*
//! (≈ `log2 δ!` bits for `k ≫ δ`). We run a positional-decoding receiver:
//! under strictly FIFO delivery it works — and outperforms `A^β` — but
//! under the burst-reversing adversary it writes garbage, which is exactly
//! why §3 introduces multisets.
//!
//! **Ablation B — the wait phase.** Figure 3's `δ1` idle steps keep burst
//! `i` clear of burst `i+1`. Shrinking the wait below the safe length
//! makes bursts overlap at the receiver and mis-frame; the table shows
//! correctness as a function of wait length, with the §7 window model
//! (`d_lo > 0`) as the principled way to shrink it.

use super::{ExperimentId, ExperimentOutput};
use crate::table::Table;
use rstp_automata::{ActionClass, Automaton, StepError};
use rstp_core::protocols::{BetaReceiver, BetaTransmitter};
use rstp_core::{InternalKind, Message, Packet, RstpAction, TimingParams};
use rstp_sim::adversary::{DeliveryPolicy, StepPolicy};
use rstp_sim::runner::{SimSettings, Simulation};

// ---------- Ablation A: positional (order-dependent) coding ----------

/// Bits per positional burst: `⌊log2 k^δ⌋` (capped to stay within `u128`).
fn positional_bits(k: u64, delta: u64) -> u32 {
    let mut bits = 0f64;
    for _ in 0..delta {
        bits += (k as f64).log2();
    }
    bits.floor() as u32
}

/// Encodes `bits` (MSB first) as `delta` base-`k` digits, big-endian.
fn positional_encode(k: u64, delta: u64, bits: &[bool]) -> Vec<u64> {
    let mut value: u128 = 0;
    for &b in bits {
        value = value * 2 + u128::from(b);
    }
    let mut digits = vec![0u64; delta as usize];
    for slot in digits.iter_mut().rev() {
        *slot = (value % u128::from(k)) as u64;
        value /= u128::from(k);
    }
    digits
}

/// Decodes `delta` digits (in *arrival order*) back into bits.
fn positional_decode(k: u64, digits: &[u64], bits: u32) -> Vec<bool> {
    let mut value: u128 = 0;
    for &d in digits {
        value = value * u128::from(k) + u128::from(d);
    }
    (0..bits).rev().map(|i| (value >> i) & 1 == 1).collect()
}

/// A beta-shaped transmitter sending *given* bursts (positional payload).
#[derive(Clone, Debug)]
struct PositionalTransmitter {
    blocks: Vec<Vec<u64>>,
    burst_len: u64,
    wait_len: u64,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct PtState {
    block: usize,
    c: u64,
}

impl PositionalTransmitter {
    fn new(params: TimingParams, k: u64, input: &[Message]) -> Self {
        let delta = params.delta1();
        let bits = positional_bits(k, delta) as usize;
        let blocks = input
            .chunks(bits)
            .map(|chunk| {
                let mut padded = chunk.to_vec();
                padded.resize(bits, false);
                positional_encode(k, delta, &padded)
            })
            .collect();
        PositionalTransmitter {
            blocks,
            burst_len: delta,
            wait_len: delta,
        }
    }
}

impl Automaton for PositionalTransmitter {
    type Action = RstpAction;
    type State = PtState;

    fn initial_state(&self) -> PtState {
        PtState { block: 0, c: 0 }
    }

    fn classify(&self, action: &RstpAction) -> Option<ActionClass> {
        match action {
            RstpAction::Send(Packet::Data(_)) => Some(ActionClass::Output),
            RstpAction::TransmitterInternal(InternalKind::Wait) => Some(ActionClass::Internal),
            _ => None,
        }
    }

    fn enabled(&self, s: &PtState) -> Vec<RstpAction> {
        if s.block >= self.blocks.len() {
            return vec![];
        }
        if s.c < self.burst_len {
            vec![RstpAction::Send(Packet::Data(
                self.blocks[s.block][s.c as usize],
            ))]
        } else {
            vec![RstpAction::TransmitterInternal(InternalKind::Wait)]
        }
    }

    fn step(&self, s: &PtState, action: &RstpAction) -> Result<PtState, StepError> {
        let advance = |s: &PtState| {
            let c = (s.c + 1) % (self.burst_len + self.wait_len);
            if c == 0 {
                PtState {
                    block: s.block + 1,
                    c: 0,
                }
            } else {
                PtState { block: s.block, c }
            }
        };
        match action {
            RstpAction::Send(_) if s.block < self.blocks.len() && s.c < self.burst_len => {
                Ok(advance(s))
            }
            RstpAction::TransmitterInternal(InternalKind::Wait)
                if s.block < self.blocks.len() && s.c >= self.burst_len =>
            {
                Ok(advance(s))
            }
            other => Err(StepError::PreconditionFalse {
                action: format!("{other:?}"),
                reason: "positional transmitter precondition".into(),
            }),
        }
    }
}

/// A receiver that (incorrectly, in general) trusts arrival order.
#[derive(Clone, Debug)]
struct PositionalReceiver {
    k: u64,
    delta: u64,
    bits: u32,
    expected: usize,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct PrState {
    burst: Vec<u64>, // arrival order preserved — the ablated assumption
    decoded: Vec<Message>,
    written: usize,
}

impl PositionalReceiver {
    fn new(params: TimingParams, k: u64, expected: usize) -> Self {
        let delta = params.delta1();
        PositionalReceiver {
            k,
            delta,
            bits: positional_bits(k, delta),
            expected,
        }
    }
}

impl Automaton for PositionalReceiver {
    type Action = RstpAction;
    type State = PrState;

    fn initial_state(&self) -> PrState {
        PrState {
            burst: Vec::new(),
            decoded: Vec::new(),
            written: 0,
        }
    }

    fn classify(&self, action: &RstpAction) -> Option<ActionClass> {
        match action {
            RstpAction::Recv(Packet::Data(_)) => Some(ActionClass::Input),
            RstpAction::Write(_) => Some(ActionClass::Output),
            RstpAction::ReceiverInternal(InternalKind::Idle) => Some(ActionClass::Internal),
            _ => None,
        }
    }

    fn enabled(&self, s: &PrState) -> Vec<RstpAction> {
        if s.written < s.decoded.len() {
            vec![RstpAction::Write(s.decoded[s.written])]
        } else {
            vec![RstpAction::ReceiverInternal(InternalKind::Idle)]
        }
    }

    fn step(&self, s: &PrState, action: &RstpAction) -> Result<PrState, StepError> {
        match action {
            RstpAction::Recv(Packet::Data(sym)) => {
                let mut next = s.clone();
                next.burst.push(*sym % self.k);
                if next.burst.len() as u64 == self.delta {
                    let bits = positional_decode(self.k, &next.burst, self.bits);
                    let remaining = self.expected.saturating_sub(next.decoded.len());
                    let take = bits.len().min(remaining);
                    next.decoded.extend(bits.into_iter().take(take));
                    next.burst.clear();
                }
                Ok(next)
            }
            RstpAction::Write(m) => {
                if s.decoded.get(s.written) == Some(m) {
                    let mut next = s.clone();
                    next.written += 1;
                    Ok(next)
                } else {
                    Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: "write precondition".into(),
                    })
                }
            }
            RstpAction::ReceiverInternal(InternalKind::Idle) => {
                if s.written < s.decoded.len() {
                    Err(StepError::PreconditionFalse {
                        action: format!("{action:?}"),
                        reason: "idle precondition".into(),
                    })
                } else {
                    Ok(s.clone())
                }
            }
            other => Err(StepError::UnknownAction {
                action: format!("{other:?}"),
            }),
        }
    }
}

// ---------- Rows ----------

/// One ablation row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Which ablation.
    pub ablation: &'static str,
    /// Configuration label.
    pub config: String,
    /// Bits carried per burst.
    pub bits_per_burst: u32,
    /// Delivery policy label.
    pub delivery: &'static str,
    /// Whether `Y = X` exactly.
    pub correct: bool,
}

/// Fixed parameters: `δ1 = 6`.
#[must_use]
pub fn params() -> TimingParams {
    TimingParams::from_ticks(1, 2, 6).expect("valid parameters")
}

fn deterministic_input(n: usize) -> Vec<Message> {
    (0..n).map(|i| (i * 7) % 3 == 0).collect()
}

fn run_positional(delivery: DeliveryPolicy, label: &'static str, k: u64) -> Row {
    let p = params();
    let input = deterministic_input(60);
    let sim = Simulation::new(
        PositionalTransmitter::new(p, k, &input),
        PositionalReceiver::new(p, k, input.len()),
        SimSettings::from_params(p),
    );
    let mut steps = StepPolicy::AllFast.build(p); // c1-paced: maximal overlap
    let mut del = delivery.build(rstp_automata::TimeDelta::ZERO, p.d());
    let run = sim.run(&input, steps.as_mut(), del.as_mut()).expect("run");
    Row {
        ablation: "A: positional code",
        config: format!("seq-code(k={k})"),
        bits_per_burst: positional_bits(k, p.delta1()),
        delivery: label,
        correct: run.trace.written() == input,
    }
}

fn run_beta_shape(wait_len: u64, delivery: DeliveryPolicy, label: &'static str) -> Row {
    let p = params();
    let k = 4u64;
    let input = deterministic_input(60);
    let t = BetaTransmitter::with_shape(k, p.delta1(), wait_len, &input).expect("shape");
    let r = BetaReceiver::with_burst(k, p.delta1(), input.len()).expect("burst");
    let bits = t.bits_per_block();
    let sim = Simulation::new(t, r, SimSettings::from_params(p));
    let mut steps = StepPolicy::AllFast.build(p); // fastest steps = least slack
    let mut del = delivery.build(rstp_automata::TimeDelta::ZERO, p.d());
    let run = sim.run(&input, steps.as_mut(), del.as_mut()).expect("run");
    Row {
        ablation: "B: wait phase",
        config: format!("beta wait={wait_len}"),
        bits_per_burst: bits,
        delivery: label,
        correct: run.trace.written() == input,
    }
}

/// Runs both ablations.
#[must_use]
pub fn rows() -> Vec<Row> {
    let p = params();
    let mut out = Vec::new();
    // Reference: the real multiset code under the reversing adversary.
    {
        let k = 4u64;
        let input = deterministic_input(60);
        let t = BetaTransmitter::new(p, k, &input).expect("beta");
        let bits = t.bits_per_block();
        let r = BetaReceiver::new(p, k, input.len()).expect("beta receiver");
        let sim = Simulation::new(t, r, SimSettings::from_params(p));
        let mut steps = StepPolicy::AllFast.build(p);
        let mut del = DeliveryPolicy::ReverseBurst { burst: p.delta1() }
            .build(rstp_automata::TimeDelta::ZERO, p.d());
        let run = sim.run(&input, steps.as_mut(), del.as_mut()).expect("run");
        out.push(Row {
            ablation: "reference",
            config: "beta(k=4) multiset".into(),
            bits_per_burst: bits,
            delivery: "reverse-burst",
            correct: run.trace.written() == input,
        });
    }
    // Ablation A: positional code under FIFO vs reversing delivery.
    out.push(run_positional(
        DeliveryPolicy::MaxDelay,
        "fifo(max-delay)",
        4,
    ));
    out.push(run_positional(
        DeliveryPolicy::ReverseBurst {
            burst: params().delta1(),
        },
        "reverse-burst",
        4,
    ));
    // Ablation B: wait phase δ1, δ1/2, 0 under randomized delays (the
    // overlap only materializes when burst i stragglers can cross burst
    // i+1 arrivals; fixed equal delays preserve order vacuously).
    let rand = DeliveryPolicy::Random { seed: 7 };
    out.push(run_beta_shape(p.delta1(), rand, "random"));
    out.push(run_beta_shape(p.delta1() / 2, rand, "random"));
    out.push(run_beta_shape(0, rand, "random"));
    out
}

/// Renders the experiment.
#[must_use]
pub fn output() -> ExperimentOutput {
    let rows = rows();
    let mut table = Table::new(["ablation", "config", "bits/burst", "delivery", "Y = X"]);
    for r in &rows {
        table.push([
            r.ablation.to_string(),
            r.config.clone(),
            r.bits_per_burst.to_string(),
            r.delivery.to_string(),
            if r.correct { "yes" } else { "NO" }.to_string(),
        ]);
    }
    ExperimentOutput {
        id: ExperimentId::E12,
        title: format!("ablations of A^beta(4)'s design choices at {}", params()),
        table,
        notes: vec![
            "A: a positional (arrival-order) code carries more bits per burst but".into(),
            "   corrupts under the reversing adversary — multisets are the price of".into(),
            "   reordering-resilience (§3)".into(),
            "B: shrinking Figure 3's wait phase below δ1 lets bursts overlap and".into(),
            "   mis-frame; the §7 window model (E8) is the sound way to shrink it".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positional_codec_roundtrip() {
        let k = 4u64;
        let delta = 6u64;
        let bits = positional_bits(k, delta);
        assert_eq!(bits, 12); // 6·log2(4)
        for v in [0u64, 1, 1000, 4095] {
            let b: Vec<bool> = (0..bits).rev().map(|i| (v >> i) & 1 == 1).collect();
            let digits = positional_encode(k, delta, &b);
            assert_eq!(digits.len(), 6);
            assert!(digits.iter().all(|&d| d < k));
            assert_eq!(positional_decode(k, &digits, bits), b);
        }
    }

    #[test]
    fn reference_and_fifo_positional_are_correct() {
        let rs = rows();
        assert!(rs[0].correct, "multiset code must survive reversal");
        let fifo = rs
            .iter()
            .find(|r| r.ablation.starts_with("A") && r.delivery.starts_with("fifo"))
            .unwrap();
        assert!(fifo.correct, "positional code must work under FIFO");
    }

    #[test]
    fn positional_code_carries_more_bits_but_breaks_under_reversal() {
        let rs = rows();
        let reference = &rs[0];
        let reversed = rs
            .iter()
            .find(|r| r.ablation.starts_with("A") && r.delivery == "reverse-burst")
            .unwrap();
        assert!(
            reversed.bits_per_burst > reference.bits_per_burst,
            "positional {} !> multiset {}",
            reversed.bits_per_burst,
            reference.bits_per_burst
        );
        assert!(!reversed.correct, "reversal must corrupt positional decode");
    }

    #[test]
    fn full_wait_is_correct_zero_wait_is_not() {
        let rs = rows();
        let full = rs
            .iter()
            .find(|r| r.config == format!("beta wait={}", params().delta1()))
            .unwrap();
        assert!(full.correct);
        let none = rs.iter().find(|r| r.config == "beta wait=0").unwrap();
        assert!(
            !none.correct,
            "zero wait must mis-frame under random delays"
        );
    }
}
