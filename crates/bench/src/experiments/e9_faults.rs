//! E9 — fault injection: the paper's channel never loses or duplicates;
//! this experiment breaks that contract to show (a) the §6 protocols
//! genuinely depend on it, (b) the alternating-bit baseline (\[BSW69\],
//! §1) recovers under loss+duplication **on a FIFO channel**, and (c)
//! with duplication *and* reordering even alternating-bit fails — the
//! empirical face of the \[WZ89\] impossibility the paper cites.

use super::{ExperimentId, ExperimentOutput};
use crate::table::Table;
use rstp_core::TimingParams;
use rstp_sim::adversary::{DeliveryPolicy, StepPolicy};
use rstp_sim::harness::{random_input, run_configured, ProtocolKind, RunConfig};

/// One (protocol, channel) cell.
#[derive(Clone, Debug)]
pub struct Row {
    /// Protocol label.
    pub protocol: String,
    /// Channel label.
    pub channel: &'static str,
    /// Messages delivered out of `n`.
    pub delivered: usize,
    /// Input length.
    pub n: usize,
    /// Dropped packets.
    pub drops: u64,
    /// Duplicated packets.
    pub dups: u64,
    /// Total channel packets.
    pub packets: u64,
    /// Whether `Y` stayed a (correct) prefix of `X`.
    pub prefix_safe: bool,
}

impl Row {
    /// Whether all of `X` arrived.
    #[must_use]
    pub fn complete(&self) -> bool {
        self.delivered == self.n
    }
}

/// The channel menu: (label, policy).
#[must_use]
pub fn channels() -> Vec<(&'static str, DeliveryPolicy)> {
    vec![
        ("perfect", DeliveryPolicy::MaxDelay),
        (
            "loss10+fifo",
            DeliveryPolicy::FaultyFifo {
                loss: 0.1,
                duplication: 0.0,
                seed: 0xE9,
            },
        ),
        (
            "loss30+fifo",
            DeliveryPolicy::FaultyFifo {
                loss: 0.3,
                duplication: 0.0,
                seed: 0xE9,
            },
        ),
        (
            "dup30+fifo",
            DeliveryPolicy::FaultyFifo {
                loss: 0.0,
                duplication: 0.3,
                seed: 0xE9,
            },
        ),
        (
            "loss20dup20+fifo",
            DeliveryPolicy::FaultyFifo {
                loss: 0.2,
                duplication: 0.2,
                seed: 0xE9,
            },
        ),
        (
            "dup30+reorder",
            DeliveryPolicy::Faulty {
                loss: 0.0,
                duplication: 0.3,
                seed: 0xE9,
            },
        ),
    ]
}

/// Runs the protocol × channel grid.
#[must_use]
pub fn rows() -> Vec<Row> {
    let params = TimingParams::from_ticks(1, 2, 6).expect("valid parameters");
    let n = 80;
    let input = random_input(n, 0xE9);
    let mut out = Vec::new();
    for kind in [
        ProtocolKind::Beta { k: 4 },
        ProtocolKind::Gamma { k: 4 },
        ProtocolKind::AltBit {
            timeout_steps: None,
        },
        ProtocolKind::Stenning {
            timeout_steps: None,
        },
    ] {
        for (label, delivery) in channels() {
            let run = run_configured(
                &RunConfig {
                    kind,
                    params,
                    step: StepPolicy::AllSlow,
                    delivery,
                    max_events: 3_000_000,
                    ..RunConfig::default()
                },
                &input,
            )
            .expect("fault simulation");
            let written = run.trace.written();
            let prefix_safe = written.len() <= input.len() && written[..] == input[..written.len()];
            out.push(Row {
                protocol: kind.name(),
                channel: label,
                delivered: written.len(),
                n,
                drops: run.metrics.drops,
                dups: run.metrics.duplicates,
                packets: run.metrics.total_sends(),
                prefix_safe,
            });
        }
    }
    out
}

/// Renders the experiment.
#[must_use]
pub fn output() -> ExperimentOutput {
    let rows = rows();
    let mut table = Table::new([
        "protocol",
        "channel",
        "delivered",
        "drops",
        "dups",
        "packets",
        "prefix-safe",
    ]);
    for r in &rows {
        table.push([
            r.protocol.clone(),
            r.channel.to_string(),
            format!("{}/{}", r.delivered, r.n),
            r.drops.to_string(),
            r.dups.to_string(),
            r.packets.to_string(),
            if r.prefix_safe { "yes" } else { "NO" }.to_string(),
        ]);
    }
    ExperimentOutput {
        id: ExperimentId::E9,
        title: "fault injection: perfect-channel dependence vs alternating-bit (§1 context)".into(),
        table,
        notes: vec![
            "beta/gamma stall on first loss (a burst never completes) — C(P) is load-bearing"
                .into(),
            "altbit recovers from any loss/dup on a FIFO channel ([BSW69])".into(),
            "under dup + reordering even altbit drops messages — the [WZ89] regime —".into(),
            "while stenning ([Ste76], unbounded seq numbers) survives every channel here:".into(),
            "the finite-alphabet hypothesis of [WZ89] is exactly what it escapes".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<Row> {
        rows()
    }

    #[test]
    fn everyone_completes_on_the_perfect_channel() {
        for r in grid().iter().filter(|r| r.channel == "perfect") {
            assert!(r.complete(), "{} incomplete on perfect channel", r.protocol);
            assert!(r.prefix_safe);
        }
    }

    #[test]
    fn beta_and_gamma_break_under_loss() {
        // Losing one packet of a burst misframes every later burst: the
        // protocol either stalls (incomplete) or decodes garbage (prefix
        // violation). Either way the perfect channel is load-bearing.
        for r in grid()
            .iter()
            .filter(|r| r.channel.starts_with("loss") && r.protocol.starts_with("beta"))
        {
            assert!(
                !r.complete() || !r.prefix_safe,
                "beta unexpectedly fine under {} ({}/{}, safe={})",
                r.channel,
                r.delivered,
                r.n,
                r.prefix_safe
            );
        }
    }

    #[test]
    fn altbit_completes_under_every_fifo_fault() {
        for r in grid()
            .iter()
            .filter(|r| r.protocol == "altbit" && r.channel.ends_with("fifo"))
        {
            assert!(
                r.complete(),
                "altbit incomplete under {} ({}/{})",
                r.channel,
                r.delivered,
                r.n
            );
            assert!(r.prefix_safe);
        }
    }

    #[test]
    fn stenning_completes_on_every_channel_including_dup_reorder() {
        for r in grid().iter().filter(|r| r.protocol == "stenning") {
            assert!(
                r.complete(),
                "stenning incomplete under {} ({}/{})",
                r.channel,
                r.delivered,
                r.n
            );
            assert!(r.prefix_safe, "stenning corrupted under {}", r.channel);
        }
    }

    #[test]
    fn altbit_pays_in_retransmissions() {
        let g = grid();
        let perfect = g
            .iter()
            .find(|r| r.protocol == "altbit" && r.channel == "perfect")
            .unwrap()
            .packets;
        let lossy = g
            .iter()
            .find(|r| r.protocol == "altbit" && r.channel == "loss30+fifo")
            .unwrap()
            .packets;
        assert!(
            lossy > perfect,
            "loss must cost retransmissions: {lossy} vs {perfect}"
        );
    }

    #[test]
    fn safety_holds_exactly_where_the_theory_says() {
        // Guaranteed-safe cells: any protocol on the perfect channel, and
        // altbit on FIFO channels with loss/dup ([BSW69]). Everything else
        // (burst protocols under faults, altbit under dup+reorder [WZ89])
        // may corrupt — that contrast is the experiment's point.
        for r in grid() {
            let guaranteed =
                r.channel == "perfect" || (r.protocol == "altbit" && r.channel.ends_with("fifo"));
            if guaranteed {
                assert!(r.prefix_safe, "{} under {}", r.protocol, r.channel);
            }
        }
        // And the contrast must actually materialize somewhere: at least
        // one burst-protocol cell loses safety or completeness under loss.
        assert!(
            grid()
                .iter()
                .any(|r| r.channel.starts_with("loss") && (!r.prefix_safe || !r.complete())),
            "fault injection produced no observable failure"
        );
    }
}
