//! E5 — the Figure 2 adversary: packets sent during interval
//! `t_i = [i·w, (i+1)·w)` are all withheld and delivered in a cluster at
//! the start of `t_{i+1}` (the paper's `d - ε` interval construction with
//! `ε → 0`). The active protocol must stay correct under it, and its
//! effort approaches the ack-round-trip-dominated worst case.

use super::{ExperimentId, ExperimentOutput};
use crate::table::{f2, Table};
use rstp_core::{bounds, TimingParams};
use rstp_sim::adversary::{DeliveryPolicy, StepPolicy};
use rstp_sim::harness::{random_input, run_configured, ProtocolKind, RunConfig};
use rstp_sim::Outcome;

/// One (d, policy) measurement.
#[derive(Clone, Debug)]
pub struct Row {
    /// Parameters (varying `d`).
    pub params: TimingParams,
    /// Delivery policy label.
    pub policy: &'static str,
    /// Measured effort.
    pub effort: f64,
    /// §6.2 finite-n guarantee.
    pub upper_finite: f64,
    /// Whether the run was correct and `good(A)`.
    pub ok: bool,
}

/// Runs `A^γ(4)` under eager / max-delay / interval-batch deliveries for
/// several `d`.
#[must_use]
pub fn rows() -> Vec<Row> {
    let k = 4;
    let n = 480;
    let mut out = Vec::new();
    for d in [6u64, 12, 24] {
        let params = TimingParams::from_ticks(1, 2, d).expect("valid parameters");
        let input = random_input(n, 0xE5 + d);
        for (label, delivery) in [
            ("eager", DeliveryPolicy::Eager),
            ("max-delay", DeliveryPolicy::MaxDelay),
            ("interval-batch", DeliveryPolicy::IntervalBatch),
        ] {
            let run = run_configured(
                &RunConfig {
                    kind: ProtocolKind::Gamma { k },
                    params,
                    step: StepPolicy::AllSlow,
                    delivery,
                    ..RunConfig::default()
                },
                &input,
            )
            .expect("gamma simulation");
            out.push(Row {
                params,
                policy: label,
                effort: run.metrics.effort(n).unwrap_or(0.0),
                upper_finite: bounds::active_upper_finite(params, k, n),
                ok: run.outcome == Outcome::Quiescent
                    && run.report.all_good()
                    && run.trace.written() == input,
            });
        }
    }
    out
}

/// Renders the experiment.
#[must_use]
pub fn output() -> ExperimentOutput {
    let rows = rows();
    let mut table = Table::new(["params", "delivery", "effort", "upper(n)", "correct"]);
    for r in &rows {
        table.push([
            r.params.to_string(),
            r.policy.to_string(),
            f2(r.effort),
            f2(r.upper_finite),
            if r.ok { "yes" } else { "NO" }.to_string(),
        ]);
    }
    ExperimentOutput {
        id: ExperimentId::E5,
        title: "A^gamma(4) under the Figure 2 interval-batch adversary (§5.2)".into(),
        table,
        notes: vec![
            "interval-batch withholds each d-interval's packets to the next boundary".into(),
            "correctness is unaffected (multiset decoding); effort sits between the".into(),
            "eager best case and the (3d + c2)-per-round guarantee".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_correct_under_every_delivery() {
        for r in rows() {
            assert!(r.ok, "{} under {}", r.params, r.policy);
        }
    }

    #[test]
    fn effort_ordering_eager_batch_max() {
        // Per d: eager <= interval-batch <= upper bound; batch is worse
        // than eager (it maximizes round trips).
        for chunk in rows().chunks(3) {
            let eager = chunk.iter().find(|r| r.policy == "eager").unwrap();
            let batch = chunk.iter().find(|r| r.policy == "interval-batch").unwrap();
            assert!(
                eager.effort <= batch.effort + 1e-9,
                "eager {} > batch {}",
                eager.effort,
                batch.effort
            );
            for r in chunk {
                assert!(
                    r.effort <= r.upper_finite + 1e-9,
                    "{}: {}",
                    r.policy,
                    r.effort
                );
            }
        }
    }

    #[test]
    fn three_ds_times_three_policies() {
        assert_eq!(rows().len(), 9);
    }
}
