//! E10 — worst-case vs typical effort (repository extension, not a paper
//! claim): the paper's effort is a `max` over `good(A)`; this experiment
//! shows where *randomly scheduled* runs land inside that envelope. For
//! the r-passive protocols the spread is pure step-rate variance (delivery
//! timing is invisible to effort); for the active protocol delivery delay
//! variance shows up too, so its distribution is wider relative to its
//! ceiling.

use super::{ExperimentId, ExperimentOutput};
use crate::table::{f2, Table};
use rstp_core::{bounds, TimingParams};
use rstp_sim::harness::{random_input, worst_case_effort, ProtocolKind};
use rstp_sim::stats::{effort_distribution, Summary};

/// One protocol row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Protocol label.
    pub name: String,
    /// Distribution over 24 random schedules.
    pub dist: Summary,
    /// Worst case over the adversary sweep.
    pub worst: f64,
    /// The relevant guarantee (finite-n) for context.
    pub guarantee: f64,
}

/// Fixed parameters.
#[must_use]
pub fn params() -> TimingParams {
    TimingParams::from_ticks(1, 3, 12).expect("valid parameters")
}

/// Measures the distribution for alpha, beta(4), gamma(4).
#[must_use]
pub fn rows() -> Vec<Row> {
    let p = params();
    let n = 240;
    let k = 4;
    [
        (ProtocolKind::Alpha, bounds::alpha_effort(p)),
        (
            ProtocolKind::Beta { k },
            bounds::passive_upper_finite(p, k, n),
        ),
        (
            ProtocolKind::Gamma { k },
            bounds::active_upper_finite(p, k, n),
        ),
    ]
    .into_iter()
    .map(|(kind, guarantee)| {
        let dist = effort_distribution(kind, p, n, 0..24).expect("distribution runs");
        let input = random_input(n, 0xE10);
        let worst = worst_case_effort(kind, p, &input, 0xE10)
            .expect("sweep")
            .effort;
        Row {
            name: kind.name(),
            dist,
            worst,
            guarantee,
        }
    })
    .collect()
}

/// Renders the experiment.
#[must_use]
pub fn output() -> ExperimentOutput {
    let rows = rows();
    let mut table = Table::new([
        "protocol",
        "min",
        "mean",
        "max",
        "σ",
        "worst-case",
        "guarantee",
    ]);
    for r in &rows {
        table.push([
            r.name.clone(),
            f2(r.dist.min),
            f2(r.dist.mean),
            f2(r.dist.max),
            f2(r.dist.stddev),
            f2(r.worst),
            f2(r.guarantee),
        ]);
    }
    ExperimentOutput {
        id: ExperimentId::E10,
        title: format!(
            "typical vs worst-case effort over 24 random schedules at {}",
            params()
        ),
        table,
        notes: vec![
            "random-schedule efforts stay inside [best-possible, worst-case]".into(),
            "the adversary sweep's worst case dominates every random run — the".into(),
            "paper's max-based effort is a real ceiling, not a typical cost".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_runs_never_exceed_the_worst_case() {
        for r in rows() {
            assert!(
                r.dist.max <= r.worst + 1e-9,
                "{}: random max {} exceeds worst {}",
                r.name,
                r.dist.max,
                r.worst
            );
            assert!(r.worst <= r.guarantee + 1e-9, "{}", r.name);
        }
    }

    #[test]
    fn distributions_are_nondegenerate() {
        for r in rows() {
            assert!(r.dist.min <= r.dist.mean && r.dist.mean <= r.dist.max);
            // Random schedules over [c1, 3·c1] must actually vary.
            assert!(r.dist.stddev > 0.0, "{}: zero variance", r.name);
        }
    }

    #[test]
    fn ordering_alpha_worst() {
        let rs = rows();
        let alpha = rs.iter().find(|r| r.name == "alpha").unwrap();
        for other in rs.iter().filter(|r| r.name != "alpha") {
            assert!(other.dist.mean < alpha.dist.mean, "{}", other.name);
        }
    }
}
