//! The experiment suite (see crate docs and DESIGN.md §4 for the index).

pub mod e10_distribution;
pub mod e11_pipeline;
pub mod e12_ablation;
pub mod e13_stabilization;
pub mod e1_alpha;
pub mod e2_passive;
pub mod e3_active;
pub mod e4_distinguish;
pub mod e5_interval;
pub mod e6_alphabet;
pub mod e7_crossover;
pub mod e8_window;
pub mod e9_faults;

use crate::table::Table;
use core::fmt;

/// Identifier of one experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExperimentId {
    /// E1: `A^α` vs its closed-form effort.
    E1,
    /// E2: the r-passive sandwich (Theorem 5.3 / §6.1).
    E2,
    /// E3: the active sandwich (Theorem 5.6 / §6.2).
    E3,
    /// E4: exhaustive Lemma 5.1 distinguishability.
    E4,
    /// E5: the Figure 2 interval-batch adversary.
    E5,
    /// E6: effort vs alphabet size `k`.
    E6,
    /// E7: passive/active crossover in `c2/c1`.
    E7,
    /// E8: the §7 delivery-window extension.
    E8,
    /// E9: fault injection (loss/duplication, FIFO vs reordering).
    E9,
    /// E10: typical vs worst-case effort distribution (extension).
    E10,
    /// E11: pipelining vs alphabet-spending (extension).
    E11,
    /// E12: design-choice ablations (multiset coding, wait phase).
    E12,
    /// E13: self-stabilization effort overhead and stabilization time.
    E13,
}

impl ExperimentId {
    /// Parses `"e1"`..`"e9"` (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s.to_ascii_lowercase().as_str() {
            "e1" => ExperimentId::E1,
            "e2" => ExperimentId::E2,
            "e3" => ExperimentId::E3,
            "e4" => ExperimentId::E4,
            "e5" => ExperimentId::E5,
            "e6" => ExperimentId::E6,
            "e7" => ExperimentId::E7,
            "e8" => ExperimentId::E8,
            "e9" => ExperimentId::E9,
            "e10" => ExperimentId::E10,
            "e11" => ExperimentId::E11,
            "e12" => ExperimentId::E12,
            "e13" => ExperimentId::E13,
            _ => return None,
        })
    }
}

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A rendered experiment: title, table, and interpretation notes.
#[derive(Clone, Debug)]
pub struct ExperimentOutput {
    /// Which experiment.
    pub id: ExperimentId,
    /// Human title with the paper cross-reference.
    pub title: String,
    /// The result table.
    pub table: Table,
    /// Interpretation lines printed under the table.
    pub notes: Vec<String>,
}

impl fmt::Display for ExperimentOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "### {}: {}", self.id, self.title)?;
        writeln!(f)?;
        write!(f, "{}", self.table.render())?;
        for n in &self.notes {
            writeln!(f, "  {n}")?;
        }
        Ok(())
    }
}

/// All experiment ids, in order.
#[must_use]
pub fn all_experiments() -> Vec<ExperimentId> {
    vec![
        ExperimentId::E1,
        ExperimentId::E2,
        ExperimentId::E3,
        ExperimentId::E4,
        ExperimentId::E5,
        ExperimentId::E6,
        ExperimentId::E7,
        ExperimentId::E8,
        ExperimentId::E9,
        ExperimentId::E10,
        ExperimentId::E11,
        ExperimentId::E12,
        ExperimentId::E13,
    ]
}

/// Runs one experiment and returns its rendered output.
#[must_use]
pub fn run_experiment(id: ExperimentId) -> ExperimentOutput {
    match id {
        ExperimentId::E1 => e1_alpha::output(),
        ExperimentId::E2 => e2_passive::output(),
        ExperimentId::E3 => e3_active::output(),
        ExperimentId::E4 => e4_distinguish::output(),
        ExperimentId::E5 => e5_interval::output(),
        ExperimentId::E6 => e6_alphabet::output(),
        ExperimentId::E7 => e7_crossover::output(),
        ExperimentId::E8 => e8_window::output(),
        ExperimentId::E9 => e9_faults::output(),
        ExperimentId::E10 => e10_distribution::output(),
        ExperimentId::E11 => e11_pipeline::output(),
        ExperimentId::E12 => e12_ablation::output(),
        ExperimentId::E13 => e13_stabilization::output(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_parsing() {
        assert_eq!(ExperimentId::parse("e1"), Some(ExperimentId::E1));
        assert_eq!(ExperimentId::parse("E9"), Some(ExperimentId::E9));
        assert_eq!(ExperimentId::parse("e10"), Some(ExperimentId::E10));
        assert_eq!(ExperimentId::parse("e11"), Some(ExperimentId::E11));
        assert_eq!(ExperimentId::parse("e12"), Some(ExperimentId::E12));
        assert_eq!(ExperimentId::parse("e13"), Some(ExperimentId::E13));
        assert_eq!(ExperimentId::parse("e14"), None);
        assert_eq!(ExperimentId::parse(""), None);
    }

    #[test]
    fn all_experiments_listed_once() {
        let ids = all_experiments();
        assert_eq!(ids.len(), 13);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(
                ExperimentId::parse(&format!("e{}", i + 1)),
                Some(*id),
                "order mismatch at {i}"
            );
        }
    }
}
