//! E6 — "the larger `P` is, the least effort the solution requires" (§6):
//! the effort-vs-`k` curve. Bounds for `k = 2..64`, measurements at a
//! subset, and the diminishing-returns shape `effort ≈ Θ(1/log k)` for
//! fixed `δ` (since `log2 μ_k(δ) ≈ δ·log2 k` once `k ≫ δ`).

use super::{ExperimentId, ExperimentOutput};
use crate::table::{f2, Table};
use rstp_core::bounds::{self, BoundsRow};
use rstp_core::TimingParams;
use rstp_sim::harness::{random_input, worst_case_effort, ProtocolKind};

/// One `k` row: the four bounds plus (optionally) measurements.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// The bounds at this `k`.
    pub bounds: BoundsRow,
    /// Measured `A^β(k)` effort, for the measured subset of `k`s.
    pub beta_measured: Option<f64>,
    /// Measured `A^γ(k)` effort, for the measured subset of `k`s.
    pub gamma_measured: Option<f64>,
}

/// Fixed parameters: `δ1 = 12`, `δ2 = 6`.
#[must_use]
pub fn params() -> TimingParams {
    TimingParams::from_ticks(1, 2, 12).expect("valid parameters")
}

/// The full `k` sweep (bounds) and the measured subset.
#[must_use]
pub fn rows() -> Vec<Row> {
    let p = params();
    let ks: Vec<u64> = vec![2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64];
    let measured: &[u64] = &[2, 4, 16];
    let n = 600;
    bounds::effort_curve(p, &ks)
        .into_iter()
        .map(|b| {
            let (beta_measured, gamma_measured) = if measured.contains(&b.k) {
                let input = random_input(n, 0xE6 + b.k);
                let beta = worst_case_effort(ProtocolKind::Beta { k: b.k }, p, &input, 0xE6)
                    .expect("beta simulation")
                    .effort;
                let gamma = worst_case_effort(ProtocolKind::Gamma { k: b.k }, p, &input, 0xE6)
                    .expect("gamma simulation")
                    .effort;
                (Some(beta), Some(gamma))
            } else {
                (None, None)
            };
            Row {
                bounds: b,
                beta_measured,
                gamma_measured,
            }
        })
        .collect()
}

fn opt(x: Option<f64>) -> String {
    x.map_or_else(|| "-".into(), f2)
}

/// Renders the experiment.
#[must_use]
pub fn output() -> ExperimentOutput {
    let rows = rows();
    let mut table = Table::new([
        "k",
        "passive lower",
        "beta measured",
        "beta upper",
        "active lower",
        "gamma measured",
        "gamma upper",
    ]);
    for r in &rows {
        table.push([
            r.bounds.k.to_string(),
            f2(r.bounds.passive_lower),
            opt(r.beta_measured),
            f2(r.bounds.passive_upper),
            f2(r.bounds.active_lower),
            opt(r.gamma_measured),
            f2(r.bounds.active_upper),
        ]);
    }
    ExperimentOutput {
        id: ExperimentId::E6,
        title: format!("effort vs alphabet size k at {} (§6 remark)", params()),
        table,
        notes: vec![
            "every column decreases in k with ~1/log k diminishing returns".into(),
            "measured rows ('-' = bounds only) respect their sandwich".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_bounds_decrease_in_k() {
        let rs = rows();
        for w in rs.windows(2) {
            assert!(w[1].bounds.passive_upper <= w[0].bounds.passive_upper);
            assert!(w[1].bounds.active_upper <= w[0].bounds.active_upper);
            assert!(w[1].bounds.passive_lower <= w[0].bounds.passive_lower);
            assert!(w[1].bounds.active_lower <= w[0].bounds.active_lower);
        }
    }

    #[test]
    fn diminishing_returns_shape() {
        // Doubling k from 2 to 4 helps much more than from 32 to 64.
        let rs = rows();
        let at = |k: u64| {
            rs.iter()
                .find(|r| r.bounds.k == k)
                .map(|r| r.bounds.passive_upper)
                .unwrap()
        };
        let early_gain = at(2) / at(4);
        let late_gain = at(32) / at(64);
        assert!(
            early_gain > late_gain,
            "early {early_gain} should exceed late {late_gain}"
        );
        assert!(late_gain < 1.5);
    }

    #[test]
    fn measured_subset_respects_sandwich() {
        for r in rows() {
            if let Some(m) = r.beta_measured {
                assert!(r.bounds.passive_lower <= m + 1e-9, "k={}", r.bounds.k);
            }
            if let Some(m) = r.gamma_measured {
                assert!(r.bounds.active_lower <= m + 1e-9, "k={}", r.bounds.k);
            }
        }
    }
}
