//! E3 — the active sandwich (Theorem 5.6 and §6.2): measured worst-case
//! effort of `A^γ(k)` between `d / log2 ζ_k(δ2)` and
//! `(3d + c2) / ⌊log2 μ_k(δ2)⌋`.

use super::{ExperimentId, ExperimentOutput};
use crate::table::{f2, Table};
use rstp_core::{bounds, TimingParams};
use rstp_sim::harness::{random_input, worst_case_effort, ProtocolKind};

/// One `k` row of the sandwich table.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Alphabet size.
    pub k: u64,
    /// Bits per burst, `⌊log2 μ_k(δ2)⌋`.
    pub bits_per_burst: u32,
    /// Theorem 5.6 lower bound.
    pub lower: f64,
    /// Measured worst-case effort.
    pub measured: f64,
    /// Finite-`n` guarantee.
    pub upper_finite: f64,
    /// Asymptotic guarantee (§6.2).
    pub upper: f64,
    /// Acks sent in the worst run's configuration (one per data packet).
    pub acks: u64,
}

impl Row {
    /// measured / lower.
    #[must_use]
    pub fn gap(&self) -> f64 {
        self.measured / self.lower
    }
}

/// Fixed parameters: `δ2 = 4`, uncertainty 2.
#[must_use]
pub fn params() -> TimingParams {
    TimingParams::from_ticks(1, 2, 8).expect("valid parameters")
}

/// The alphabet sweep.
#[must_use]
pub fn ks() -> Vec<u64> {
    vec![2, 3, 4, 8, 16]
}

/// Measures the sweep.
#[must_use]
pub fn rows() -> Vec<Row> {
    let p = params();
    let n = 720;
    ks().into_iter()
        .map(|k| {
            let input = random_input(n, 0xE3 + k);
            let sample = worst_case_effort(ProtocolKind::Gamma { k }, p, &input, 0xE3)
                .expect("gamma simulation");
            // Count acks with a deterministic re-run of the worst config.
            let out = rstp_sim::harness::run_configured(
                &rstp_sim::harness::RunConfig {
                    kind: ProtocolKind::Gamma { k },
                    params: p,
                    step: sample.step,
                    delivery: sample.delivery,
                    ..rstp_sim::harness::RunConfig::default()
                },
                &input,
            )
            .expect("re-run");
            Row {
                k,
                bits_per_burst: bounds::block_bits(k, p.delta2()),
                lower: bounds::active_lower(p, k),
                measured: sample.effort,
                upper_finite: bounds::active_upper_finite(p, k, n),
                upper: bounds::active_upper(p, k),
                acks: out.metrics.ack_sends,
            }
        })
        .collect()
}

/// Renders the experiment.
#[must_use]
pub fn output() -> ExperimentOutput {
    let rows = rows();
    let mut table = Table::new([
        "k",
        "bits/burst",
        "lower",
        "measured",
        "upper(n)",
        "upper(∞)",
        "meas/lower",
        "acks",
    ]);
    for r in &rows {
        table.push([
            r.k.to_string(),
            r.bits_per_burst.to_string(),
            f2(r.lower),
            f2(r.measured),
            f2(r.upper_finite),
            f2(r.upper),
            f2(r.gap()),
            r.acks.to_string(),
        ]);
    }
    ExperimentOutput {
        id: ExperimentId::E3,
        title: format!(
            "active sandwich for A^gamma(k) at {} (Thm 5.6 + §6.2)",
            params()
        ),
        table,
        notes: vec![
            "lower = d/log2 ζ_k(δ2); upper = (3d + c2)/⌊log2 μ_k(δ2)⌋".into(),
            "the receiver acknowledges every data packet: acks = data sends".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sandwich_holds_at_every_k() {
        for r in rows() {
            assert!(
                r.lower <= r.measured + 1e-9,
                "k={}: measured {} below lower {}",
                r.k,
                r.measured,
                r.lower
            );
            assert!(
                r.measured <= r.upper_finite + 1e-9,
                "k={}: measured {} above upper {}",
                r.k,
                r.measured,
                r.upper_finite
            );
        }
    }

    #[test]
    fn constant_factor_gap() {
        for r in rows() {
            assert!(r.gap() < 12.0, "k={}: gap {}", r.k, r.gap());
        }
    }

    #[test]
    fn one_ack_per_data_packet() {
        let p = params();
        for r in rows() {
            // δ2 packets per burst, ⌈n/b⌉ bursts.
            let bursts = 720u64.div_ceil(u64::from(r.bits_per_burst));
            assert_eq!(r.acks, bursts * p.delta2(), "k={}", r.k);
        }
    }

    #[test]
    fn output_has_all_rows() {
        assert_eq!(output().table.len(), ks().len());
    }
}
