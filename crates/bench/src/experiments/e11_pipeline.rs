//! E11 — pipelining vs alphabet-spending (repository extension).
//!
//! The window-2 active protocol `A^δ(k)` halves `A^γ`'s per-burst
//! handshake stall, but pays for it in *alphabet*: its parity tag doubles
//! the wire alphabet to `2k`. The fair comparison is therefore against
//! `A^γ(2k)` — the stop-and-wait protocol *spending the same symbols on
//! coding instead*. Which investment wins depends on the regime:
//!
//! * `δ2 ≫ k` (long bursts, small alphabet): `log2 μ_2k(δ2) ≈
//!   ((2k-1)/(k-1))·log2 μ_k(δ2)` — doubling the alphabet roughly doubles
//!   the bits per burst, beating the ≤ 2× pipelining gain. **Coding wins.**
//! * `k ≫ δ2` (short bursts, rich alphabet): the extra symbol bit adds only
//!   `δ2` of `≈ δ2·log2 k` bits, while pipelining still halves the
//!   `~3d`-dominated round. **Pipelining wins.**
//!
//! This experiment measures both regimes and locates the flip.

use super::{ExperimentId, ExperimentOutput};
use crate::table::{f2, Table};
use rstp_core::{bounds, TimingParams};
use rstp_sim::harness::{random_input, worst_case_effort, ProtocolKind};

/// One regime row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Parameters.
    pub params: TimingParams,
    /// Base alphabet `k` (pipelined uses `w·k` on the wire; gamma gets
    /// `w·k` outright).
    pub k: u64,
    /// Window size.
    pub window: u64,
    /// Bits per burst for `gamma(w·k)`.
    pub gamma_bits: u32,
    /// Bits per burst for `pipelined(k, w)`.
    pub pipe_bits: u32,
    /// Measured worst-case effort of `gamma(w·k)`.
    pub gamma_effort: f64,
    /// Measured worst-case effort of `pipelined(k, w)`.
    pub pipe_effort: f64,
}

impl Row {
    /// Whether pipelining beat coding here.
    #[must_use]
    pub fn pipelining_wins(&self) -> bool {
        self.pipe_effort < self.gamma_effort
    }
}

fn measure(c1: u64, c2: u64, k: u64, window: u64) -> Row {
    let n = 240;
    let params = TimingParams::from_ticks(c1, c2, 24).expect("valid parameters");
    let input = random_input(n, 0xE11 + k + 97 * window);
    let gamma = worst_case_effort(ProtocolKind::Gamma { k: window * k }, params, &input, 3)
        .expect("gamma simulation");
    let pipe = worst_case_effort(ProtocolKind::Pipelined { k, window }, params, &input, 3)
        .expect("pipelined simulation");
    Row {
        params,
        k,
        window,
        gamma_bits: bounds::block_bits(window * k, params.delta2()),
        pipe_bits: bounds::block_bits(k, params.delta2()),
        gamma_effort: gamma.effort,
        pipe_effort: pipe.effort,
    }
}

/// The regime sweep at window 2 (`δ2` from 24 down to 2, `k` from 2 up to
/// 32) plus a window sweep `w ∈ {1, 2, 4}` in the pipelining-friendly
/// regime.
#[must_use]
pub fn rows() -> Vec<Row> {
    let mut out = vec![
        measure(1, 1, 2, 2),   // δ2 = 24, k = 2: long bursts, tiny alphabet
        measure(1, 2, 4, 2),   // δ2 = 12
        measure(1, 8, 16, 2),  // δ2 = 3
        measure(1, 12, 32, 2), // δ2 = 2: short bursts, rich alphabet
    ];
    // Window sweep in the friendly regime (δ2 = 2, k = 32): w = 1 is
    // stop-and-wait with an untagged wire; larger windows divide the
    // handshake stall further at a growing tag cost.
    out.push(measure(1, 12, 32, 1));
    out.push(measure(1, 12, 32, 4));
    out
}

/// Renders the experiment.
#[must_use]
pub fn output() -> ExperimentOutput {
    let rows = rows();
    let mut table = Table::new([
        "δ2",
        "k",
        "w",
        "gamma(wk) bits",
        "pipe(k) bits",
        "gamma effort",
        "pipe effort",
        "winner",
    ]);
    for r in &rows {
        table.push([
            r.params.delta2().to_string(),
            r.k.to_string(),
            r.window.to_string(),
            r.gamma_bits.to_string(),
            r.pipe_bits.to_string(),
            f2(r.gamma_effort),
            f2(r.pipe_effort),
            if r.pipelining_wins() {
                "pipeline"
            } else {
                "coding"
            }
            .to_string(),
        ]);
    }
    ExperimentOutput {
        id: ExperimentId::E11,
        title: "pipelining vs alphabet-spending at equal wire alphabets (d = 24)".into(),
        table,
        notes: vec![
            "gamma(w·k) spends the extra symbols on coding; pipelined(k, w) spends".into(),
            "them on a window tag. Long bursts (δ2 >> k) favor coding; short bursts".into(),
            "with rich alphabets (k >> δ2) favor pipelining. w = 1 is untagged".into(),
            "stop-and-wait; the last rows sweep w in the friendly regime.".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coding_wins_long_bursts_pipelining_wins_short() {
        let rs = rows();
        assert!(
            !rs[0].pipelining_wins(),
            "δ2 = 24, k = 2 should favor coding: gamma {} vs pipe {}",
            rs[0].gamma_effort,
            rs[0].pipe_effort
        );
        assert!(
            rs[3].pipelining_wins(),
            "δ2 = 2, k = 32, w = 2 should favor pipelining: gamma {} vs pipe {}",
            rs[3].gamma_effort,
            rs[3].pipe_effort
        );
    }

    #[test]
    fn bits_ratio_explains_the_flip() {
        // In the coding regime gamma's bits advantage exceeds 2.5x (well
        // beyond the max 2x pipelining gain); in the pipelining regime it
        // is ~1.2x.
        let rs = rows();
        let first = &rs[0];
        assert!(f64::from(first.gamma_bits) / f64::from(first.pipe_bits) > 2.5);
        let friendly = &rs[3];
        assert!(f64::from(friendly.gamma_bits) / f64::from(friendly.pipe_bits) < 1.5);
    }

    #[test]
    fn window_sweep_monotone_in_the_friendly_regime() {
        // w = 1 ties stop-and-wait (same protocol shape, untagged wire has
        // MORE bits so gamma(k) == pipelined(k,1) up to decode bit counts);
        // w = 2 and w = 4 progressively beat it.
        let rs = rows();
        let w1 = rs.iter().find(|r| r.window == 1).unwrap();
        let w2 = rs.iter().find(|r| r.window == 2 && r.k == 32).unwrap();
        let w4 = rs.iter().find(|r| r.window == 4).unwrap();
        assert!(
            w2.pipe_effort < w1.pipe_effort,
            "w=2 {} !< w=1 {}",
            w2.pipe_effort,
            w1.pipe_effort
        );
        assert!(
            w4.pipe_effort <= w2.pipe_effort * 1.05,
            "w=4 {} should not regress past w=2 {}",
            w4.pipe_effort,
            w2.pipe_effort
        );
    }

    #[test]
    fn all_rows_measured() {
        for r in rows() {
            assert!(r.gamma_effort > 0.0 && r.pipe_effort > 0.0);
        }
    }
}
