//! E13 — the price of self-stabilization: effort overhead of the
//! stabilizing variants on clean runs versus their non-stabilizing
//! baselines, and observed stabilization time after a seeded transient
//! fault versus the documented bound.
//!
//! The stabilizing Stenning pays for its tagged alphabet and flush phase;
//! the stabilizing β pays for its silence-resync gaps. Both must converge
//! within the closed-form bounds `stab_stenning_bound` /
//! `stab_beta_bound` — this experiment measures how much of that budget
//! real corrupted runs actually use.

use super::{ExperimentId, ExperimentOutput};
use crate::table::Table;
use rstp_core::protocols::stabilizing::{stab_beta_bound, stab_stenning_bound};
use rstp_core::{Message, TimingParams};
use rstp_sim::adversary::{DeliveryPolicy, StepPolicy};
use rstp_sim::harness::{random_input, run_configured, ProtocolKind, RunConfig};
use rstp_sim::{run_corrupted, CorruptionSpec};

/// One stabilizing-vs-baseline comparison.
#[derive(Clone, Debug)]
pub struct Row {
    /// Stabilizing protocol label.
    pub protocol: String,
    /// Non-stabilizing baseline label.
    pub baseline: String,
    /// Clean-run effort (packets per message) of the stabilizing variant.
    pub effort: f64,
    /// Clean-run effort of the baseline.
    pub baseline_effort: f64,
    /// Corrupted runs attempted.
    pub runs: usize,
    /// Corrupted runs in which the fault fired.
    pub faults_fired: usize,
    /// Largest observed stabilization time (ticks from fault to last
    /// divergent write; 0 when no run wrote garbage).
    pub max_stab_ticks: u64,
    /// The documented stabilization-time bound in ticks.
    pub bound_ticks: u64,
}

impl Row {
    /// Clean-run effort overhead of stabilizing over the baseline.
    #[must_use]
    pub fn overhead(&self) -> f64 {
        if self.baseline_effort > 0.0 {
            self.effort / self.baseline_effort
        } else {
            f64::NAN
        }
    }
}

fn clean_effort(kind: ProtocolKind, params: TimingParams, input: &[Message]) -> f64 {
    let run = run_configured(
        &RunConfig {
            kind,
            params,
            step: StepPolicy::AllSlow,
            delivery: DeliveryPolicy::MaxDelay,
            max_events: 3_000_000,
            ..RunConfig::default()
        },
        input,
    )
    .expect("clean run");
    run.metrics.packets_per_message().unwrap_or(f64::NAN)
}

/// Longest tail of `input` appearing contiguously anywhere in `written`
/// (mirrors the rstp-check convergence matcher).
fn tail_occurrence(written: &[Message], input: &[Message]) -> (usize, usize) {
    let max = written.len().min(input.len());
    for l in (1..=max).rev() {
        let tail = &input[input.len() - l..];
        if let Some(start) = written.windows(l).position(|w| w == tail) {
            return (l, start);
        }
    }
    (0, 0)
}

fn corrupted_stats(
    kind: ProtocolKind,
    params: TimingParams,
    input: &[Message],
    seeds: u64,
) -> (usize, usize, u64) {
    let mut fired = 0usize;
    let mut max_ticks = 0u64;
    for seed in 0..seeds {
        let cfg = RunConfig {
            kind,
            params,
            step: StepPolicy::AllSlow,
            delivery: DeliveryPolicy::MaxDelay,
            max_events: 3_000_000,
            ..RunConfig::default()
        };
        let mut step = cfg.step.build(params);
        let mut delivery = cfg
            .delivery
            .build(rstp_automata::TimeDelta::ZERO, params.d());
        let spec = CorruptionSpec {
            at_event: 20 + seed * 7,
            seed: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        let (run, report) = run_corrupted(&cfg, input, step.as_mut(), delivery.as_mut(), spec)
            .expect("corrupted run");
        let Some(applied_at) = report.applied_at else {
            continue;
        };
        fired += 1;
        let written = run.trace.written();
        let (_, tail_start) = tail_occurrence(&written, input);
        if tail_start > 0 {
            let last_garbage = run
                .trace
                .events()
                .iter()
                .filter(|e| matches!(e.action, rstp_core::RstpAction::Write(_)))
                .nth(tail_start - 1)
                .expect("trace contains every counted write");
            if last_garbage.time > applied_at {
                max_ticks = max_ticks.max((last_garbage.time - applied_at).ticks());
            }
        }
    }
    (seeds as usize, fired, max_ticks)
}

/// Runs both stabilizing-vs-baseline comparisons.
#[must_use]
pub fn rows() -> Vec<Row> {
    let params = TimingParams::from_ticks(1, 2, 6).expect("valid parameters");
    let n = 48;
    let input = random_input(n, 0xE13);
    let seeds = 20u64;
    let pairs = [
        (
            ProtocolKind::StabStenning {
                timeout_steps: None,
            },
            ProtocolKind::Stenning {
                timeout_steps: None,
            },
            stab_stenning_bound(params, None),
        ),
        (
            ProtocolKind::StabBeta { k: 4 },
            ProtocolKind::Beta { k: 4 },
            stab_beta_bound(params, 4),
        ),
    ];
    pairs
        .into_iter()
        .map(|(stab, base, bound)| {
            let (runs, fired, max_ticks) = corrupted_stats(stab, params, &input, seeds);
            Row {
                protocol: stab.name(),
                baseline: base.name(),
                effort: clean_effort(stab, params, &input),
                baseline_effort: clean_effort(base, params, &input),
                runs,
                faults_fired: fired,
                max_stab_ticks: max_ticks,
                bound_ticks: bound,
            }
        })
        .collect()
}

/// Renders the experiment.
#[must_use]
pub fn output() -> ExperimentOutput {
    let rows = rows();
    let mut table = Table::new([
        "protocol",
        "baseline",
        "effort",
        "base effort",
        "overhead",
        "faults",
        "max stab (ticks)",
        "bound (ticks)",
    ]);
    for r in &rows {
        table.push([
            r.protocol.clone(),
            r.baseline.clone(),
            format!("{:.2}", r.effort),
            format!("{:.2}", r.baseline_effort),
            format!("{:.2}x", r.overhead()),
            format!("{}/{}", r.faults_fired, r.runs),
            r.max_stab_ticks.to_string(),
            r.bound_ticks.to_string(),
        ]);
    }
    ExperimentOutput {
        id: ExperimentId::E13,
        title: "self-stabilization: effort overhead and stabilization time vs bound".into(),
        table,
        notes: vec![
            "overhead = clean-run packets/message of the stabilizing variant over its baseline"
                .into(),
            "max stab = worst observed fault-to-last-divergent-write gap across seeded corruptions"
                .into(),
            "every observed stabilization time must sit under the documented bound".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stabilization_stays_inside_the_documented_bound() {
        for r in rows() {
            assert!(r.faults_fired > 0, "{}: no fault ever fired", r.protocol);
            assert!(
                r.max_stab_ticks <= r.bound_ticks,
                "{}: observed {} ticks, bound {}",
                r.protocol,
                r.max_stab_ticks,
                r.bound_ticks
            );
            assert!(
                r.overhead().is_finite() && r.overhead() > 0.0,
                "{}: unusable overhead",
                r.protocol
            );
        }
    }
}
