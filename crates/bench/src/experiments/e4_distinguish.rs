//! E4 — Lemmas 5.1 and 5.4 made exhaustive: for every input `X` of length
//! `n`, the interval-multiset signature `P^tr(X)` must be distinct (else
//! the receiver provably cannot tell two inputs apart), and the counting
//! inequality `2^n ≤ ζ_k(δ)^{ℓ(n)}` that yields Theorems 5.3/5.6 must
//! hold. The r-passive signatures come from driving the transmitter alone
//! (Lemma 5.1); the active signatures from full canonical executions under
//! the Figure 2 adversary (Lemma 5.4).

use super::{ExperimentId, ExperimentOutput};
use crate::table::{f2, Table};
use rstp_core::TimingParams;
use rstp_sim::distinguish::{check_alpha, check_beta, check_gamma, DistinguishResult};

/// One exhaustively checked configuration.
#[derive(Clone, Debug)]
pub struct Row {
    /// Protocol label.
    pub protocol: String,
    /// Alphabet size.
    pub k: u64,
    /// Burst/window size `δ1`.
    pub delta1: u64,
    /// The exhaustive check's result.
    pub result: DistinguishResult,
}

/// The checked configurations: `δ1 ∈ {2, 3, 4}`, `k ∈ {2, 3}`, `n ≤ 12`.
#[must_use]
pub fn rows() -> Vec<Row> {
    let mut out = Vec::new();
    for (c1, d) in [(1u64, 2u64), (1, 3), (1, 4)] {
        let params = TimingParams::from_ticks(c1, c1, d).expect("valid parameters");
        let delta1 = params.delta1();
        for n in [6usize, 10] {
            out.push(Row {
                protocol: "alpha".into(),
                k: 2,
                delta1,
                result: check_alpha(params, n),
            });
            for k in [2u64, 3] {
                out.push(Row {
                    protocol: format!("beta(k={k})"),
                    k,
                    delta1,
                    result: check_beta(params, k, n).expect("beta construction"),
                });
            }
        }
    }
    // Lemma 5.4 rows: active-case signatures from canonical executions.
    let params = TimingParams::from_ticks(1, 2, 4).expect("valid parameters"); // δ2 = 2
    for n in [6usize, 10] {
        for k in [2u64, 3] {
            out.push(Row {
                protocol: format!("gamma(k={k})"),
                k,
                delta1: params.delta2(), // the active case counts δ2-windows
                result: check_gamma(params, k, n),
            });
        }
    }
    out
}

/// Renders the experiment.
#[must_use]
pub fn output() -> ExperimentOutput {
    let rows = rows();
    let mut table = Table::new([
        "protocol",
        "k",
        "δ1",
        "n",
        "signatures",
        "ℓ(n)",
        "capacity bits",
        "verdict",
    ]);
    for r in &rows {
        table.push([
            r.protocol.clone(),
            r.k.to_string(),
            r.delta1.to_string(),
            r.result.n.to_string(),
            format!("{}/{}", r.result.distinct_signatures, r.result.total_inputs),
            r.result.max_windows.to_string(),
            f2(r.result.capacity_bits),
            if r.result.injective() {
                "injective".into()
            } else {
                "COLLISION".to_string()
            },
        ]);
    }
    ExperimentOutput {
        id: ExperimentId::E4,
        title: "exhaustive interval-multiset distinguishability (Lemmas 5.1 + 5.4)".into(),
        table,
        notes: vec![
            "signatures = distinct P^tr(X) over all 2^n inputs; must equal 2^n".into(),
            "capacity = ℓ(n)·log2 ζ_k(δ) ≥ n — the counting step of Thms 5.3/5.6".into(),
            "gamma rows use full canonical executions under the Fig 2 adversary".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_configurations_injective() {
        for r in rows() {
            assert!(r.result.injective(), "{}: {}", r.protocol, r.result);
            assert_eq!(r.result.distinct_signatures, r.result.total_inputs);
        }
    }

    #[test]
    fn capacity_inequality_always_respected() {
        for r in rows() {
            assert!(
                r.result.capacity_respected(),
                "{}: {}",
                r.protocol,
                r.result
            );
        }
    }

    #[test]
    fn covers_multiple_deltas_and_ks() {
        let rs = rows();
        let deltas: std::collections::HashSet<u64> = rs.iter().map(|r| r.delta1).collect();
        let ks: std::collections::HashSet<u64> = rs.iter().map(|r| r.k).collect();
        assert!(deltas.len() >= 3);
        assert!(ks.len() >= 2);
    }

    #[test]
    fn includes_active_case_rows() {
        let rs = rows();
        let gammas: Vec<_> = rs
            .iter()
            .filter(|r| r.protocol.starts_with("gamma"))
            .collect();
        assert_eq!(gammas.len(), 4);
        for g in gammas {
            assert!(g.result.injective(), "{}: {}", g.protocol, g.result);
        }
    }
}
