//! E7 — when does *active* beat *r-passive*? (Theorem 5.3 vs 5.6.)
//!
//! The r-passive protocol pays `2·δ1·c2 ≈ 2d·(c2/c1)` per burst window
//! (counted idling inflates with timing uncertainty), while the active
//! protocol pays a flat `3d + c2` (ack-clocked). So `A^γ` overtakes `A^β`
//! once the uncertainty ratio `c2/c1` crosses a threshold — this
//! experiment locates the crossover by bounds and confirms it by
//! measurement, and prices the difference in packets (acks double traffic).

use super::{ExperimentId, ExperimentOutput};
use crate::table::{f2, Table};
use rstp_core::bounds::{self, Family};
use rstp_core::TimingParams;
use rstp_sim::adversary::{DeliveryPolicy, StepPolicy};
use rstp_sim::harness::{random_input, run_configured, ProtocolKind, RunConfig};

/// One uncertainty-ratio row.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// `c2/c1` (with `c1 = 1`).
    pub ratio: u64,
    /// Parameters.
    pub params: TimingParams,
    /// `A^β(k)` guarantee.
    pub beta_upper: f64,
    /// `A^γ(k)` guarantee.
    pub gamma_upper: f64,
    /// Winner per the bounds.
    pub bound_winner: Family,
    /// Measured `A^β(k)` worst effort (AllSlow — the binding schedule).
    pub beta_measured: f64,
    /// Measured `A^γ(k)` worst effort.
    pub gamma_measured: f64,
    /// Packets-per-message of beta (1/b·δ1 data only).
    pub beta_packets_per_msg: f64,
    /// Packets-per-message of gamma (data + acks).
    pub gamma_packets_per_msg: f64,
    /// Gamma's data packet count.
    pub gamma_data: u64,
    /// Gamma's ack count.
    pub gamma_acks: u64,
}

impl Row {
    /// Winner per the measurements.
    #[must_use]
    pub fn measured_winner(&self) -> Family {
        if self.gamma_measured < self.beta_measured {
            Family::Active
        } else {
            Family::Passive
        }
    }
}

/// The alphabet used throughout.
pub const K: u64 = 4;

/// Sweeps `c2/c1 ∈ {1, 2, 4, 8}` at `c1 = 1`, `d = 16`.
#[must_use]
pub fn rows() -> Vec<Row> {
    let n = 480;
    [1u64, 2, 4, 8]
        .into_iter()
        .map(|ratio| {
            let params = TimingParams::from_ticks(1, ratio, 16).expect("valid parameters");
            let input = random_input(n, 0xE7 + ratio);
            let measure = |kind: ProtocolKind| {
                let out = run_configured(
                    &RunConfig {
                        kind,
                        params,
                        step: StepPolicy::AllSlow,
                        delivery: DeliveryPolicy::MaxDelay,
                        ..RunConfig::default()
                    },
                    &input,
                )
                .expect("simulation");
                assert!(out.report.all_good(), "{}", out.report);
                (
                    out.metrics.effort(n).unwrap_or(0.0),
                    out.metrics.packets_per_message().unwrap_or(0.0),
                    out.metrics.data_sends,
                    out.metrics.ack_sends,
                )
            };
            let (beta_measured, beta_ppm, _, _) = measure(ProtocolKind::Beta { k: K });
            let (gamma_measured, gamma_ppm, gamma_data, gamma_acks) =
                measure(ProtocolKind::Gamma { k: K });
            Row {
                ratio,
                params,
                beta_upper: bounds::passive_upper(params, K),
                gamma_upper: bounds::active_upper(params, K),
                bound_winner: bounds::compare_upper_bounds(params, K),
                beta_measured,
                gamma_measured,
                beta_packets_per_msg: beta_ppm,
                gamma_packets_per_msg: gamma_ppm,
                gamma_data,
                gamma_acks,
            }
        })
        .collect()
}

fn family(f: Family) -> &'static str {
    match f {
        Family::Passive => "passive",
        Family::Active => "active",
    }
}

/// Renders the experiment.
#[must_use]
pub fn output() -> ExperimentOutput {
    let rows = rows();
    let mut table = Table::new([
        "c2/c1",
        "beta upper",
        "gamma upper",
        "bound winner",
        "beta meas",
        "gamma meas",
        "meas winner",
        "beta pkt/msg",
        "gamma pkt/msg",
    ]);
    for r in &rows {
        table.push([
            r.ratio.to_string(),
            f2(r.beta_upper),
            f2(r.gamma_upper),
            family(r.bound_winner).to_string(),
            f2(r.beta_measured),
            f2(r.gamma_measured),
            family(r.measured_winner()).to_string(),
            f2(r.beta_packets_per_msg),
            f2(r.gamma_packets_per_msg),
        ]);
    }
    let crossover = bounds::crossover_ratio(1, 16, K, 16);
    ExperimentOutput {
        id: ExperimentId::E7,
        title: format!("passive/active crossover in c2/c1 (k = {K}, d = 16)"),
        table,
        notes: vec![
            format!(
                "bound crossover at c2/c1 = {} (scan of Thm 5.3/5.6 guarantees)",
                crossover.map_or("none".into(), |r| r.to_string())
            ),
            "gamma pays ~2x packets (one ack per data packet) for uncertainty-free rounds".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passive_wins_at_low_uncertainty_active_at_high() {
        let rs = rows();
        assert_eq!(rs.first().unwrap().bound_winner, Family::Passive);
        assert_eq!(rs.last().unwrap().bound_winner, Family::Active);
        assert_eq!(rs.first().unwrap().measured_winner(), Family::Passive);
        assert_eq!(rs.last().unwrap().measured_winner(), Family::Active);
    }

    #[test]
    fn beta_effort_grows_with_uncertainty_gamma_stays_flat() {
        let rs = rows();
        let beta_growth = rs.last().unwrap().beta_measured / rs[0].beta_measured;
        let gamma_growth = rs.last().unwrap().gamma_measured / rs[0].gamma_measured;
        assert!(beta_growth > 4.0, "beta growth {beta_growth}");
        assert!(gamma_growth < 3.0, "gamma growth {gamma_growth}");
    }

    #[test]
    fn acks_double_gamma_traffic() {
        // Gamma sends exactly one ack per data packet, so its channel
        // traffic is exactly twice its data traffic.
        for r in rows() {
            assert_eq!(
                r.gamma_acks, r.gamma_data,
                "ratio {}: acks {} != data {}",
                r.ratio, r.gamma_acks, r.gamma_data
            );
            assert!(r.gamma_packets_per_msg > 0.0);
        }
    }

    #[test]
    fn crossover_exists_within_range() {
        assert!(bounds::crossover_ratio(1, 16, K, 16).is_some());
    }
}
