//! E1 — `A^α` (Figure 1, §4): measured effort vs the closed form `δ1·c2`.
//!
//! The paper states `eff(A^α) = (d/c1)·c2`-ish in one line; this experiment
//! measures the implemented automaton under the full adversary sweep on a
//! grid of parameter triples and shows the measurement converge to the
//! formula (the `(n-1)/n` factor is the finite-input edge).

use super::{ExperimentId, ExperimentOutput};
use crate::table::{f2, Table};
use rstp_core::{bounds, TimingParams};
use rstp_sim::harness::{random_input, worst_case_effort, ProtocolKind};

/// One measured grid point.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Parameters.
    pub params: TimingParams,
    /// Input length.
    pub n: usize,
    /// Worst measured effort over the adversary sweep.
    pub measured: f64,
    /// Closed form `δ1·c2`.
    pub closed_form: f64,
}

impl Row {
    /// measured / closed-form.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.measured / self.closed_form
    }
}

/// The parameter grid: exact and inexact divisions, tight and loose
/// uncertainty.
#[must_use]
pub fn grid() -> Vec<TimingParams> {
    [(1, 1, 4), (1, 2, 8), (2, 3, 12), (1, 4, 16), (3, 5, 30)]
        .into_iter()
        .map(|(c1, c2, d)| TimingParams::from_ticks(c1, c2, d).expect("valid grid point"))
        .collect()
}

/// Measures the grid.
#[must_use]
pub fn rows() -> Vec<Row> {
    let n = 512;
    grid()
        .into_iter()
        .map(|params| {
            let input = random_input(n, 0xE1);
            let sample = worst_case_effort(ProtocolKind::Alpha, params, &input, 0xE1)
                .expect("alpha simulation");
            Row {
                params,
                n,
                measured: sample.effort,
                closed_form: bounds::alpha_effort(params),
            }
        })
        .collect()
}

/// Renders the experiment.
#[must_use]
pub fn output() -> ExperimentOutput {
    let rows = rows();
    let mut table = Table::new(["params", "n", "measured", "δ1·c2", "ratio"]);
    for r in &rows {
        table.push([
            r.params.to_string(),
            r.n.to_string(),
            f2(r.measured),
            f2(r.closed_form),
            f2(r.ratio()),
        ]);
    }
    ExperimentOutput {
        id: ExperimentId::E1,
        title: "A^alpha effort vs closed form δ1·c2 (Figure 1, §4)".into(),
        table,
        notes: vec![
            "measured = worst t(last-send)/n over the step × delivery adversary sweep".into(),
            "ratio -> 1 as n -> ∞ (the (n-1)/n finite-input factor)".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_matches_closed_form_within_finite_n_slack() {
        for r in rows() {
            let ratio = r.ratio();
            assert!(
                ratio > 0.95 && ratio <= 1.0 + 1e-9,
                "{}: ratio {ratio}",
                r.params
            );
        }
    }

    #[test]
    fn grid_covers_exact_and_inexact_division() {
        let g = grid();
        assert!(g.iter().any(|p| p.d().ticks() % p.c1().ticks() == 0));
        assert!(g.len() >= 5);
    }

    #[test]
    fn output_renders() {
        let o = output();
        assert_eq!(o.table.len(), grid().len());
        assert!(o.to_string().contains("E1"));
    }
}
