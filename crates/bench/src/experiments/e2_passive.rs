//! E2 — the r-passive sandwich (Theorem 5.3 and §6.1): for each alphabet
//! size `k`, the measured worst-case effort of `A^β(k)` must lie between
//! the lower bound `δ1·c2 / log2 ζ_k(δ1)` and the protocol guarantee
//! `2·δ1·c2 / ⌊log2 μ_k(δ1)⌋`, with a modest constant-factor gap
//! ("the effort of these solutions is only a constant factor worse than
//! the corresponding lower bound", §1).

use super::{ExperimentId, ExperimentOutput};
use crate::table::{f2, Table};
use rstp_core::{bounds, TimingParams};
use rstp_sim::harness::{random_input, worst_case_effort, ProtocolKind};

/// One `k` row of the sandwich table.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Alphabet size.
    pub k: u64,
    /// Bits per burst, `⌊log2 μ_k(δ1)⌋`.
    pub bits_per_burst: u32,
    /// Theorem 5.3 lower bound.
    pub lower: f64,
    /// Measured worst-case effort.
    pub measured: f64,
    /// Finite-`n` protocol guarantee.
    pub upper_finite: f64,
    /// Asymptotic protocol guarantee (§6.1).
    pub upper: f64,
}

impl Row {
    /// The constant factor measured/lower.
    #[must_use]
    pub fn gap(&self) -> f64 {
        self.measured / self.lower
    }
}

/// The fixed parameters of this experiment: `δ1 = 8`, uncertainty 2.
#[must_use]
pub fn params() -> TimingParams {
    TimingParams::from_ticks(1, 2, 8).expect("valid parameters")
}

/// The alphabet sweep.
#[must_use]
pub fn ks() -> Vec<u64> {
    vec![2, 3, 4, 8, 16]
}

/// Measures the sweep.
#[must_use]
pub fn rows() -> Vec<Row> {
    let p = params();
    let n = 960;
    ks().into_iter()
        .map(|k| {
            let input = random_input(n, 0xE2 + k);
            let sample = worst_case_effort(ProtocolKind::Beta { k }, p, &input, 0xE2)
                .expect("beta simulation");
            Row {
                k,
                bits_per_burst: bounds::block_bits(k, p.delta1()),
                lower: bounds::passive_lower(p, k),
                measured: sample.effort,
                upper_finite: bounds::passive_upper_finite(p, k, n),
                upper: bounds::passive_upper(p, k),
            }
        })
        .collect()
}

/// Renders the experiment.
#[must_use]
pub fn output() -> ExperimentOutput {
    let rows = rows();
    let mut table = Table::new([
        "k",
        "bits/burst",
        "lower",
        "measured",
        "upper(n)",
        "upper(∞)",
        "meas/lower",
    ]);
    for r in &rows {
        table.push([
            r.k.to_string(),
            r.bits_per_burst.to_string(),
            f2(r.lower),
            f2(r.measured),
            f2(r.upper_finite),
            f2(r.upper),
            f2(r.gap()),
        ]);
    }
    ExperimentOutput {
        id: ExperimentId::E2,
        title: format!(
            "r-passive sandwich for A^beta(k) at {} (Thm 5.3 + §6.1)",
            params()
        ),
        table,
        notes: vec![
            "lower = δ1·c2/log2 ζ_k(δ1); upper = 2·δ1·c2/⌊log2 μ_k(δ1)⌋".into(),
            "measured sits inside the sandwich at every k; the gap stays a small constant".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sandwich_holds_at_every_k() {
        for r in rows() {
            assert!(
                r.lower <= r.measured + 1e-9,
                "k={}: measured {} below lower {}",
                r.k,
                r.measured,
                r.lower
            );
            assert!(
                r.measured <= r.upper_finite + 1e-9,
                "k={}: measured {} above upper {}",
                r.k,
                r.measured,
                r.upper_finite
            );
        }
    }

    #[test]
    fn constant_factor_gap() {
        for r in rows() {
            assert!(r.gap() < 6.0, "k={}: gap {}", r.k, r.gap());
        }
    }

    #[test]
    fn effort_decreases_with_k() {
        let rs = rows();
        for w in rs.windows(2) {
            assert!(
                w[1].measured <= w[0].measured + 1e-9,
                "effort should not increase with k: {} -> {}",
                w[0].measured,
                w[1].measured
            );
        }
    }

    #[test]
    fn output_has_all_rows() {
        assert_eq!(output().table.len(), ks().len());
    }
}
