//! E8 — the §7 future-work extension, measured: replace the single delay
//! bound `d` by a window `[d_lo, d_hi]`. The r-passive wait phase only has
//! to cover the *uncertainty* `d_hi - d_lo`, so effort falls linearly as
//! the window narrows, reaching half the classic cost at `d_lo = d_hi`
//! (deterministic-delay channel).

use super::{ExperimentId, ExperimentOutput};
use crate::table::{f2, Table};
use rstp_automata::TimeDelta;
use rstp_core::{ProcessTiming, TimingParams, TimingParamsExt};
use rstp_sim::adversary::{DeliveryPolicy, StepPolicy};
use rstp_sim::harness::{random_input, run_configured, ProtocolKind, RunConfig};

/// One window row.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// The window's lower bound (ticks).
    pub d_lo: u64,
    /// Wait steps per round under the window model.
    pub wait_steps: u64,
    /// Measured effort of the window-optimized protocol.
    pub measured: f64,
    /// The extension's effort guarantee.
    pub bound: f64,
    /// Whether the run was fully correct.
    pub ok: bool,
}

/// Fixed classical parameters; the sweep narrows `d_lo` from 0 to `d`.
#[must_use]
pub fn params() -> TimingParams {
    TimingParams::from_ticks(2, 3, 12).expect("valid parameters")
}

/// The alphabet used.
pub const K: u64 = 4;

/// Sweeps `d_lo ∈ {0, 3, 6, 9, 12}`.
#[must_use]
pub fn rows() -> Vec<Row> {
    let p = params();
    let n = 360;
    [0u64, 3, 6, 9, 12]
        .into_iter()
        .map(|d_lo| {
            let pt = ProcessTiming::new(p.c1(), p.c2()).expect("valid process timing");
            let ext = TimingParamsExt::new(pt, pt, TimeDelta::from_ticks(d_lo), p.d())
                .expect("valid window");
            let input = random_input(n, 0xE8 + d_lo);
            let run = run_configured(
                &RunConfig {
                    kind: ProtocolKind::BetaWindow { k: K },
                    params: p,
                    step: StepPolicy::AllSlow,
                    delivery: DeliveryPolicy::Random { seed: 5 },
                    d_lo_ticks: d_lo,
                    ..RunConfig::default()
                },
                &input,
            )
            .expect("window simulation");
            Row {
                d_lo,
                wait_steps: ext.ext_passive_wait_steps(),
                measured: run.metrics.effort(n).unwrap_or(0.0),
                bound: ext.ext_passive_upper(K),
                ok: run.report.all_good() && run.trace.written() == input,
            }
        })
        .collect()
}

/// Renders the experiment.
#[must_use]
pub fn output() -> ExperimentOutput {
    let rows = rows();
    let mut table = Table::new([
        "d_lo",
        "window",
        "wait steps",
        "measured",
        "bound",
        "correct",
    ]);
    let d = params().d().ticks();
    for r in &rows {
        table.push([
            r.d_lo.to_string(),
            (d - r.d_lo).to_string(),
            r.wait_steps.to_string(),
            f2(r.measured),
            f2(r.bound),
            if r.ok { "yes" } else { "NO" }.to_string(),
        ]);
    }
    ExperimentOutput {
        id: ExperimentId::E8,
        title: format!(
            "delivery window [d_lo, {}] extension at {} (§7 future work)",
            d,
            params()
        ),
        table,
        notes: vec![
            "wait steps cover only the delay uncertainty d_hi - d_lo".into(),
            "at d_lo = d_hi the wait phase vanishes: effort halves vs the classic model".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_windows_correct() {
        for r in rows() {
            assert!(r.ok, "d_lo = {}", r.d_lo);
        }
    }

    #[test]
    fn effort_and_waits_decrease_as_window_narrows() {
        let rs = rows();
        for w in rs.windows(2) {
            assert!(w[1].wait_steps <= w[0].wait_steps);
            assert!(
                w[1].measured <= w[0].measured + 1e-9,
                "d_lo {} -> {}: {} -> {}",
                w[0].d_lo,
                w[1].d_lo,
                w[0].measured,
                w[1].measured
            );
        }
    }

    #[test]
    fn deterministic_delay_roughly_halves_effort() {
        let rs = rows();
        let classic = rs.first().unwrap().measured;
        let deterministic = rs.last().unwrap().measured;
        let gain = classic / deterministic;
        assert!(
            gain > 1.6 && gain < 2.4,
            "expected ~2x improvement, got {gain}"
        );
    }

    #[test]
    fn measured_respects_extension_bound() {
        for r in rows() {
            // Finite-n slop: allow one block's worth.
            assert!(
                r.measured <= r.bound * 1.1 + 1e-9,
                "d_lo {}: measured {} vs bound {}",
                r.d_lo,
                r.measured,
                r.bound
            );
        }
    }
}
