//! Experiment harness: regenerates every table/figure of the RSTP
//! reproduction (see DESIGN.md §4 for the experiment index).
//!
//! Each experiment module exposes a `run()` returning a rendered
//! [`table::Table`] plus typed rows, so the binary can print them and the
//! tests can assert the *shape* of the results (who wins, bounded ratios,
//! monotonicity) rather than scraping stdout.
//!
//! | id | paper source | what is regenerated |
//! |----|--------------|---------------------|
//! | E1 | Fig 1, §4    | `A^α` measured effort vs closed form `δ1·c2` |
//! | E2 | Thm 5.3, §6.1 | `A^β(k)` sandwich: lower ≤ measured ≤ upper |
//! | E3 | Thm 5.6, §6.2 | `A^γ(k)` sandwich |
//! | E4 | Lemma 5.1    | exhaustive interval-multiset distinguishability |
//! | E5 | Fig 2, §5.2  | interval-batch adversary vs `A^γ(k)` |
//! | E6 | §6 remark    | effort vs `k` (diminishing `1/log k` returns) |
//! | E7 | Thm 5.3 vs 5.6 | passive/active crossover in `c2/c1` |
//! | E8 | §7           | delivery-window `[d_lo, d_hi]` extension |
//! | E9 | §1 (\[BSW69\], \[WZ89\], \[Ste76\]) | fault injection: loss/dup/FIFO vs reordering |
//! | E10 | (extension) | typical vs worst-case effort distribution |
//! | E11 | (extension) | pipelining vs alphabet-spending (`A^δ(k, w)`) |
//! | E12 | (ablations) | positional coding; wait-phase shrink |
//! | E13 | (extension) | self-stabilization: effort overhead, stabilization time vs bound |

#![forbid(unsafe_code)]

pub mod experiments;
pub mod json;
pub mod table;

pub use experiments::{all_experiments, run_experiment, ExperimentId};
pub use json::{experiment_json, json_file_name};
