//! Regenerates every experiment table of the RSTP reproduction.
//!
//! ```text
//! cargo run -p rstp-bench --release --bin reproduce            # all of E1..E9
//! cargo run -p rstp-bench --release --bin reproduce e2 e7      # a subset
//! ```
//!
//! See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
//! recorded paper-vs-measured discussion.

use rstp_bench::{all_experiments, run_experiment, ExperimentId};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<ExperimentId> = if args.is_empty() || args.iter().any(|a| a == "all") {
        all_experiments()
    } else {
        args.iter()
            .map(|a| {
                ExperimentId::parse(a).unwrap_or_else(|| {
                    eprintln!("unknown experiment {a:?}; expected e1..e9 or all");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    println!("RSTP reproduction — Wang & Zuck, Real-Time Sequence Transmission Problem (1991)");
    println!("{} experiment(s)\n", ids.len());
    for id in ids {
        let out = run_experiment(id);
        println!("{out}");
        println!();
    }
}
