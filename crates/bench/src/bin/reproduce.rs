//! Regenerates every experiment table of the RSTP reproduction.
//!
//! ```text
//! cargo run -p rstp-bench --release --bin reproduce            # all of E1..E9
//! cargo run -p rstp-bench --release --bin reproduce e2 e7      # a subset
//! cargo run -p rstp-bench --release --bin reproduce --json out/   # + BENCH_e*.json
//! ```
//!
//! With `--json <dir>` each experiment additionally writes
//! `<dir>/BENCH_<id>.json` (records of experiment id, grid point, measured
//! effort, lower/upper bound, and measured/lower ratio).
//!
//! See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
//! recorded paper-vs-measured discussion.

use rstp_bench::{all_experiments, experiment_json, json_file_name, run_experiment, ExperimentId};
use std::path::PathBuf;

fn main() {
    let mut json_dir: Option<PathBuf> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(arg) = raw.next() {
        if arg == "--json" {
            match raw.next() {
                Some(dir) => json_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--json requires an output directory");
                    std::process::exit(2);
                }
            }
        } else {
            selected.push(arg);
        }
    }

    let ids: Vec<ExperimentId> = if selected.is_empty() || selected.iter().any(|a| a == "all") {
        all_experiments()
    } else {
        selected
            .iter()
            .map(|a| {
                ExperimentId::parse(a).unwrap_or_else(|| {
                    eprintln!("unknown experiment {a:?}; expected e1..e13 or all");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    if let Some(dir) = &json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    println!("RSTP reproduction — Wang & Zuck, Real-Time Sequence Transmission Problem (1991)");
    println!("{} experiment(s)\n", ids.len());
    for id in ids {
        let out = run_experiment(id);
        println!("{out}");
        if let Some(dir) = &json_dir {
            let path = dir.join(json_file_name(&out));
            let doc = experiment_json(&out).render() + "\n";
            if let Err(e) = std::fs::write(&path, doc) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            println!("  wrote {}", path.display());
        }
        println!();
    }
}
