//! `serve_perf` — the serve-path performance baseline.
//!
//! Three hot paths, three throughput numbers, one committed JSON file:
//!
//! * `swarm_msgs_per_sec` — aggregate message throughput of a paced
//!   16-session mem-fabric swarm (the end-to-end serve path: hub, shard
//!   step loop, timer wheel, codec, verdicts);
//! * `wheel_ops_per_sec` — raw schedule+fire throughput of the
//!   hierarchical [`TimerWheel`] under the shard's reschedule pattern;
//! * `codec_frames_per_sec` — v2 session-frame encode+decode round
//!   trips per second.
//!
//! ```text
//! serve_perf --write BENCH_serve.json     # refresh the baseline
//! serve_perf --check BENCH_serve.json     # CI: fail on >15% regression
//! serve_perf --check BENCH_serve.json --tolerance 0.25
//! ```
//!
//! `--check` fails only on *regressions* past the budget; a machine
//! that got faster prints a refresh hint instead of failing CI. The
//! harness is std-only and hand-rolled (criterion stays a
//! dev-dependency of the effort benches); wall time is read through
//! [`TickClock`], the workspace's one sanctioned clock.

use rstp_bench::json::Json;
use rstp_core::{Packet, SessionId, TimingParams};
use rstp_net::{codec_for, decode_any, TickClock};
use rstp_serve::{run_swarm, SwarmConfig, TimerWheel};
use rstp_sim::ProtocolKind;
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Duration;

/// Default regression budget: a measured value may fall at most 15%
/// below the committed baseline.
const DEFAULT_TOLERANCE: f64 = 0.15;

/// Repetitions per microbenchmark; the best run is reported so a single
/// scheduler hiccup cannot fake a regression.
const REPS: usize = 3;

struct Metric {
    name: &'static str,
    value: f64,
    unit: &'static str,
}

/// A 1 µs-tick clock used purely as a stopwatch.
fn stopwatch() -> TickClock {
    TickClock::start(Duration::from_micros(1))
}

/// Best-of-[`REPS`] ops/sec for `ops` operations per run of `body`.
fn best_rate(ops: f64, mut body: impl FnMut()) -> f64 {
    let clock = stopwatch();
    let mut best = 0.0f64;
    for _ in 0..REPS {
        let start = clock.now_micros();
        body();
        let elapsed = clock.now_micros().saturating_sub(start).max(1);
        best = best.max(ops * 1e6 / elapsed as f64);
    }
    best
}

fn bench_swarm() -> Result<f64, String> {
    let params = TimingParams::from_ticks(1, 2, 8).map_err(|e| e.to_string())?;
    let mut config = SwarmConfig::new(
        ProtocolKind::Beta { k: 4 },
        64,
        16,
        params,
        Duration::from_micros(200),
    );
    config.oracle_sample = 0;
    let report = run_swarm(&config).map_err(|e| e.to_string())?;
    if !report.all_good() {
        return Err(format!("baseline swarm failed:\n{}", report.summary()));
    }
    Ok(report.serve.throughput_msgs_per_sec())
}

fn bench_wheel() -> f64 {
    const ENTRIES: u64 = 200_000;
    // One op = one schedule or one fired deadline; every entry does both.
    best_rate((2 * ENTRIES) as f64, || {
        let mut wheel = TimerWheel::new();
        // Mixed horizons across wheel levels, like a shard with sessions
        // at different gaps; then drain in shard-sized strides.
        for i in 0..ENTRIES {
            wheel.schedule(1 + i / 16 + (i % 64) * 3, i as u32);
        }
        let mut due = Vec::new();
        let mut now = 0u64;
        while !wheel.is_empty() {
            now += 64;
            wheel.advance(now, &mut due);
            black_box(due.len());
            due.clear();
        }
    })
}

fn bench_codec() -> Result<f64, String> {
    const FRAMES: u64 = 200_000;
    let codec = codec_for(ProtocolKind::Beta { k: 4 }).map_err(|e| e.to_string())?;
    let session = SessionId::new(7);
    Ok(best_rate(FRAMES as f64, || {
        for i in 0..FRAMES {
            let bytes = codec.encode_with_session(Packet::Data(i % 4), i, i * 200, session);
            let frame = decode_any(black_box(&bytes)).expect("round trip");
            black_box(frame.seq);
        }
    }))
}

fn measure() -> Result<Vec<Metric>, String> {
    Ok(vec![
        Metric {
            name: "swarm_msgs_per_sec",
            value: bench_swarm()?,
            unit: "msgs/s",
        },
        Metric {
            name: "wheel_ops_per_sec",
            value: bench_wheel(),
            unit: "ops/s",
        },
        Metric {
            name: "codec_frames_per_sec",
            value: bench_codec()?,
            unit: "frames/s",
        },
    ])
}

fn render(metrics: &[Metric]) -> String {
    let records = metrics
        .iter()
        .map(|m| {
            Json::Obj(vec![
                ("metric".into(), Json::Str(m.name.into())),
                ("value".into(), Json::Num(m.value.round())),
                ("unit".into(), Json::Str(m.unit.into())),
            ])
        })
        .collect();
    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("serve".into())),
        ("schema_version".into(), Json::Num(1.0)),
        ("records".into(), Json::Arr(records)),
    ]);
    let mut text = doc.render();
    text.push('\n');
    text
}

/// Extracts `(metric, value)` pairs from a rendered baseline document.
/// A full JSON parser is overkill for a schema this bin also writes:
/// every record renders as a `"metric": "name"` line followed by a
/// `"value": N` line.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut metric: Option<String> = None;
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if let Some(rest) = line.strip_prefix("\"metric\": \"") {
            metric = rest.strip_suffix('"').map(str::to_string);
        } else if let Some(rest) = line.strip_prefix("\"value\": ") {
            if let (Some(name), Ok(value)) = (metric.take(), rest.parse::<f64>()) {
                out.push((name, value));
            }
        }
    }
    out
}

/// Compares measured metrics against a baseline. Returns human-readable
/// lines and whether any metric regressed past the budget.
fn compare(metrics: &[Metric], baseline: &[(String, f64)], tolerance: f64) -> (String, bool) {
    let mut out = String::new();
    let mut regressed = false;
    for (name, base) in baseline {
        let Some(m) = metrics.iter().find(|m| m.name == *name) else {
            out.push_str(&format!(
                "{name}: in baseline but not measured — REGRESSION\n"
            ));
            regressed = true;
            continue;
        };
        let ratio = if *base > 0.0 {
            m.value / base
        } else {
            f64::INFINITY
        };
        let verdict = if ratio < 1.0 - tolerance {
            regressed = true;
            "REGRESSION"
        } else if ratio > 1.0 + tolerance {
            "faster than baseline — consider --write to refresh"
        } else {
            "ok"
        };
        out.push_str(&format!(
            "{name}: measured {measured:.0} vs baseline {base:.0} {unit} ({pct:+.1}%) {verdict}\n",
            measured = m.value,
            unit = m.unit,
            pct = (ratio - 1.0) * 100.0,
        ));
    }
    for m in metrics {
        if !baseline.iter().any(|(n, _)| n == m.name) {
            out.push_str(&format!(
                "{}: measured {:.0} {} but missing from baseline — rerun with --write\n",
                m.name, m.value, m.unit
            ));
            regressed = true;
        }
    }
    (out, regressed)
}

fn run() -> Result<String, String> {
    let mut args = std::env::args().skip(1);
    let mut write: Option<String> = None;
    let mut check: Option<String> = None;
    let mut tolerance = DEFAULT_TOLERANCE;
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--write" => write = Some(value("--write")?),
            "--check" => check = Some(value("--check")?),
            "--tolerance" => {
                tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?;
            }
            other => {
                return Err(format!(
                    "unknown flag {other}; usage: serve_perf [--write FILE] [--check FILE] \
                     [--tolerance FRACTION]"
                ))
            }
        }
    }

    let mut metrics = measure()?;
    if write.is_some() {
        // A baseline is a floor, not a trophy: keep the slowest of three
        // full passes per metric so ordinary scheduler noise on the
        // measuring machine does not get committed as the bar.
        for _ in 0..2 {
            for (m, again) in metrics.iter_mut().zip(measure()?) {
                m.value = m.value.min(again.value);
            }
        }
    }
    let mut out = String::new();
    for m in &metrics {
        out.push_str(&format!("{}: {:.0} {}\n", m.name, m.value, m.unit));
    }
    if let Some(path) = write {
        std::fs::write(&path, render(&metrics)).map_err(|e| format!("write {path}: {e}"))?;
        out.push_str(&format!("baseline written to {path}\n"));
    }
    if let Some(path) = check {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read baseline {path}: {e}"))?;
        let baseline = parse_baseline(&text);
        if baseline.is_empty() {
            return Err(format!("no metrics parsed from baseline {path}"));
        }
        let (diff, regressed) = compare(&metrics, &baseline, tolerance);
        out.push_str(&diff);
        if regressed {
            return Err(format!(
                "{out}perf regression past the ±{:.0}% budget",
                tolerance * 100.0
            ));
        }
        out.push_str(&format!(
            "within the ±{:.0}% regression budget\n",
            tolerance * 100.0
        ));
    }
    Ok(out)
}

fn main() -> ExitCode {
    match run() {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve_perf: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(name: &'static str, value: f64) -> Metric {
        Metric {
            name,
            value,
            unit: "ops/s",
        }
    }

    #[test]
    fn baseline_round_trips_through_render_and_parse() {
        let metrics = vec![metric("wheel_ops_per_sec", 1_000_000.0)];
        let parsed = parse_baseline(&render(&metrics));
        assert_eq!(parsed, vec![("wheel_ops_per_sec".to_string(), 1_000_000.0)]);
    }

    #[test]
    fn compare_flags_only_regressions() {
        let base = vec![("m".to_string(), 100.0)];
        // 10% down: within a 15% budget.
        let (_, regressed) = compare(&[metric("m", 90.0)], &base, 0.15);
        assert!(!regressed);
        // 20% down: regression.
        let (out, regressed) = compare(&[metric("m", 80.0)], &base, 0.15);
        assert!(regressed, "{out}");
        // 40% up: not a failure, just a refresh hint.
        let (out, regressed) = compare(&[metric("m", 140.0)], &base, 0.15);
        assert!(!regressed);
        assert!(out.contains("refresh"), "{out}");
    }

    #[test]
    fn missing_metrics_fail_in_both_directions() {
        let base = vec![("gone".to_string(), 100.0)];
        let (out, regressed) = compare(&[metric("new", 5.0)], &base, 0.15);
        assert!(regressed);
        assert!(out.contains("not measured"), "{out}");
        assert!(out.contains("missing from baseline"), "{out}");
    }

    #[test]
    fn wheel_and_codec_benches_produce_positive_rates() {
        assert!(bench_wheel() > 0.0);
        assert!(bench_codec().expect("codec") > 0.0);
    }
}
