//! Minimal aligned-text table rendering for the experiment binaries.

/// A simple right-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have the same arity as the header).
    pub fn push<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The column headers.
    #[must_use]
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows, in insertion order.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns (first column left-aligned, the rest
    /// right-aligned).
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i == 0 {
                    out.push_str(&format!("{cell:<w$}"));
                } else {
                    out.push_str(&format!("  {cell:>w$}"));
                }
            }
            out.push('\n');
        };
        render_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }
}

/// Formats a float with two decimals (the tables' standard cell format).
#[must_use]
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.push(["a", "1"]);
        t.push(["long-name", "123456"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        // all lines same width
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].starts_with("name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push(["only-one"]);
    }

    #[test]
    fn f2_formats() {
        assert_eq!(f2(1.0 / 3.0), "0.33");
    }
}
