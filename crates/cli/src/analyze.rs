//! `rstp analyze` — invariant lints and the static lock-order detector.
//!
//! ```text
//! rstp analyze                                   # lint the current tree
//! rstp analyze --root ../rstp                    # lint another checkout
//! rstp analyze --json analyze.json               # machine-readable report
//! rstp analyze --emit-lock-order analysis/lock-order.toml
//! rstp analyze --emit-call-graph callgraph.dot   # Graphviz call graph
//! ```
//!
//! Exit status mirrors `rstp check`: zero when every finding is either
//! fixed or baselined with a justification, nonzero (2) otherwise. The
//! `--json` file is written *before* findings turn into a nonzero exit,
//! so CI can always collect it as an artifact.

use std::fs;
use std::path::Path;

use crate::args::{ArgError, Args};
use rstp_analyze::{analyze_workspace, callgraph, lockorder, report_json, report_text};

const FLAGS: &[&str] = &["root", "json", "emit-lock-order", "emit-call-graph"];

/// `rstp analyze`
pub fn cmd_analyze(args: &Args) -> Result<String, ArgError> {
    args.ensure_known(FLAGS)?;
    let root = Path::new(args.get("root").unwrap_or("."));
    let mut report = analyze_workspace(root).map_err(ArgError)?;

    if let Some(rel) = args.get("emit-lock-order") {
        let target = root.join(rel);
        if let Some(parent) = target.parent() {
            fs::create_dir_all(parent)
                .map_err(|e| ArgError(format!("create {}: {e}", parent.display())))?;
        }
        fs::write(&target, lockorder::render_toml(&report.graph))
            .map_err(|e| ArgError(format!("write {}: {e}", target.display())))?;
        // The file now matches the extracted graph by construction.
        report.findings.retain(|f| f.rule != "lock-order-drift");
    }

    if let Some(rel) = args.get("emit-call-graph") {
        let target = root.join(rel);
        if let Some(parent) = target.parent() {
            fs::create_dir_all(parent)
                .map_err(|e| ArgError(format!("create {}: {e}", parent.display())))?;
        }
        fs::write(&target, callgraph::render_dot(&report.call_graph))
            .map_err(|e| ArgError(format!("write {}: {e}", target.display())))?;
    }

    if let Some(path) = args.get("json") {
        fs::write(path, report_json(&report))
            .map_err(|e| ArgError(format!("write {path}: {e}")))?;
    }

    let text = report_text(&report);
    if report.is_clean() {
        Ok(text)
    } else {
        Err(ArgError(format!(
            "invariant violations:\n{text}fix the finding or baseline it in \
             analysis/baseline.toml with a reason (see docs/ANALYSIS.md)"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(argv: &[&str]) -> Result<String, ArgError> {
        cmd_analyze(&Args::parse(argv.iter().copied()).unwrap())
    }

    fn workspace_root() -> std::path::PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
    }

    #[test]
    fn analyze_is_clean_on_this_workspace() {
        let root = workspace_root();
        let out = run(&["analyze", "--root", root.to_str().unwrap()]).unwrap_or_else(|e| {
            panic!("workspace must analyze clean: {e}");
        });
        assert!(out.contains("acyclic"), "{out}");
    }

    #[test]
    fn json_flag_writes_a_report() {
        let root = workspace_root();
        let path = std::env::temp_dir().join("rstp-analyze-cli-test.json");
        let path_s = path.to_str().unwrap().to_string();
        let _ = run(&[
            "analyze",
            "--root",
            root.to_str().unwrap(),
            "--json",
            &path_s,
        ]);
        let text = fs::read_to_string(&path).expect("json written");
        assert!(text.contains("\"tool\": \"rstp-analyze\""), "{text}");
        assert!(text.contains("\"lock_order\""), "{text}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn call_graph_flag_writes_dot() {
        let root = workspace_root();
        let path = std::env::temp_dir().join("rstp-analyze-cli-test.dot");
        let path_s = path.to_str().unwrap().to_string();
        let _ = run(&[
            "analyze",
            "--root",
            root.to_str().unwrap(),
            "--emit-call-graph",
            &path_s,
        ]);
        let text = fs::read_to_string(&path).expect("dot written");
        assert!(
            text.starts_with("// Workspace call graph"),
            "{}",
            &text[..80.min(text.len())]
        );
        assert!(text.contains("digraph calls {"), "missing digraph header");
        assert!(
            text.contains("serve/shard::run_shard"),
            "the shard loop must appear as a node"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn unknown_flag_is_rejected() {
        assert!(run(&["analyze", "--bogus", "1"]).is_err());
    }
}
