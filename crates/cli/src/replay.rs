//! `rstp replay` — deterministic postmortem replay of a flight
//! recording.
//!
//! ```text
//! rstp swarm --sessions 256 --protocol gamma --k 4 --record /tmp/rec
//! rstp replay --dir /tmp/rec                      # sim↔recording differential, all sessions
//! rstp replay --dir /tmp/rec --session 17         # one session, in detail
//! rstp replay --dir /tmp/rec --session 17 --shrink tests/corpus/bug.repro
//! ```
//!
//! The sweep bridges every recorded session back into a fuzzer
//! [`Scenario`](rstp_check::Scenario) (recorded pop gaps become the
//! receiver step script, measured frame flight times become the
//! delivery script) and replays it through the simulator's full oracle
//! stack. A session whose recording and replay disagree — or whose
//! recorded verdict was already wrong — fails the command, and
//! `--shrink` delta-debugs it down to a minimal committed repro.

use crate::args::{parse_bits, ArgError, Args};
use core::fmt::Write as _;
use rstp_check::{
    ack_loss_failure, acked_prefix, bridge_session, render_repro, replay_session, shrink_ack_loss,
    shrink_from_recording, BridgedSession, Expectation, Failure, Repro,
};
use rstp_record::SessionIndex;
use std::fs;
use std::path::Path;

const REPLAY_FLAGS: &[&str] = &["dir", "session", "input", "shrink", "budget"];

/// One session's differential outcome, for the sweep table.
struct Row {
    session: u32,
    recorded: String,
    sim: String,
    differential: String,
    bad: bool,
}

/// Classifies one bridged session. `holes` is true when the session's
/// own shard shed recorder events: a history with holes can make the
/// bridge reconstruct a perfectly healthy transfer as one with dropped
/// frames, so a sim-side failure against an ok recorded verdict is
/// *inconclusive* there, not a divergence. A recorded verdict that is
/// itself wrong stays fatal — shedding can drop whole events, never
/// corrupt a written one.
///
/// `ack` is the no-acknowledged-loss oracle's view of the history. Its
/// missing-verdict flavor softens to inconclusive under holes (the
/// verdict may simply have been shed); its content flavors stay fatal
/// for the same reason wrong verdicts do.
fn describe(bridged: &BridgedSession, holes: bool, ack: Option<&Failure>) -> Row {
    let report = replay_session(bridged);
    let input = &bridged.scenario.input;
    let recorded_ok = bridged.recorded_completed == Some(true)
        && bridged.recorded_written.as_ref() == Some(input);
    let recorded = match (&bridged.recorded_written, bridged.recorded_completed) {
        (Some(w), completed) => {
            if recorded_ok {
                format!("ok ({}/{} bits)", w.len(), input.len())
            } else {
                format!(
                    "FAILED ({}/{} bits{})",
                    w.len(),
                    input.len(),
                    if completed == Some(false) {
                        ", unfinished"
                    } else {
                        ""
                    }
                )
            }
        }
        (None, _) => "no verdict".into(),
    };
    let sim_ok = report.sim_failure.is_none();
    let sim = match &report.sim_failure {
        None => "ok".into(),
        Some(f) => f.to_string(),
    };
    let inconclusive = holes && (recorded_ok && !sim_ok || bridged.recorded_written.is_none());
    let (differential, mut bad) = if inconclusive {
        ("inconclusive (shard shed events)".to_string(), false)
    } else {
        (
            if report.divergent {
                "DIVERGED"
            } else {
                "agree"
            }
            .to_string(),
            // A session is bad when its replay disagrees with the
            // recording, or both agree the run misbehaved.
            report.divergent || !recorded_ok || !sim_ok,
        )
    };
    let mut recorded = recorded;
    if ack.is_some() && !(holes && bridged.recorded_written.is_none()) {
        recorded = format!("ACK LOSS, {recorded}");
        bad = true;
    }
    Row {
        session: bridged.session,
        recorded,
        sim,
        differential,
        bad,
    }
}

/// `rstp replay`
pub fn cmd_replay(args: &Args) -> Result<String, ArgError> {
    args.ensure_known(REPLAY_FLAGS)?;
    let dir = args
        .get("dir")
        .ok_or_else(|| ArgError("--dir <recording dir> is required".into()))?;
    let index = SessionIndex::from_dir(Path::new(dir)).map_err(|e| ArgError(e.to_string()))?;

    let mut out = String::new();
    if let Some((c1, c2, d)) = index.params {
        let _ = writeln!(
            out,
            "recording : {dir} — {} sessions, params {c1} {c2} {d}, tick {} us{}",
            index.len(),
            index.tick_micros.unwrap_or(0),
            match index.seed {
                Some(s) => format!(", seed {s}"),
                None => String::new(),
            }
        );
    }
    if index.dropped > 0 {
        let _ = writeln!(
            out,
            "warning   : {} events were shed under saturation; histories may have holes",
            index.dropped
        );
    }
    if index.truncated {
        let _ = writeln!(out, "warning   : a shard file was truncated mid-record");
    }

    match args.get("session") {
        Some(raw) => {
            let session: u32 = raw
                .parse()
                .map_err(|_| ArgError(format!("--session expects an id, got {raw:?}")))?;
            replay_one(args, &index, session, dir, out)
        }
        None => replay_all(&index, out),
    }
}

/// The sweep: every recorded session through the differential.
fn replay_all(index: &SessionIndex, mut out: String) -> Result<String, ArgError> {
    let mut rows = Vec::new();
    for h in index.sessions() {
        let bridged =
            bridge_session(index, h.session, None).map_err(|e| ArgError(e.to_string()))?;
        let holes = index.shard_dropped.contains_key(&h.shard);
        let ack = ack_loss_failure(h);
        rows.push(describe(&bridged, holes, ack.as_ref()));
    }
    let _ = writeln!(
        out,
        "{:>8}  {:<24} {:<40} differential",
        "session", "recorded", "sim replay"
    );
    for r in &rows {
        let _ = writeln!(
            out,
            "{:>8}  {:<24} {:<40} {}",
            r.session, r.recorded, r.sim, r.differential
        );
    }
    let bad: Vec<u32> = rows.iter().filter(|r| r.bad).map(|r| r.session).collect();
    let inconclusive = rows
        .iter()
        .filter(|r| r.differential.starts_with("inconclusive"))
        .count();
    if inconclusive > 0 {
        let _ = writeln!(
            out,
            "note      : {inconclusive} session(s) inconclusive — their shard shed events, \
             so the bridged replay cannot be trusted against them"
        );
    }
    if bad.is_empty() {
        let _ = writeln!(
            out,
            "verdict   : {}",
            if inconclusive > 0 {
                "recording and simulator agree on every conclusive session"
            } else {
                "recording and simulator agree; every session delivered Y = X \
                 and no acknowledged write was lost"
            }
        );
        Ok(out)
    } else {
        let _ = writeln!(
            out,
            "verdict   : REPLAY FAILED for sessions {bad:?} — rerun with \
             --session <id> --shrink <file> to minimize"
        );
        Err(ArgError(out))
    }
}

/// One session in detail, with optional shrink-to-repro.
fn replay_one(
    args: &Args,
    index: &SessionIndex,
    session: u32,
    dir: &str,
    mut out: String,
) -> Result<String, ArgError> {
    let input_override = match args.get("input") {
        Some(bits) => Some(parse_bits(bits)?),
        None => None,
    };
    let bridged =
        bridge_session(index, session, input_override).map_err(|e| ArgError(e.to_string()))?;
    let h = index.get(session).expect("bridged session exists");
    let _ = writeln!(
        out,
        "session   : {session} on shard {} — {}, n = {}, {} frames in, {} out, \
         {} pops, {} misses",
        h.shard,
        bridged.scenario.kind.name(),
        bridged.scenario.input.len(),
        h.rx.len(),
        h.tx.len(),
        h.pops.len(),
        h.misses.len()
    );

    let report = replay_session(&bridged);
    let ack = ack_loss_failure(h);
    let row = describe(
        &bridged,
        index.shard_dropped.contains_key(&h.shard),
        ack.as_ref(),
    );
    let _ = writeln!(out, "recorded  : {}", row.recorded);
    match (&ack, h.writes.last()) {
        (Some(f), _) => {
            let _ = writeln!(out, "ack floor : LOST — {f}");
        }
        (None, Some(&(_, floor, _))) => {
            let _ = writeln!(
                out,
                "ack floor : {floor} acknowledged write(s), all present in the verdict"
            );
        }
        (None, None) => {}
    }
    let _ = writeln!(
        out,
        "sim replay: {} ({} events, wrote {} bits)",
        row.sim,
        report.events,
        report.sim_written.len()
    );
    let _ = writeln!(
        out,
        "differential: {}",
        match row.differential.as_str() {
            "agree" => "sim output matches the recorded verdict",
            "DIVERGED" => "DIVERGED — sim and recording disagree",
            other => other,
        }
    );

    if let Some(path) = args.get("shrink") {
        let budget = u32::try_from(args.get_u64("budget", 2000)?).unwrap_or(u32::MAX);
        // The ack-loss oracle participates in shrinking through its own
        // predicate: when the standard oracle stack has nothing to
        // shrink but the replay contradicts an acknowledged write, the
        // shrinker minimizes while preserving that contradiction.
        let shrunk = shrink_from_recording(&bridged, budget).or_else(|| {
            ack.as_ref()?;
            shrink_ack_loss(&bridged, &acked_prefix(h), budget)
        });
        match shrunk {
            None => {
                let _ = writeln!(
                    out,
                    "shrink    : every oracle passes on the bridged scenario; nothing to shrink"
                );
            }
            Some((minimized, events, failure)) => {
                // In an injected-fault build the bug lives in the build,
                // not the scenario: a normal build replays it clean.
                let (expect, provenance) = if cfg!(rstp_check_inject_ack_bug) {
                    (Expectation::Pass, "injected-fault build")
                } else {
                    (Expectation::Violation, "production recording")
                };
                let rendered = render_repro(&Repro {
                    scenario: minimized,
                    expect,
                    reason: format!(
                        "minimized from recorded session {session} of {dir} ({provenance}); \
                         original failure: {failure}"
                    ),
                });
                fs::write(path, &rendered)
                    .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
                let _ = writeln!(
                    out,
                    "shrink    : {failure}; minimized to {events} events, written to {path}"
                );
            }
        }
    }

    if row.bad {
        Err(ArgError(out))
    } else {
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::dispatch;
    use std::path::PathBuf;

    fn run(argv: &[&str]) -> Result<String, ArgError> {
        dispatch(&Args::parse(argv.iter().copied()).expect("parse"))
    }

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rstp-replay-{tag}-{}", std::process::id()))
    }

    /// A shard that shed events cannot vouch for its histories: an ok
    /// recorded verdict contradicted by the bridged sim replay — or a
    /// missing verdict — is inconclusive there, while the same rows
    /// stay fatal for a complete recording.
    #[test]
    fn shed_histories_soften_the_differential() {
        use rstp_check::Scenario;
        use rstp_core::TimingParams;
        use rstp_sim::harness::ProtocolKind;
        use rstp_sim::{PacketFate, ScriptedDelivery};

        let input = rstp_sim::harness::random_input(8, 5);
        // Losing one copy out of a gamma burst makes the receiver mix
        // adjacent bursts into one multiset and misdecode — the same
        // phantom "network drop" a shed Rx event turns into.
        let mut fates = vec![PacketFate::Drop];
        fates.resize(2, PacketFate::Deliver(0));
        let scenario = Scenario {
            kind: ProtocolKind::Gamma { k: 4 },
            params: TimingParams::from_ticks(1, 2, 4).expect("params"),
            input: input.clone(),
            t_gaps: Vec::new(),
            r_gaps: Vec::new(),
            gap_fallback: 2,
            data: ScriptedDelivery::new(fates, 0),
            ack: ScriptedDelivery::new(Vec::new(), 0),
            corruption: None,
        };
        assert!(
            rstp_check::run_scenario(&scenario, 500_000)
                .failure
                .is_some(),
            "the phantom-drop scenario must fail in the simulator"
        );
        let bridged = BridgedSession {
            session: 9,
            scenario,
            recorded_written: Some(input),
            recorded_completed: Some(true),
        };
        let fatal = describe(&bridged, false, None);
        assert!(fatal.bad, "complete history: divergence is fatal");
        assert_eq!(fatal.differential, "DIVERGED");
        let soft = describe(&bridged, true, None);
        assert!(!soft.bad, "shed history: divergence is inconclusive");
        assert!(
            soft.differential.starts_with("inconclusive"),
            "{}",
            soft.differential
        );

        // A verdict the recorder never captured is likewise only fatal
        // when the shard shed nothing.
        let mut no_verdict = bridged.clone();
        no_verdict.recorded_written = None;
        no_verdict.recorded_completed = None;
        assert!(describe(&no_verdict, false, None).bad);
        assert!(!describe(&no_verdict, true, None).bad);

        // The ack-loss oracle overrides a clean differential — except
        // its missing-verdict flavor on a shard that shed events, where
        // the verdict itself may be the hole.
        let ack = rstp_check::Failure {
            kind: rstp_check::FailureKind::AckLoss,
            detail: "session 9: write #2 lost".into(),
        };
        let flagged = describe(&bridged, false, Some(&ack));
        assert!(flagged.bad);
        assert!(
            flagged.recorded.starts_with("ACK LOSS"),
            "{}",
            flagged.recorded
        );
        assert!(!describe(&no_verdict, true, Some(&ack)).bad);
        assert!(describe(&no_verdict, false, Some(&ack)).bad);
    }

    #[test]
    fn replay_requires_a_directory() {
        assert!(run(&["replay"]).is_err());
        assert!(run(&["replay", "--dir", "/no/such/rstp-recording"]).is_err());
        assert!(run(&["replay", "--bogus", "1"]).is_err());
    }

    // In a normal build a recorded swarm replays clean end to end; the
    // injected-fault test below exercises the failing path.
    #[cfg(not(rstp_check_inject_ack_bug))]
    #[test]
    fn clean_recording_sweeps_and_details_without_divergence() {
        let _gate = crate::commands::swarm_gate();
        let dir = temp_dir("clean");
        let dir_s = dir.to_str().expect("utf8");
        run(&[
            "swarm",
            "--sessions",
            "4",
            "--protocol",
            "gamma",
            "--k",
            "4",
            "--n",
            "8",
            "--c1",
            "1",
            "--c2",
            "2",
            "--d",
            "4",
            "--tick-us",
            "200",
            "--shards",
            "2",
            "--max-wall-s",
            "20",
            "--record",
            dir_s,
        ])
        .expect("recorded swarm");

        let out = run(&["replay", "--dir", dir_s]).expect("sweep");
        assert!(out.contains("4 sessions"), "{out}");
        assert!(out.contains("every session delivered Y = X"), "{out}");

        let out = run(&["replay", "--dir", dir_s, "--session", "2"]).expect("detail");
        assert!(out.contains("session   : 2"), "{out}");
        assert!(
            out.contains("sim output matches the recorded verdict"),
            "{out}"
        );

        assert!(run(&["replay", "--dir", dir_s, "--session", "99"]).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    /// A crash/restart drill leaves a recording whose acknowledged
    /// writes must all survive into the verdicts: the sweep runs the
    /// no-acknowledged-loss oracle over every session, and the detail
    /// view prints the restored floor.
    #[cfg(not(rstp_check_inject_ack_bug))]
    #[test]
    fn crash_recovery_recording_honors_every_acknowledged_write() {
        let _gate = crate::commands::swarm_gate();
        let dir = temp_dir("crash");
        let dir_s = dir.to_str().expect("utf8");
        run(&[
            "swarm",
            "--sessions",
            "8",
            "--protocol",
            "stenning",
            "--n",
            "8",
            "--c1",
            "1",
            "--c2",
            "2",
            "--d",
            "4",
            "--tick-us",
            "200",
            "--shards",
            "2",
            "--max-wall-s",
            "30",
            "--record",
            dir_s,
            "--faults",
            "kill=1@20;restart=1@60",
        ])
        .expect("crash drill");

        // Every acknowledged write is in its verdict or the sweep fails.
        let index = SessionIndex::from_dir(&dir).expect("index");
        assert!(
            index
                .sessions()
                .any(|h| !h.writes.is_empty() && !h.snapshots.is_empty()),
            "the recording must carry write and snapshot records"
        );
        for h in index.sessions() {
            assert!(
                rstp_check::ack_loss_failure(h).is_none(),
                "session {}: {:?}",
                h.session,
                rstp_check::ack_loss_failure(h)
            );
        }

        let out = run(&["replay", "--dir", dir_s, "--session", "1"]).expect("detail");
        assert!(out.contains("ack floor :"), "{out}");
        assert!(out.contains("all present in the verdict"), "{out}");
        let _ = fs::remove_dir_all(&dir);
    }

    /// The full postmortem pipeline on an injected fault: a recorded
    /// swarm fails, `replay` pins the failing sessions, and `--shrink`
    /// produces a minimal repro that parses back.
    ///
    /// `A^γ`'s transmitter (broken by the cfg to advance one ack early)
    /// meets the shard-side burst-final frame deferral; the recorded
    /// delivery order replays deterministically through the simulator.
    #[cfg(rstp_check_inject_ack_bug)]
    #[test]
    fn injected_fault_is_recorded_replayed_and_shrunk() {
        let _gate = crate::commands::swarm_gate();
        let dir = temp_dir("injected");
        let dir_s = dir.to_str().expect("utf8");
        // --oracle-sample 0: the sim oracle shares the injected cfg, so
        // sampling would error out before the verdict table we want.
        // --max-wall-s bounds the stalled (never-completing) sessions.
        let swarm = run(&[
            "swarm",
            "--sessions",
            "4",
            "--protocol",
            "gamma",
            "--k",
            "4",
            "--n",
            "16",
            "--c1",
            "1",
            "--c2",
            "2",
            "--d",
            "4",
            "--tick-us",
            "200",
            "--shards",
            "2",
            "--max-wall-s",
            "5",
            "--oracle-sample",
            "0",
            "--record",
            dir_s,
        ]);
        let text = swarm.expect_err("injected gamma swarm must fail").0;
        assert!(text.contains("SWARM FAILED"), "{text}");
        assert!(
            text.contains("MISMATCHED") || text.contains("INCOMPLETE"),
            "{text}"
        );

        // The sweep pins the failing sessions.
        let sweep = run(&["replay", "--dir", dir_s])
            .expect_err("sweep must fail")
            .0;
        assert!(sweep.contains("REPLAY FAILED"), "{sweep}");

        // Find one failing session and shrink it.
        let index = SessionIndex::from_dir(&dir).expect("index");
        let victim = index
            .sessions()
            .find(|h| {
                h.verdict.as_ref().is_some_and(|(_, completed, w)| {
                    !completed
                        || *w
                            != rstp_sim::harness::random_input(
                                h.n.unwrap_or(0) as usize,
                                index.seed.unwrap().wrapping_add(u64::from(h.session) - 1),
                            )
                })
            })
            .expect("a recorded failure")
            .session;
        let repro_path = dir.join("minimized.repro");
        let repro_s = repro_path.to_str().expect("utf8");
        let detail = run(&[
            "replay",
            "--dir",
            dir_s,
            "--session",
            &victim.to_string(),
            "--shrink",
            repro_s,
            "--budget",
            "6000",
        ])
        .expect_err("failing session exits nonzero")
        .0;
        assert!(detail.contains("minimized to"), "{detail}");

        // The written repro parses and is small enough to read.
        let text = fs::read_to_string(&repro_path).expect("repro written");
        let repro = rstp_check::parse_repro(&text).expect("repro parses");
        assert_eq!(repro.expect, Expectation::Pass);
        assert!(
            repro.reason.contains("injected-fault build"),
            "{}",
            repro.reason
        );
        let run_min = rstp_check::run_scenario(&repro.scenario, 500_000);
        assert!(
            run_min.failure.is_some(),
            "minimized repro must still fail here"
        );
        assert!(
            run_min.events <= 20,
            "expected a small repro, got {} events",
            run_min.events
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
