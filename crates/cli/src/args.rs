//! A small flag parser — `--key value` pairs plus positional arguments.
//! Hand-rolled to keep the dependency set at the workspace's approved five.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command-line arguments: a subcommand, positionals, and flags.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Args {
    /// The first positional (the subcommand), if any.
    pub command: Option<String>,
    /// Remaining positionals.
    pub positional: Vec<String>,
    flags: BTreeMap<String, String>,
}

/// A parse or validation error, rendered for the user.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses an iterator of raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// [`ArgError`] if a `--flag` has no value.
    pub fn parse<I, S>(raw: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = Args::default();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(token) = iter.next() {
            if let Some(name) = token.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| ArgError(format!("--{name} requires a value")))?;
                args.flags.insert(name.to_string(), value);
            } else if args.command.is_none() {
                args.command = Some(token);
            } else {
                args.positional.push(token);
            }
        }
        Ok(args)
    }

    /// A string flag.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A `u64` flag with a default.
    ///
    /// # Errors
    ///
    /// [`ArgError`] if present but unparsable.
    pub fn get_u64(&self, name: &str, default: u64) -> Result<u64, ArgError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{name} expects an integer, got {v:?}"))),
        }
    }

    /// A `usize` flag with a default.
    ///
    /// # Errors
    ///
    /// [`ArgError`] if present but unparsable.
    pub fn get_usize(&self, name: &str, default: usize) -> Result<usize, ArgError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{name} expects an integer, got {v:?}"))),
        }
    }

    /// Rejects any flag not in `allowed`.
    ///
    /// # Errors
    ///
    /// [`ArgError`] naming the first unknown flag.
    pub fn ensure_known(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for name in self.flags.keys() {
            if !allowed.contains(&name.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag --{name}; allowed: {}",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

/// Parses a bit string like `10110` into messages.
///
/// # Errors
///
/// [`ArgError`] on any character other than `0`/`1`.
pub fn parse_bits(s: &str) -> Result<Vec<bool>, ArgError> {
    s.chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(ArgError(format!("invalid bit {other:?} in input"))),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_flags_and_positionals() {
        let a = Args::parse(["run", "--k", "4", "extra", "--n", "100"]).unwrap();
        assert_eq!(a.command.as_deref(), Some("run"));
        assert_eq!(a.positional, vec!["extra"]);
        assert_eq!(a.get("k"), Some("4"));
        assert_eq!(a.get_u64("n", 0).unwrap(), 100);
        assert_eq!(a.get_u64("missing", 7).unwrap(), 7);
    }

    #[test]
    fn missing_value_is_an_error() {
        let e = Args::parse(["run", "--k"]).unwrap_err();
        assert!(e.to_string().contains("requires a value"));
    }

    #[test]
    fn bad_number_is_an_error() {
        let a = Args::parse(["x", "--n", "abc"]).unwrap();
        assert!(a.get_u64("n", 0).is_err());
        assert!(a.get_usize("n", 0).is_err());
    }

    #[test]
    fn unknown_flags_rejected() {
        let a = Args::parse(["x", "--bogus", "1"]).unwrap();
        let e = a.ensure_known(&["k", "n"]).unwrap_err();
        assert!(e.to_string().contains("--bogus"));
        a.ensure_known(&["bogus"]).unwrap();
    }

    #[test]
    fn bit_parsing() {
        assert_eq!(parse_bits("101").unwrap(), vec![true, false, true]);
        assert_eq!(parse_bits("").unwrap(), Vec::<bool>::new());
        assert!(parse_bits("10x").is_err());
    }

    #[test]
    fn empty_args() {
        let a = Args::parse(Vec::<String>::new()).unwrap();
        assert_eq!(a.command, None);
    }
}
