//! The `rstp net` subcommands: run the protocol automata over real
//! transports in wall-clock time.
//!
//! * `net bench` — in-process transfer over a `MemTransport` pair, with
//!   the simulator run on the same input as the oracle and the paper's
//!   lower bound printed alongside the measured wall-clock effort.
//! * `net send` / `net recv` — one endpoint each over UDP, for
//!   two-terminal transfers (see `docs/NET.md` for a walkthrough).

use crate::args::{parse_bits, ArgError, Args};
use core::fmt::Write as _;
use rstp_core::{bounds, Message, TimingParams};
use rstp_net::{
    run_receiver, run_transfer_mem, ChannelConfig, DriverConfig, DriverReport, Pace, TickClock,
    TransferConfig, UdpTransport,
};
use rstp_sim::adversary::{DeliveryPolicy, StepPolicy};
use rstp_sim::harness::{random_input, run_configured, ProtocolKind, RunConfig};
use std::time::Duration;

/// Usage text of the `net` command family.
pub const NET_USAGE: &str = "\
rstp net — real-time transfers over actual transports

USAGE: rstp net <send|recv|bench> [--flag value ...]

  bench   in-process transfer + simulator oracle + paper bound
          --protocol --k [--window W] --c1 --c2 --d --n --seed
          --tick-us TICK --pace fast|slow --loss P --dup P
  send    transmit over UDP      --local ADDR --peer ADDR --tick-us TICK
          (--input BITS | --n N --seed S) + protocol/timing flags
  recv    receive over UDP       --local ADDR --peer ADDR --n N --tick-us TICK
          + protocol/timing flags (verifies against --seed/--input)

Defaults: send binds 127.0.0.1:9000 -> 127.0.0.1:9001, recv the reverse;
UDP tick 1000 us, bench tick 100 us. Start `recv` before `send`.
";

fn timing(args: &Args) -> Result<TimingParams, ArgError> {
    let c1 = args.get_u64("c1", 1)?;
    let c2 = args.get_u64("c2", 2)?;
    let d = args.get_u64("d", 8)?;
    TimingParams::from_ticks(c1, c2, d).map_err(|e| ArgError(e.to_string()))
}

fn protocol(args: &Args) -> Result<ProtocolKind, ArgError> {
    let k = args.get_u64("k", 4)?;
    let window = args.get_u64("window", 2)?.max(1);
    match args.get("protocol").unwrap_or("beta") {
        "alpha" => Ok(ProtocolKind::Alpha),
        "beta" => Ok(ProtocolKind::Beta { k }),
        "gamma" => Ok(ProtocolKind::Gamma { k }),
        "altbit" => Ok(ProtocolKind::AltBit {
            timeout_steps: None,
        }),
        "framed" => Ok(ProtocolKind::Framed { k }),
        "stenning" => Ok(ProtocolKind::Stenning {
            timeout_steps: None,
        }),
        "pipelined" => Ok(ProtocolKind::Pipelined { k, window }),
        "stab-stenning" => Ok(ProtocolKind::StabStenning {
            timeout_steps: None,
        }),
        "stab-beta" => Ok(ProtocolKind::StabBeta { k }),
        other => Err(ArgError(format!(
            "unknown protocol {other:?} (alpha|beta|gamma|altbit|stenning|framed|pipelined|stab-stenning|stab-beta)"
        ))),
    }
}

pub(crate) fn pace(args: &Args) -> Result<Pace, ArgError> {
    match args.get("pace").unwrap_or("slow") {
        "fast" => Ok(Pace::Fast),
        "slow" => Ok(Pace::Slow),
        other => Err(ArgError(format!("unknown pace {other:?} (fast|slow)"))),
    }
}

pub(crate) fn tick_of(args: &Args, default_us: u64) -> Result<Duration, ArgError> {
    let us = args.get_u64("tick-us", default_us)?;
    if us == 0 {
        return Err(ArgError("--tick-us must be positive".into()));
    }
    Ok(Duration::from_micros(us))
}

fn rate_of(args: &Args, name: &str) -> Result<f64, ArgError> {
    match args.get(name) {
        None => Ok(0.0),
        Some(v) => {
            let p: f64 = v
                .parse()
                .map_err(|_| ArgError(format!("--{name} expects a probability, got {v:?}")))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(ArgError(format!("--{name} must lie in [0, 1], got {p}")));
            }
            Ok(p)
        }
    }
}

fn input_of(args: &Args) -> Result<Vec<Message>, ArgError> {
    if let Some(bits) = args.get("input") {
        parse_bits(bits)
    } else {
        let n = args.get_usize("n", 64)?;
        let seed = args.get_u64("seed", 0)?;
        Ok(random_input(n, seed))
    }
}

/// The lower bound of the protocol's family at these parameters, with its
/// theorem label — `None` for the baseline protocols the paper does not
/// bound.
fn family_lower_bound(
    kind: ProtocolKind,
    params: TimingParams,
    k: u64,
) -> Option<(f64, &'static str)> {
    match kind {
        ProtocolKind::Beta { .. }
        | ProtocolKind::Framed { .. }
        | ProtocolKind::BetaWindow { .. } => Some((bounds::passive_lower(params, k), "Thm 5.3")),
        ProtocolKind::Gamma { .. } | ProtocolKind::Pipelined { .. } => {
            Some((bounds::active_lower(params, k), "Thm 5.6"))
        }
        ProtocolKind::Alpha => Some((bounds::alpha_effort(params), "Fig 1 closed form")),
        // The stabilizing variants trade effort for convergence; the
        // paper's lower bounds do not apply to their tagged alphabets.
        ProtocolKind::AltBit { .. }
        | ProtocolKind::Stenning { .. }
        | ProtocolKind::StabStenning { .. }
        | ProtocolKind::StabBeta { .. } => None,
    }
}

fn describe_report(s: &mut String, label: &str, r: &DriverReport, n: usize, tick: Duration) {
    let _ = writeln!(
        s,
        "{label}: {:?}, {} steps, {} data + {} acks sent, {} recvs, {} writes",
        r.outcome,
        r.steps,
        r.data_sends,
        r.ack_sends,
        r.recvs,
        r.written.len()
    );
    let _ = writeln!(
        s,
        "{label}: {} deadline misses, {} timing violations, wall {:.3} s",
        r.deadline_misses,
        r.timing_violations,
        r.wall_elapsed.as_secs_f64()
    );
    if r.latency.count() > 0 {
        let _ = writeln!(s, "{label}: packet latency {}", r.latency);
    }
    if let Some(e) = r.effort_ticks(n, tick) {
        let _ = writeln!(s, "{label}: wall effort {e:.3} ticks/message");
    }
}

/// `rstp net bench`
fn cmd_bench(args: &Args) -> Result<String, ArgError> {
    args.ensure_known(&[
        "protocol", "k", "window", "c1", "c2", "d", "n", "seed", "tick-us", "pace", "loss", "dup",
    ])?;
    let params = timing(args)?;
    let kind = protocol(args)?;
    let k = args.get_u64("k", 4)?;
    let n = args.get_usize("n", 4096)?;
    let seed = args.get_u64("seed", 0)?;
    let tick = tick_of(args, 100)?;
    let input = random_input(n, seed);
    let loss = rate_of(args, "loss")?;
    let dup = rate_of(args, "dup")?;

    let channel = ChannelConfig {
        loss,
        duplication: dup,
        ..ChannelConfig::reliable(params, tick, seed)
    };
    let config = TransferConfig::new(params, tick, seed)
        .with_channel(channel)
        .with_pace(pace(args)?);
    let transfer = run_transfer_mem(kind, &input, &config).map_err(|e| ArgError(e.to_string()))?;

    // The simulator is the oracle: same protocol, same input, the
    // worst-case deterministic adversary pair (slowest steps, slowest
    // reliable channel).
    let sim_cfg = RunConfig {
        kind,
        params,
        step: StepPolicy::AllSlow,
        delivery: DeliveryPolicy::MaxDelay,
        record_trace: false,
        ..RunConfig::default()
    };
    let sim = run_configured(&sim_cfg, &input).map_err(|e| ArgError(e.to_string()))?;

    let mut s = String::new();
    let _ = writeln!(s, "protocol   : {}", kind.name());
    let _ = writeln!(
        s,
        "params     : {params}, n = {n}, tick = {} us, channel loss {loss} dup {dup}",
        tick.as_micros()
    );
    describe_report(&mut s, "transmitter", &transfer.transmitter, n, tick);
    describe_report(&mut s, "receiver   ", &transfer.receiver, n, tick);
    let _ = writeln!(
        s,
        "delivered  : {}",
        if transfer.output() == input {
            "Y = X (exact)"
        } else {
            "MISMATCH"
        }
    );
    if let Some(wall_effort) = transfer.transmitter.effort_ticks(n, tick) {
        let _ = writeln!(s, "wall effort: {wall_effort:.3} ticks/message");
        if let Some(sim_effort) = sim.metrics.effort(n) {
            let _ = writeln!(
                s,
                "sim effort : {sim_effort:.3} ticks/message (slow steps, max delay)"
            );
        }
        if let Some((lower, label)) = family_lower_bound(kind, params, k) {
            let _ = writeln!(s, "lower bound: {lower:.3} ticks/message ({label})");
        }
    }
    Ok(s)
}

/// `rstp net send`
fn cmd_send(args: &Args) -> Result<String, ArgError> {
    args.ensure_known(&[
        "protocol",
        "k",
        "window",
        "c1",
        "c2",
        "d",
        "n",
        "seed",
        "input",
        "tick-us",
        "pace",
        "local",
        "peer",
        "max-wall-s",
    ])?;
    let params = timing(args)?;
    let kind = protocol(args)?;
    let tick = tick_of(args, 1000)?;
    let input = input_of(args)?;
    let local = args.get("local").unwrap_or("127.0.0.1:9000");
    let peer = args.get("peer").unwrap_or("127.0.0.1:9001");
    let max_wall = Duration::from_secs(args.get_u64("max-wall-s", 60)?);

    let codec = rstp_net::codec_for(kind).map_err(|e| ArgError(e.to_string()))?;
    let mut transport =
        UdpTransport::bind(codec, local, peer).map_err(|e| ArgError(e.to_string()))?;
    let clock = TickClock::start(tick);
    let cfg = DriverConfig::new(params, tick)
        .with_pace(pace(args)?)
        .with_max_wall(max_wall);
    let report = rstp_net::run_transmitter(kind, params, &input, &mut transport, clock, &cfg)
        .map_err(|e| ArgError(e.to_string()))?;

    let mut s = String::new();
    let _ = writeln!(s, "protocol   : {}", kind.name());
    let _ = writeln!(
        s,
        "endpoint   : {local} -> {peer}, {} bits, tick = {} us",
        input.len(),
        tick.as_micros()
    );
    describe_report(&mut s, "transmitter", &report, input.len(), tick);
    Ok(s)
}

/// `rstp net recv`
fn cmd_recv(args: &Args) -> Result<String, ArgError> {
    args.ensure_known(&[
        "protocol",
        "k",
        "window",
        "c1",
        "c2",
        "d",
        "n",
        "seed",
        "input",
        "tick-us",
        "pace",
        "local",
        "peer",
        "max-wall-s",
    ])?;
    let params = timing(args)?;
    let kind = protocol(args)?;
    let tick = tick_of(args, 1000)?;
    let expected = input_of(args)?;
    let local = args.get("local").unwrap_or("127.0.0.1:9001");
    let peer = args.get("peer").unwrap_or("127.0.0.1:9000");
    let max_wall = Duration::from_secs(args.get_u64("max-wall-s", 60)?);

    let codec = rstp_net::codec_for(kind).map_err(|e| ArgError(e.to_string()))?;
    let mut transport =
        UdpTransport::bind(codec, local, peer).map_err(|e| ArgError(e.to_string()))?;
    let clock = TickClock::start(tick);
    let cfg = DriverConfig::new(params, tick)
        .with_pace(pace(args)?)
        .with_max_wall(max_wall);
    let report = run_receiver(kind, params, expected.len(), &mut transport, clock, &cfg)
        .map_err(|e| ArgError(e.to_string()))?;

    let mut s = String::new();
    let _ = writeln!(s, "protocol   : {}", kind.name());
    let _ = writeln!(
        s,
        "endpoint   : {local} <- {peer}, expecting {} bits, tick = {} us",
        expected.len(),
        tick.as_micros()
    );
    describe_report(&mut s, "receiver", &report, expected.len(), tick);
    if report.latency.count() > 0 {
        let _ = writeln!(
            s,
            "note       : latency includes the clock offset between the two \
             processes (UDP endpoints do not share an epoch)"
        );
    }
    let rendered: String = report
        .written
        .iter()
        .map(|&b| if b { '1' } else { '0' })
        .collect();
    let _ = writeln!(s, "received   : {rendered}");
    let _ = writeln!(
        s,
        "verified   : {}",
        if report.written == expected {
            "Y = X (matches --input/--seed)"
        } else {
            "MISMATCH against --input/--seed"
        }
    );
    Ok(s)
}

/// Dispatches `rstp net <send|recv|bench>`.
///
/// # Errors
///
/// [`ArgError`] with a user-facing message.
pub fn cmd_net(args: &Args) -> Result<String, ArgError> {
    match args.positional.first().map(String::as_str) {
        Some("bench") => cmd_bench(args),
        Some("send") => cmd_send(args),
        Some("recv") => cmd_recv(args),
        Some("help") | None => Ok(NET_USAGE.to_string()),
        Some(other) => Err(ArgError(format!(
            "unknown net subcommand {other:?}; expected send, recv, or bench"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run(argv: &[&str]) -> Result<String, ArgError> {
        cmd_net(&Args::parse(argv.iter().copied()).expect("parse"))
    }

    #[test]
    fn net_without_subcommand_prints_usage() {
        assert!(run(&["net"]).expect("usage").contains("USAGE: rstp net"));
        assert!(run(&["net", "help"]).expect("usage").contains("bench"));
        assert!(run(&["net", "bogus"]).is_err());
    }

    #[test]
    fn bench_small_beta_transfer() {
        let out = run(&[
            "net",
            "bench",
            "--protocol",
            "beta",
            "--k",
            "4",
            "--n",
            "32",
            "--tick-us",
            "200",
        ])
        .expect("bench");
        assert!(out.contains("Y = X (exact)"), "{out}");
        assert!(out.contains("wall effort"), "{out}");
        assert!(out.contains("sim effort"), "{out}");
        assert!(out.contains("Thm 5.3"), "{out}");
    }

    #[test]
    fn bench_rejects_bad_rates_and_pace() {
        assert!(run(&["net", "bench", "--loss", "1.5"]).is_err());
        assert!(run(&["net", "bench", "--dup", "x"]).is_err());
        assert!(run(&["net", "bench", "--pace", "warp"]).is_err());
        assert!(run(&["net", "bench", "--tick-us", "0"]).is_err());
        assert!(run(&["net", "bench", "--bogus", "1"]).is_err());
    }

    #[test]
    fn send_and_recv_pair_over_udp_loopback() {
        // Ephemeral-ish fixed ports; chosen high to avoid collisions.
        let recv = thread::spawn(|| {
            run(&[
                "net",
                "recv",
                "--protocol",
                "alpha",
                "--n",
                "8",
                "--seed",
                "3",
                "--local",
                "127.0.0.1:29401",
                "--peer",
                "127.0.0.1:29400",
                "--tick-us",
                "500",
                "--max-wall-s",
                "30",
            ])
        });
        // Give the receiver a head start binding its socket.
        thread::sleep(Duration::from_millis(100));
        let send = run(&[
            "net",
            "send",
            "--protocol",
            "alpha",
            "--n",
            "8",
            "--seed",
            "3",
            "--local",
            "127.0.0.1:29400",
            "--peer",
            "127.0.0.1:29401",
            "--tick-us",
            "500",
            "--max-wall-s",
            "30",
        ])
        .expect("send");
        let recv = recv.join().expect("join").expect("recv");
        assert!(send.contains("transmitter: Completed"), "{send}");
        assert!(recv.contains("Y = X"), "{recv}");
    }
}
