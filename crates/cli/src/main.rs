//! `rstp` — command-line interface to the RSTP reproduction.
//!
//! ```text
//! rstp bounds --c1 1 --c2 2 --d 8 --k 4
//! rstp run    --protocol gamma --k 4 --n 100 --step slow --delivery batch
//! rstp trace  --protocol beta --input 10110 --c1 2 --c2 3 --d 6
//! rstp effort --protocol beta --k 8 --n 512
//! rstp distinguish --protocol beta --k 2 --n 8 --c1 1 --c2 1 --d 3
//! rstp curve  --c1 1 --c2 2 --d 12 --kmax 32
//! rstp net bench --protocol beta --k 4 --n 4096
//! rstp swarm --sessions 256 --protocol beta --k 4
//! ```

#![forbid(unsafe_code)]

mod analyze;
mod args;
mod check;
mod commands;
mod net;
mod replay;
mod serve;

use std::process::ExitCode;

fn main() -> ExitCode {
    let parsed = match args::Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match commands::dispatch(&parsed) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `rstp help` for usage");
            ExitCode::from(2)
        }
    }
}
