//! The `rstp serve` / `rstp swarm` pair: the sharded multi-session
//! server and its M-client loopback load harness.
//!
//! ```text
//! rstp swarm --sessions 256 --protocol beta --k 4          # mem loopback
//! rstp swarm --sessions 64 --transport udp --shards 4      # real datagrams
//! rstp serve --local 127.0.0.1:9000 --sessions 8 --n 64    # standalone server
//! rstp swarm --sessions 64 --shards 2 --record /tmp/rec \
//!            --faults 'kill=1@50;restart=1@120'            # crash/recovery drill
//! ```
//!
//! `swarm` runs the whole experiment in one process — server plus M
//! client transmitter threads — then verifies every receiver output `Y`
//! against its session's input `X` and cross-checks a sample against the
//! simulator oracle. A failed swarm (any mismatch, incomplete session,
//! rejection, or timed-out client) surfaces through the exit code.
//!
//! `serve` runs just the server half over UDP: it admits `--sessions`
//! session ids `1..=M` of one protocol and waits for v2-framed clients
//! (for example [`rstp_serve::UdpSessionClient`]) to drive them.

use crate::args::{ArgError, Args};
use crate::commands::{protocol, timing};
use crate::net::{pace, tick_of};
use core::fmt::Write as _;
use rstp_core::SessionId;
use rstp_net::TickClock;
use rstp_serve::{
    run_server, run_swarm, FaultPlan, ServeConfig, ServeReport, SessionSpec, SwarmConfig,
    SwarmTransport, UdpServerTransport,
};
use std::time::Duration;

const SWARM_FLAGS: &[&str] = &[
    "sessions",
    "protocol",
    "k",
    "window",
    "c1",
    "c2",
    "d",
    "n",
    "seed",
    "tick-us",
    "pace",
    "shards",
    "batch",
    "queue-cap",
    "transport",
    "max-wall-s",
    "oracle-sample",
    "record",
    "faults",
    "force",
];

const SERVE_FLAGS: &[&str] = &[
    "sessions",
    "protocol",
    "k",
    "window",
    "c1",
    "c2",
    "d",
    "n",
    "local",
    "tick-us",
    "pace",
    "shards",
    "batch",
    "queue-cap",
    "max-wall-s",
    "record",
    "faults",
];

fn transport_of(args: &Args) -> Result<SwarmTransport, ArgError> {
    match args.get("transport").unwrap_or("mem") {
        "mem" => Ok(SwarmTransport::Mem),
        "udp" => Ok(SwarmTransport::Udp),
        other => Err(ArgError(format!("unknown transport {other:?} (mem|udp)"))),
    }
}

/// Applies the shared server-shape flags on top of `serve`.
fn configure(args: &Args, mut serve: ServeConfig) -> Result<ServeConfig, ArgError> {
    let (shards, batch) = (serve.shards, serve.batch);
    serve = serve
        .with_shards(args.get_usize("shards", shards)?)
        .with_batch(args.get_usize("batch", batch)?)
        .with_pace(pace(args)?)
        .with_max_wall(Duration::from_secs(args.get_u64("max-wall-s", 60)?));
    if args.get("queue-cap").is_some() {
        serve = serve.with_queue_cap(args.get_usize("queue-cap", 0)?);
    }
    if let Some(dir) = args.get("record") {
        serve = serve.with_record(dir);
    }
    if let Some(plan) = args.get("faults") {
        let plan = FaultPlan::parse(plan).map_err(|e| ArgError(format!("--faults: {e}")))?;
        serve = serve.with_faults(plan);
    }
    Ok(serve)
}

/// `rstp swarm`
pub fn cmd_swarm(args: &Args) -> Result<String, ArgError> {
    args.ensure_known(SWARM_FLAGS)?;
    let params = timing(args)?;
    let kind = protocol(args)?;
    let sessions = args.get_usize("sessions", 64)?.max(1);
    let n = args.get_usize("n", 32)?;
    let transport = transport_of(args)?;
    // Real datagrams need real time: at a 200 µs tick a large swarm
    // offers more datagrams per millisecond than a default kernel
    // receive buffer holds, so the UDP default is a coarser clock.
    let tick = tick_of(
        args,
        match transport {
            SwarmTransport::Mem => 200,
            SwarmTransport::Udp => 2000,
        },
    )?;

    let mut config = SwarmConfig::new(kind, n, sessions, params, tick);
    config.seed = args.get_u64("seed", 1)?;
    config.transport = transport;
    config.oracle_sample = args.get_usize("oracle-sample", 2)?;
    config.serve = configure(args, config.serve)?;
    if config.serve.record_dir.is_some() {
        // Stamp the input seed so `rstp replay` can regenerate each
        // session's X without the original command line.
        config.serve.record_seed = Some(config.seed);
    }

    // A shape the step-rate model predicts will stall (ROADMAP's 64×γ
    // mem swarm) fails deterministically with the diagnosis instead of
    // hanging until the wall clock; `--force true` runs it anyway.
    let force = matches!(args.get("force"), Some("1" | "true" | "yes"));
    if let Some(diagnosis) = rstp_serve::overload_diagnosis(&config) {
        if !force {
            return Err(ArgError(format!(
                "{diagnosis}\n(or pass --force true to run the shape anyway)"
            )));
        }
    }

    let report = run_swarm(&config).map_err(|e| ArgError(e.to_string()))?;

    let mut s = String::new();
    let _ = writeln!(s, "protocol  : {}", kind.name());
    let _ = writeln!(
        s,
        "params    : {params}, n = {n}, tick = {} us, {} shards over {}",
        tick.as_micros(),
        config.serve.shards,
        match config.transport {
            SwarmTransport::Mem => "the loopback hub",
            SwarmTransport::Udp => "udp 127.0.0.1",
        }
    );
    s.push_str(&report.summary());
    if report.all_good() {
        let _ = writeln!(s, "verdict   : every session delivered Y = X exactly");
        Ok(s)
    } else {
        // A nonzero exit code so CI smoke runs cannot miss a violation.
        Err(ArgError(format!("{s}verdict   : SWARM FAILED")))
    }
}

fn render_serve(report: &ServeReport) -> String {
    let mut s = String::new();
    let lat = report.latency();
    let q = |p: f64| {
        lat.quantile_interp_micros(p)
            .map_or_else(|| "-".into(), |v| format!("{v:.0}µs"))
    };
    let _ = writeln!(
        s,
        "sessions  : {} admitted, {} completed, {} rejected",
        report.admitted(),
        report.completed(),
        report.rejected_sessions
    );
    let _ = writeln!(
        s,
        "wall      : {:.3}s, {:.0} msg/s aggregate",
        report.wall_elapsed.as_secs_f64(),
        report.throughput_msgs_per_sec()
    );
    let _ = writeln!(
        s,
        "latency   : p50 {} p99 {} ({} samples; includes client clock offset)",
        q(0.50),
        q(0.99),
        lat.count()
    );
    let _ = writeln!(
        s,
        "deadlines : {} misses, {} violations; drops {} overflow, {} orphans, {} decode errors",
        report.deadline_misses(),
        report.timing_violations(),
        report.ingress_overflow(),
        report.orphan_frames,
        report.decode_errors
    );
    for shard in &report.shards {
        for sess in &shard.sessions {
            let _ = writeln!(
                s,
                "  session {:>4} (shard {}): {}, {}/{} messages, {} steps, {}",
                sess.id,
                shard.shard,
                sess.protocol,
                sess.written.len(),
                sess.n,
                sess.steps,
                if sess.completed {
                    "completed"
                } else {
                    "UNFINISHED"
                }
            );
        }
    }
    s
}

/// `rstp serve`
pub fn cmd_serve(args: &Args) -> Result<String, ArgError> {
    args.ensure_known(SERVE_FLAGS)?;
    let params = timing(args)?;
    let kind = protocol(args)?;
    let sessions = args.get_usize("sessions", 16)?.max(1);
    let n = args.get_usize("n", 64)?;
    let tick = tick_of(args, 1000)?;
    let local = args.get("local").unwrap_or("127.0.0.1:9000");

    let serve = configure(
        args,
        ServeConfig::new(params, tick).with_max_sessions(sessions),
    )?;
    let mut transport = UdpServerTransport::bind(local).map_err(|e| ArgError(e.to_string()))?;
    let addr = transport
        .local_addr()
        .map_err(|e| ArgError(e.to_string()))?;
    // Announce before blocking so the operator can start clients.
    eprintln!(
        "rstp serve: listening on {addr}, admitting sessions 1..={sessions} \
         ({}, n = {n}, tick = {} us)",
        kind.name(),
        tick.as_micros()
    );

    let specs: Vec<SessionSpec> = (1..=sessions)
        .map(|i| SessionSpec {
            id: SessionId::new(u32::try_from(i).unwrap_or(u32::MAX)),
            kind,
            n,
        })
        .collect();
    let clock = TickClock::start(tick);
    let report =
        run_server(&mut transport, clock, &specs, &serve).map_err(|e| ArgError(e.to_string()))?;

    let mut s = String::new();
    let _ = writeln!(s, "protocol  : {}", kind.name());
    let _ = writeln!(
        s,
        "params    : {params}, n = {n}, tick = {} us, {} shards on {addr}",
        tick.as_micros(),
        serve.shards
    );
    s.push_str(&render_serve(&report));
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstp_core::TimingParams;
    use rstp_net::{codec_for, run_transmitter, DriverConfig};
    use rstp_serve::UdpSessionClient;
    use rstp_sim::harness::random_input;
    use rstp_sim::ProtocolKind;
    use std::thread;

    fn run(argv: &[&str]) -> Result<String, ArgError> {
        crate::commands::dispatch(&Args::parse(argv.iter().copied()).expect("parse"))
    }

    #[test]
    fn swarm_over_the_loopback_hub_delivers_every_session() {
        let _gate = crate::commands::swarm_gate();
        let out = run(&[
            "swarm",
            "--sessions",
            "6",
            "--protocol",
            "beta",
            "--k",
            "4",
            "--n",
            "8",
            "--tick-us",
            "200",
            "--shards",
            "2",
        ])
        .expect("swarm");
        assert!(out.contains("6 planned, 6 admitted, 6 completed"), "{out}");
        assert!(out.contains("Y = X exactly"), "{out}");
        assert!(out.contains("oracle    :"), "{out}");
    }

    #[test]
    fn swarm_refuses_predicted_overload_shapes_deterministically() {
        // The ROADMAP 64×γ(4) mem shape used to stall until the wall
        // clock; now it fails instantly with the diagnosis and the
        // escape hatch, with no threads spawned.
        let err = run(&["swarm", "--protocol", "gamma", "--sessions", "64"])
            .expect_err("overload shape must be refused");
        let msg = err.to_string();
        assert!(msg.contains("predicted overload"), "{msg}");
        assert!(msg.contains("--force true"), "{msg}");
    }

    #[test]
    fn swarm_runs_the_stabilizing_family() {
        let _gate = crate::commands::swarm_gate();
        let out = run(&[
            "swarm",
            "--sessions",
            "4",
            "--protocol",
            "stab-stenning",
            "--n",
            "8",
            "--tick-us",
            "200",
        ])
        .expect("swarm");
        assert!(out.contains("4 planned, 4 admitted, 4 completed"), "{out}");
        assert!(out.contains("Y = X exactly"), "{out}");
    }

    #[test]
    fn swarm_rejects_bad_flags() {
        assert!(run(&["swarm", "--transport", "carrier-pigeon"]).is_err());
        assert!(run(&["swarm", "--pace", "warp"]).is_err());
        assert!(run(&["swarm", "--tick-us", "0"]).is_err());
        assert!(run(&["swarm", "--bogus", "1"]).is_err());
        assert!(run(&["serve", "--bogus", "1"]).is_err());
        assert!(run(&["serve", "--transport", "udp"]).is_err()); // serve is udp-only
        let err = run(&["swarm", "--faults", "explode=all"]).expect_err("bad fault grammar");
        assert!(err.to_string().contains("--faults"), "{err}");
    }

    /// The crash drill end to end from the command line: a shard is
    /// killed mid-transfer and restarted from its flight recording, and
    /// the verdict still reads Y = X with the fault line in the summary.
    #[test]
    fn swarm_with_kill_restart_faults_recovers_from_the_recording() {
        let _gate = crate::commands::swarm_gate();
        let dir = std::env::temp_dir().join(format!("rstp-cli-crash-{}", std::process::id()));
        let dir_s = dir.to_str().expect("utf8");
        let out = run(&[
            "swarm",
            "--sessions",
            "8",
            "--protocol",
            "stenning",
            "--n",
            "8",
            "--c1",
            "1",
            "--c2",
            "2",
            "--d",
            "4",
            "--tick-us",
            "200",
            "--shards",
            "2",
            "--max-wall-s",
            "30",
            "--record",
            dir_s,
            "--faults",
            "kill=1@20;restart=1@60",
        ])
        .expect("crash drill");
        assert!(out.contains("8 planned, 8 admitted, 8 completed"), "{out}");
        assert!(out.contains("Y = X exactly"), "{out}");
        assert!(out.contains("faults    : 1 crashes, 1 restarts"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An injected shard panic must surface as a nonzero exit, not a
    /// clean verdict printed over a dead thread.
    #[test]
    fn swarm_with_injected_panic_exits_nonzero() {
        let _gate = crate::commands::swarm_gate();
        let err = run(&[
            "swarm",
            "--sessions",
            "4",
            "--protocol",
            "stenning",
            "--n",
            "8",
            "--tick-us",
            "200",
            "--max-wall-s",
            "5",
            "--faults",
            "panic=0@5",
        ])
        .expect_err("panicked shard must fail the command");
        assert!(err.to_string().contains("panicked"), "{err}");
    }

    #[test]
    fn serve_command_hosts_udp_clients() {
        let _gate = crate::commands::swarm_gate();
        let params = TimingParams::from_ticks(1, 2, 4).expect("valid");
        let kind = ProtocolKind::Beta { k: 4 };
        let server = thread::spawn(|| {
            run(&[
                "serve",
                "--local",
                "127.0.0.1:29501",
                "--sessions",
                "2",
                "--protocol",
                "beta",
                "--k",
                "4",
                "--n",
                "8",
                "--c1",
                "1",
                "--c2",
                "2",
                "--d",
                "4",
                "--tick-us",
                "500",
                "--max-wall-s",
                "30",
            ])
        });
        // Give the server a head start binding its socket.
        thread::sleep(Duration::from_millis(150));
        let addr: std::net::SocketAddr = "127.0.0.1:29501".parse().expect("addr");
        let clients: Vec<_> = (1..=2u32)
            .map(|id| {
                thread::spawn(move || {
                    let input = random_input(8, u64::from(id));
                    let mut end =
                        UdpSessionClient::connect(addr, SessionId::new(id), codec_for(kind)?)?;
                    let clock = TickClock::start(Duration::from_micros(500));
                    let cfg = DriverConfig::new(params, Duration::from_micros(500));
                    run_transmitter(kind, params, &input, &mut end, clock, &cfg)
                })
            })
            .collect();
        for client in clients {
            client.join().expect("join").expect("client");
        }
        let out = server.join().expect("join").expect("serve");
        assert!(out.contains("2 admitted, 2 completed"), "{out}");
        assert!(out.contains("8/8 messages"), "{out}");
        assert!(!out.contains("UNFINISHED"), "{out}");
    }
}
