//! `rstp check` — the coverage-guided adversarial schedule fuzzer.
//!
//! ```text
//! rstp check --seed 0 --iters 500                 # fuzz alpha, beta, gamma
//! rstp check --protocol gamma --k 4 --iters 2000  # one protocol, harder
//! rstp check --minimize tests/corpus/foo.repro    # re-shrink a repro file
//! ```
//!
//! Campaigns are deterministic: the same seed yields the same coverage
//! counters, the same failures, and the same corpus files. Minimized
//! failures are written under `--corpus` (default `tests/corpus`) so they
//! replay as cargo tests from then on.
//!
//! `--json FILE` additionally writes a machine-readable campaign summary
//! (protocols, iteration counts, coverage buckets, failures with their
//! repro paths). The file is written *before* a failing campaign turns
//! into a nonzero exit, so CI can always collect it as an artifact.

use core::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::args::{ArgError, Args};
use crate::commands::timing;
use rstp_bench::json::Json;
use rstp_check::{
    fuzz, parse_repro, render_repro, run_scenario, shrink, Expectation, FoundFailure, FuzzConfig,
    FuzzReport, Repro,
};
use rstp_sim::ProtocolKind;

const FLAGS: &[&str] = &[
    "protocol",
    "k",
    "window",
    "timeout",
    "seed",
    "iters",
    "c1",
    "c2",
    "d",
    "max-input",
    "differential",
    "corpus",
    "minimize",
    "out",
    "json",
];

/// Event budget for replays and shrinks driven from the CLI.
const MAX_EVENTS: u64 = 500_000;

/// `rstp check`
pub fn cmd_check(args: &Args) -> Result<String, ArgError> {
    args.ensure_known(FLAGS)?;
    if let Some(path) = args.get("minimize") {
        return cmd_minimize(args, path);
    }

    let params = timing(args)?;
    let kinds = fuzz_targets(args)?;
    let seed = args.get_u64("seed", 0)?;
    let iters = args.get_u64("iters", 500)?;
    let max_input = args.get_usize("max-input", 24)?;
    let differential = args.get_u64("differential", 250)?;
    let corpus = args.get("corpus").unwrap_or("tests/corpus").to_string();

    let mut out = String::new();
    let mut total_failures = 0usize;
    let mut campaigns: Vec<(FuzzReport, Vec<String>)> = Vec::new();
    for kind in kinds {
        let mut cfg = FuzzConfig::new(kind, params);
        cfg.seed = seed;
        cfg.iters = iters;
        cfg.max_input = max_input;
        cfg.max_events = MAX_EVENTS;
        cfg.differential_every = differential;
        let report = fuzz(&cfg);
        render_report(&mut out, &report);
        let mut repro_paths = Vec::new();
        for found in &report.failures {
            let path = corpus_path(&corpus, kind, seed, found.iteration);
            write_repro(&path, found)?;
            let _ = writeln!(out, "  repro written to {path}");
            repro_paths.push(path);
        }
        total_failures += report.failures.len();
        campaigns.push((report, repro_paths));
    }
    // The JSON summary goes out before a failure turns into a nonzero
    // exit, so CI can collect it as an artifact either way.
    if let Some(path) = args.get("json") {
        let text = campaign_json(seed, iters, max_input, &campaigns).render();
        fs::write(path, text + "\n").map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "json summary written to {path}");
    }
    if total_failures > 0 {
        // Surface failures through the exit code so CI cannot miss them.
        return Err(ArgError(format!(
            "{out}\n{total_failures} invariant failure(s) found"
        )));
    }
    Ok(out)
}

/// The machine-readable campaign summary behind `--json`.
fn campaign_json(
    seed: u64,
    iters: u64,
    max_input: usize,
    campaigns: &[(FuzzReport, Vec<String>)],
) -> Json {
    let num = |v: u64| Json::Num(v as f64);
    let campaign_values = campaigns
        .iter()
        .map(|(report, repro_paths)| {
            let failures = report
                .failures
                .iter()
                .zip(repro_paths)
                .map(|(found, path)| {
                    Json::Obj(vec![
                        ("iteration".into(), num(found.iteration)),
                        ("failure".into(), Json::Str(found.failure.to_string())),
                        ("original_events".into(), num(found.original_events)),
                        ("shrunk_events".into(), num(found.events)),
                        ("repro".into(), Json::Str(path.clone())),
                    ])
                })
                .collect();
            Json::Obj(vec![
                ("protocol".into(), Json::Str(report.protocol.clone())),
                ("iterations".into(), num(report.iterations)),
                (
                    "coverage".into(),
                    Json::Obj(vec![
                        ("total".into(), num(report.coverage.total)),
                        ("occupancy".into(), num(report.coverage.occupancy)),
                        ("reorder".into(), num(report.coverage.reorder)),
                        ("slack".into(), num(report.coverage.slack)),
                        ("outcome".into(), num(report.coverage.outcome)),
                    ]),
                ),
                ("pool".into(), num(report.pool as u64)),
                ("failures".into(), Json::Arr(failures)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("seed".into(), num(seed)),
        ("iters".into(), num(iters)),
        ("max_input".into(), num(max_input as u64)),
        ("campaigns".into(), Json::Arr(campaign_values)),
        (
            "total_failures".into(),
            num(campaigns.iter().map(|(r, _)| r.failures.len() as u64).sum()),
        ),
    ])
}

/// The protocols a campaign covers: `--protocol` if given, else the
/// paper's trio.
fn fuzz_targets(args: &Args) -> Result<Vec<ProtocolKind>, ArgError> {
    let k = args.get_u64("k", 4)?;
    let window = args.get_u64("window", 2)?.max(1);
    let timeout =
        match args.get("timeout") {
            None | Some("none") => None,
            Some(v) => Some(v.parse().map_err(|_| {
                ArgError(format!("--timeout expects an integer or `none`, got {v:?}"))
            })?),
        };
    match args.get("protocol") {
        None => Ok(vec![
            ProtocolKind::Alpha,
            ProtocolKind::Beta { k },
            ProtocolKind::Gamma { k },
        ]),
        Some("alpha") => Ok(vec![ProtocolKind::Alpha]),
        Some("beta") => Ok(vec![ProtocolKind::Beta { k }]),
        Some("gamma") => Ok(vec![ProtocolKind::Gamma { k }]),
        Some("altbit") => Ok(vec![ProtocolKind::AltBit {
            timeout_steps: timeout,
        }]),
        Some("framed") => Ok(vec![ProtocolKind::Framed { k }]),
        Some("stenning") => Ok(vec![ProtocolKind::Stenning {
            timeout_steps: timeout,
        }]),
        Some("pipelined") => Ok(vec![ProtocolKind::Pipelined { k, window }]),
        Some("stab-stenning") => Ok(vec![ProtocolKind::StabStenning {
            timeout_steps: timeout,
        }]),
        Some("stab-beta") => Ok(vec![ProtocolKind::StabBeta { k }]),
        Some(other) => Err(ArgError(format!(
            "unknown protocol {other:?} \
             (alpha|beta|gamma|altbit|stenning|framed|pipelined|stab-stenning|stab-beta)"
        ))),
    }
}

fn render_report(out: &mut String, report: &FuzzReport) {
    let _ = writeln!(
        out,
        "{}: {} iterations, coverage {}, pool {}",
        report.protocol, report.iterations, report.coverage, report.pool
    );
    for found in &report.failures {
        let _ = writeln!(
            out,
            "  FAILURE at iteration {}: {} (shrunk {} -> {} events)",
            found.iteration, found.failure, found.original_events, found.events
        );
    }
}

/// Filesystem-safe deterministic repro path.
fn corpus_path(dir: &str, kind: ProtocolKind, seed: u64, iteration: u64) -> String {
    let slug: String = kind
        .name()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect::<String>()
        .trim_matches('-')
        .replace("--", "-");
    format!("{dir}/{slug}-seed{seed}-i{iteration}.repro")
}

fn write_repro(path: &str, found: &FoundFailure) -> Result<(), ArgError> {
    if let Some(parent) = Path::new(path).parent() {
        fs::create_dir_all(parent)
            .map_err(|e| ArgError(format!("cannot create {}: {e}", parent.display())))?;
    }
    let text = render_repro(&Repro {
        scenario: found.scenario.clone(),
        expect: Expectation::Violation,
        reason: found.failure.to_string(),
    });
    fs::write(path, text).map_err(|e| ArgError(format!("cannot write {path}: {e}")))
}

/// `rstp check --minimize <file>`: re-run a committed repro and shrink it
/// further if it still fails.
fn cmd_minimize(args: &Args, path: &str) -> Result<String, ArgError> {
    let text =
        fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    let repro = parse_repro(&text).map_err(|e| ArgError(format!("{path}: {e}")))?;
    let run = run_scenario(&repro.scenario, MAX_EVENTS);
    let Some(failure) = run.failure else {
        return Ok(format!(
            "{path}: every oracle passes ({} events); nothing to minimize\n",
            run.events
        ));
    };
    let kind = failure.kind;
    let (minimized, events) = shrink(
        &repro.scenario,
        run.events,
        |candidate| {
            let r = run_scenario(candidate, MAX_EVENTS);
            match r.failure {
                Some(f) if f.kind == kind => Some(r.events),
                _ => None,
            }
        },
        600,
    );
    let rendered = render_repro(&Repro {
        scenario: minimized,
        expect: Expectation::Violation,
        reason: failure.to_string(),
    });
    let mut out = format!(
        "{path}: still failing ({failure}); minimized {} -> {events} events\n",
        run.events
    );
    if let Some(dest) = args.get("out") {
        fs::write(dest, &rendered).map_err(|e| ArgError(format!("cannot write {dest}: {e}")))?;
        let _ = writeln!(out, "minimized repro written to {dest}");
    } else {
        out.push_str(&rendered);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(argv: &[&str]) -> Result<String, ArgError> {
        cmd_check(&Args::parse(argv.iter().copied()).unwrap())
    }

    #[test]
    fn short_campaigns_pass_and_render_coverage() {
        let out = run(&["check", "--iters", "10", "--seed", "0", "--max-input", "8"]).unwrap();
        assert!(out.contains("alpha:"));
        assert!(out.contains("beta(k=4):"));
        assert!(out.contains("gamma(k=4):"));
        assert!(out.contains("coverage"));
        assert!(!out.contains("FAILURE"));
    }

    #[test]
    fn campaign_output_is_deterministic() {
        let argv = [
            "check",
            "--protocol",
            "gamma",
            "--iters",
            "25",
            "--seed",
            "7",
        ];
        assert_eq!(run(&argv).unwrap(), run(&argv).unwrap());
    }

    #[test]
    fn unknown_protocol_is_rejected() {
        assert!(run(&["check", "--protocol", "omega"]).is_err());
    }

    #[test]
    fn json_flag_writes_a_campaign_summary() {
        let dir = std::env::temp_dir().join("rstp-check-cli-json-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.json");
        let out = run(&[
            "check",
            "--protocol",
            "alpha",
            "--iters",
            "10",
            "--seed",
            "0",
            "--max-input",
            "8",
            "--json",
            path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("json summary written"), "{out}");
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"campaigns\""), "{text}");
        assert!(text.contains("\"protocol\": \"alpha\""), "{text}");
        assert!(text.contains("\"total_failures\": 0"), "{text}");
        assert!(text.contains("\"occupancy\""), "{text}");
    }

    #[test]
    fn minimize_reports_passing_repros() {
        let dir = std::env::temp_dir().join("rstp-check-cli-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pass.repro");
        fs::write(
            &path,
            "rstp-check repro v1\n\
             protocol = alpha\n\
             params = 1 2 6\n\
             expect = pass\n\
             reason = crafted\n\
             input = 101\n\
             t_gaps = 2 1\n\
             r_gaps =\n\
             gap_fallback = 2\n\
             data_fates = 6 0\n\
             ack_fates =\n\
             data_fallback = 0\n\
             ack_fallback = 6\n",
        )
        .unwrap();
        let out = run(&["check", "--minimize", path.to_str().unwrap()]).unwrap();
        assert!(out.contains("every oracle passes"));
    }
}
