//! The CLI subcommands. Each returns its output as a `String` so the
//! commands are unit-testable without capturing stdout.

use crate::args::{parse_bits, ArgError, Args};
use core::fmt::Write as _;
use rstp_core::{bounds, TimingParams};
use rstp_sim::adversary::{DeliveryPolicy, StepPolicy};
use rstp_sim::distinguish;
use rstp_sim::harness::{random_input, run_configured, worst_case_effort, ProtocolKind, RunConfig};

/// Top-level usage text.
pub const USAGE: &str = "\
rstp — Real-Time Sequence Transmission Problem (Wang & Zuck 1991)

USAGE: rstp <command> [--flag value ...]

COMMANDS:
  bounds        print effort bounds        --c1 --c2 --d --k
  run           simulate one protocol run  --protocol --k [--window W] --c1 --c2 --d
                                           (--input BITS | --n N --seed S)
                                           --step --delivery
  effort        worst-case effort sweep    --protocol --k --c1 --c2 --d --n --seed
  trace         render a timed trace       (same flags as run, plus
                                           --format events|timeline|csv)
  distinguish   exhaustive Lemma 5.1 check --protocol --k --c1 --c2 --d --n
  curve         effort vs alphabet size    --c1 --c2 --d --kmax
  plan          smallest k for a latency   --c1 --c2 --d --target --kmax
  dist          effort distribution        --protocol --k --c1 --c2 --d --n --runs
  net           real-time wire transfers   net <send|recv|bench> (run `rstp net help`)
  serve         sharded multi-session UDP server  --local --sessions --protocol --n
                                           --shards --batch --queue-cap --tick-us
  swarm         M-client loopback load test --sessions --protocol --k --n --seed
                                           --transport mem|udp --shards --batch
                                           --queue-cap --tick-us --oracle-sample
  replay        postmortem replay of a --record dir  --dir DIR [--session ID]
                                           [--input BITS] [--shrink FILE]
                                           [--budget N]
  check         coverage-guided schedule fuzzer  --protocol --k --seed --iters
                                           --c1 --c2 --d --max-input --differential
                                           --corpus DIR --minimize FILE [--out FILE]
                                           [--json FILE]
  analyze       invariant lints + call-graph passes  [--root DIR]
                                           [--json FILE] [--emit-lock-order FILE]
                                           [--emit-call-graph FILE]

PROTOCOLS: alpha | beta | gamma | altbit | stenning | framed | pipelined
           | stab-stenning | stab-beta
STEP:      fast | slow | alternate | random
DELIVERY:  eager | max | reverse | batch | random
";

/// Serializes the real-time swarm tests across this binary: several
/// wall-clock-paced swarms thread-racing on an oversubscribed test
/// runner can starve each other's clients past their transfer windows.
#[cfg(test)]
pub(crate) fn swarm_gate() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GATE.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

pub(crate) fn timing(args: &Args) -> Result<TimingParams, ArgError> {
    let c1 = args.get_u64("c1", 1)?;
    let c2 = args.get_u64("c2", 2)?;
    let d = args.get_u64("d", 8)?;
    TimingParams::from_ticks(c1, c2, d).map_err(|e| ArgError(e.to_string()))
}

pub(crate) fn protocol(args: &Args) -> Result<ProtocolKind, ArgError> {
    let k = args.get_u64("k", 4)?;
    let window = args.get_u64("window", 2)?.max(1);
    match args.get("protocol").unwrap_or("beta") {
        "alpha" => Ok(ProtocolKind::Alpha),
        "beta" => Ok(ProtocolKind::Beta { k }),
        "gamma" => Ok(ProtocolKind::Gamma { k }),
        "altbit" => Ok(ProtocolKind::AltBit {
            timeout_steps: None,
        }),
        "framed" => Ok(ProtocolKind::Framed { k }),
        "stenning" => Ok(ProtocolKind::Stenning {
            timeout_steps: None,
        }),
        "pipelined" => Ok(ProtocolKind::Pipelined { k, window }),
        "stab-stenning" => Ok(ProtocolKind::StabStenning {
            timeout_steps: None,
        }),
        "stab-beta" => Ok(ProtocolKind::StabBeta { k }),
        other => Err(ArgError(format!(
            "unknown protocol {other:?} (alpha|beta|gamma|altbit|stenning|framed|pipelined|stab-stenning|stab-beta)"
        ))),
    }
}

fn step_policy(args: &Args) -> Result<StepPolicy, ArgError> {
    let seed = args.get_u64("seed", 0)?;
    match args.get("step").unwrap_or("slow") {
        "fast" => Ok(StepPolicy::AllFast),
        "slow" => Ok(StepPolicy::AllSlow),
        "alternate" => Ok(StepPolicy::Alternate),
        "random" => Ok(StepPolicy::Random { seed }),
        other => Err(ArgError(format!(
            "unknown step policy {other:?} (fast|slow|alternate|random)"
        ))),
    }
}

fn delivery_policy(
    args: &Args,
    params: TimingParams,
    kind: ProtocolKind,
) -> Result<DeliveryPolicy, ArgError> {
    let seed = args.get_u64("seed", 0)?;
    match args.get("delivery").unwrap_or("max") {
        "eager" => Ok(DeliveryPolicy::Eager),
        "max" => Ok(DeliveryPolicy::MaxDelay),
        "reverse" => Ok(DeliveryPolicy::ReverseBurst {
            burst: kind.burst_size(params),
        }),
        "batch" => Ok(DeliveryPolicy::IntervalBatch),
        "random" => Ok(DeliveryPolicy::Random { seed }),
        other => Err(ArgError(format!(
            "unknown delivery policy {other:?} (eager|max|reverse|batch|random)"
        ))),
    }
}

fn input_of(args: &Args) -> Result<Vec<bool>, ArgError> {
    if let Some(bits) = args.get("input") {
        parse_bits(bits)
    } else {
        let n = args.get_usize("n", 64)?;
        let seed = args.get_u64("seed", 0)?;
        Ok(random_input(n, seed))
    }
}

/// `rstp bounds`
pub fn cmd_bounds(args: &Args) -> Result<String, ArgError> {
    args.ensure_known(&["c1", "c2", "d", "k"])?;
    let p = timing(args)?;
    let k = args.get_u64("k", 4)?;
    let mut out = String::new();
    let _ = writeln!(out, "parameters: {p}, k = {k}");
    let _ = writeln!(out, "effort bounds (ticks per message):");
    let _ = writeln!(
        out,
        "  alpha (Fig 1)            = {:.3}",
        bounds::alpha_effort(p)
    );
    let _ = writeln!(
        out,
        "  passive lower (Thm 5.3)  = {:.3}",
        bounds::passive_lower(p, k)
    );
    let _ = writeln!(
        out,
        "  beta(k) upper (§6.1)     = {:.3}",
        bounds::passive_upper(p, k)
    );
    let _ = writeln!(
        out,
        "  active lower (Thm 5.6)   = {:.3}",
        bounds::active_lower(p, k)
    );
    let _ = writeln!(
        out,
        "  gamma(k) upper (§6.2)    = {:.3}",
        bounds::active_upper(p, k)
    );
    let winner = match bounds::compare_upper_bounds(p, k) {
        bounds::Family::Passive => "beta (r-passive)",
        bounds::Family::Active => "gamma (active)",
    };
    let _ = writeln!(out, "  better guarantee         : {winner}");
    Ok(out)
}

/// `rstp run` / `rstp trace`
pub fn cmd_run(args: &Args, render_trace: bool) -> Result<String, ArgError> {
    args.ensure_known(&[
        "c1", "c2", "d", "k", "window", "protocol", "input", "n", "seed", "step", "delivery",
        "format",
    ])?;
    let params = timing(args)?;
    let kind = protocol(args)?;
    let input = input_of(args)?;
    let cfg = RunConfig {
        kind,
        params,
        step: step_policy(args)?,
        delivery: delivery_policy(args, params, kind)?,
        ..RunConfig::default()
    };
    let out = run_configured(&cfg, &input).map_err(|e| ArgError(e.to_string()))?;
    let mut s = String::new();
    if render_trace {
        match args.get("format").unwrap_or("events") {
            "events" => s.push_str(&out.trace.render()),
            "timeline" => s.push_str(&rstp_sim::render_timeline(&out.trace, 40)),
            "csv" => s.push_str(&out.trace.to_csv()),
            other => {
                return Err(ArgError(format!(
                    "unknown format {other:?} (events|timeline|csv)"
                )))
            }
        }
    }
    let _ = writeln!(s, "protocol : {}", kind.name());
    let _ = writeln!(s, "params   : {params}");
    let _ = writeln!(s, "input    : {} bits", input.len());
    let _ = writeln!(s, "outcome  : {:?}", out.outcome);
    let _ = writeln!(
        s,
        "sends    : {} data + {} acks, {} writes",
        out.metrics.data_sends, out.metrics.ack_sends, out.metrics.writes
    );
    if let Some(e) = out.metrics.effort(input.len()) {
        let _ = writeln!(s, "effort   : {e:.3} ticks/message");
    }
    if let Some(e) = out.metrics.learn_effort(input.len()) {
        let _ = writeln!(s, "learn    : {e:.3} ticks/message");
    }
    let _ = writeln!(s, "checker  : {}", out.report);
    let _ = writeln!(
        s,
        "delivered: {}",
        if out.trace.written() == input {
            "Y = X (exact)"
        } else {
            "MISMATCH"
        }
    );
    Ok(s)
}

/// `rstp effort`
pub fn cmd_effort(args: &Args) -> Result<String, ArgError> {
    args.ensure_known(&["c1", "c2", "d", "k", "window", "protocol", "n", "seed"])?;
    let params = timing(args)?;
    let kind = protocol(args)?;
    let n = args.get_usize("n", 256)?;
    let seed = args.get_u64("seed", 0)?;
    let input = random_input(n, seed);
    let sample =
        worst_case_effort(kind, params, &input, seed).map_err(|e| ArgError(e.to_string()))?;
    let mut s = String::new();
    let _ = writeln!(s, "protocol    : {}", kind.name());
    let _ = writeln!(s, "params      : {params}, n = {n}");
    let _ = writeln!(s, "worst effort: {:.3} ticks/message", sample.effort);
    let _ = writeln!(s, "worst learn : {:.3} ticks/message", sample.learn_effort);
    let _ = writeln!(
        s,
        "achieved by : {:?} steps, {:?} delivery",
        sample.step, sample.delivery
    );
    let k = args.get_u64("k", 4)?;
    match kind {
        ProtocolKind::Beta { .. } | ProtocolKind::Framed { .. } => {
            let _ = writeln!(
                s,
                "bounds      : [{:.3}, {:.3}] (Thm 5.3 / §6.1, finite-n {:.3})",
                bounds::passive_lower(params, k),
                bounds::passive_upper(params, k),
                bounds::passive_upper_finite(params, k, n)
            );
        }
        ProtocolKind::Gamma { .. } => {
            let _ = writeln!(
                s,
                "bounds      : [{:.3}, {:.3}] (Thm 5.6 / §6.2, finite-n {:.3})",
                bounds::active_lower(params, k),
                bounds::active_upper(params, k),
                bounds::active_upper_finite(params, k, n)
            );
        }
        ProtocolKind::Alpha => {
            let _ = writeln!(s, "closed form : {:.3}", bounds::alpha_effort(params));
        }
        _ => {}
    }
    Ok(s)
}

/// `rstp distinguish`
pub fn cmd_distinguish(args: &Args) -> Result<String, ArgError> {
    args.ensure_known(&["c1", "c2", "d", "k", "protocol", "n"])?;
    let params = timing(args)?;
    let n = args.get_usize("n", 8)?;
    if n > 20 {
        return Err(ArgError("--n too large: enumerates 2^n inputs".into()));
    }
    let k = args.get_u64("k", 2)?;
    let result = match args.get("protocol").unwrap_or("beta") {
        "alpha" => distinguish::check_alpha(params, n),
        "beta" => distinguish::check_beta(params, k, n).map_err(|e| ArgError(e.to_string()))?,
        other => {
            return Err(ArgError(format!(
                "distinguish supports alpha|beta, got {other:?}"
            )))
        }
    };
    let mut s = String::new();
    let _ = writeln!(s, "params: {params}, k = {k}");
    let _ = writeln!(s, "{result}");
    let _ = writeln!(
        s,
        "capacity inequality (Thm 5.3 counting step): {}",
        if result.capacity_respected() {
            "holds"
        } else {
            "VIOLATED"
        }
    );
    Ok(s)
}

/// `rstp curve`
pub fn cmd_curve(args: &Args) -> Result<String, ArgError> {
    args.ensure_known(&["c1", "c2", "d", "kmax"])?;
    let params = timing(args)?;
    let kmax = args.get_u64("kmax", 32)?.max(2);
    let ks: Vec<u64> = (2..=kmax).collect();
    let rows = bounds::effort_curve(params, &ks);
    let mut s = String::new();
    let _ = writeln!(s, "effort bounds vs k at {params}");
    let _ = writeln!(
        s,
        "{:>4} {:>14} {:>12} {:>14} {:>12}",
        "k", "passive lower", "beta upper", "active lower", "gamma upper"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:>4} {:>14.3} {:>12.3} {:>14.3} {:>12.3}",
            r.k, r.passive_lower, r.passive_upper, r.active_lower, r.active_upper
        );
    }
    Ok(s)
}

/// `rstp plan`
pub fn cmd_plan(args: &Args) -> Result<String, ArgError> {
    args.ensure_known(&["c1", "c2", "d", "target", "kmax"])?;
    let params = timing(args)?;
    let target: f64 = match args.get("target") {
        Some(v) => v
            .parse()
            .map_err(|_| ArgError(format!("--target expects a number, got {v:?}")))?,
        None => return Err(ArgError("--target <ticks/message> is required".into())),
    };
    let kmax = args.get_u64("kmax", 256)?;
    let mut s = String::new();
    let _ = writeln!(s, "params: {params}, target {target:.3} ticks/message");
    for (label, family) in [
        ("r-passive (beta)", bounds::Family::Passive),
        ("active (gamma) ", bounds::Family::Active),
    ] {
        match bounds::min_alphabet_for(params, family, target, kmax) {
            Some(k) => {
                let guarantee = match family {
                    bounds::Family::Passive => bounds::passive_upper(params, k),
                    bounds::Family::Active => bounds::active_upper(params, k),
                };
                let _ = writeln!(
                    s,
                    "  {label}: k = {k} suffices (guarantee {guarantee:.3}, floor {:.3})",
                    bounds::family_lower(params, family, k)
                );
            }
            None => {
                let _ = writeln!(
                    s,
                    "  {label}: unreachable even at k = {kmax} (floor {:.3})",
                    bounds::family_lower(params, family, kmax)
                );
            }
        }
    }
    Ok(s)
}

/// `rstp dist`
pub fn cmd_dist(args: &Args) -> Result<String, ArgError> {
    args.ensure_known(&["c1", "c2", "d", "k", "window", "protocol", "n", "runs"])?;
    let params = timing(args)?;
    let kind = protocol(args)?;
    let n = args.get_usize("n", 200)?;
    let runs = args.get_u64("runs", 24)?.max(1);
    let summary = rstp_sim::stats::effort_distribution(kind, params, n, 0..runs)
        .map_err(|e| ArgError(e.to_string()))?;
    let mut s = String::new();
    let _ = writeln!(s, "protocol : {}", kind.name());
    let _ = writeln!(s, "params   : {params}, n = {n}, {runs} random schedules");
    let _ = writeln!(s, "effort   : {summary}");
    Ok(s)
}

/// Dispatches a parsed command line.
///
/// # Errors
///
/// [`ArgError`] with a user-facing message.
pub fn dispatch(args: &Args) -> Result<String, ArgError> {
    match args.command.as_deref() {
        Some("bounds") => cmd_bounds(args),
        Some("run") => cmd_run(args, false),
        Some("trace") => cmd_run(args, true),
        Some("effort") => cmd_effort(args),
        Some("distinguish") => cmd_distinguish(args),
        Some("curve") => cmd_curve(args),
        Some("plan") => cmd_plan(args),
        Some("dist") => cmd_dist(args),
        Some("net") => crate::net::cmd_net(args),
        Some("serve") => crate::serve::cmd_serve(args),
        Some("swarm") => crate::serve::cmd_swarm(args),
        Some("replay") => crate::replay::cmd_replay(args),
        Some("check") => crate::check::cmd_check(args),
        Some("analyze") => crate::analyze::cmd_analyze(args),
        Some("help") | None => Ok(USAGE.to_string()),
        Some(other) => Err(ArgError(format!(
            "unknown command {other:?}; run `rstp help`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(argv: &[&str]) -> Result<String, ArgError> {
        dispatch(&Args::parse(argv.iter().copied()).unwrap())
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&["help"]).unwrap().contains("USAGE"));
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run(&["bogus"]).is_err());
    }

    #[test]
    fn bounds_command() {
        let out = run(&["bounds", "--c1", "1", "--c2", "2", "--d", "8", "--k", "4"]).unwrap();
        assert!(out.contains("Thm 5.3"));
        assert!(out.contains("better guarantee"));
    }

    #[test]
    fn run_command_with_explicit_input() {
        let out = run(&[
            "run",
            "--protocol",
            "beta",
            "--k",
            "3",
            "--c1",
            "1",
            "--c2",
            "2",
            "--d",
            "6",
            "--input",
            "10110",
        ])
        .unwrap();
        assert!(out.contains("Y = X (exact)"), "{out}");
        assert!(out.contains("trace OK"));
    }

    #[test]
    fn trace_command_renders_events() {
        let out = run(&[
            "trace",
            "--protocol",
            "alpha",
            "--c1",
            "2",
            "--c2",
            "3",
            "--d",
            "6",
            "--input",
            "10",
        ])
        .unwrap();
        assert!(out.contains("send(data(1))"), "{out}");
        assert!(out.contains("write(0)"));
    }

    #[test]
    fn trace_command_formats() {
        let base = [
            "trace",
            "--protocol",
            "alpha",
            "--c1",
            "2",
            "--c2",
            "3",
            "--d",
            "6",
            "--input",
            "10",
            "--format",
        ];
        let timeline = run(&[&base[..], &["timeline"]].concat()).unwrap();
        assert!(timeline.contains("chan |"), "{timeline}");
        let csv = run(&[&base[..], &["csv"]].concat()).unwrap();
        assert!(csv.contains("time,owner,action"), "{csv}");
        assert!(run(&[&base[..], &["bogus"]].concat()).is_err());
    }

    #[test]
    fn effort_command_reports_bounds() {
        let out = run(&[
            "effort",
            "--protocol",
            "gamma",
            "--k",
            "4",
            "--n",
            "60",
            "--seed",
            "3",
        ])
        .unwrap();
        assert!(out.contains("worst effort"));
        assert!(out.contains("Thm 5.6"));
    }

    #[test]
    fn distinguish_command() {
        let out = run(&[
            "distinguish",
            "--protocol",
            "beta",
            "--k",
            "2",
            "--n",
            "6",
            "--c1",
            "1",
            "--c2",
            "1",
            "--d",
            "3",
        ])
        .unwrap();
        assert!(out.contains("injective"), "{out}");
        assert!(out.contains("holds"));
        assert!(run(&["distinguish", "--n", "21"]).is_err());
        assert!(run(&["distinguish", "--protocol", "gamma"]).is_err());
    }

    #[test]
    fn curve_command() {
        let out = run(&["curve", "--kmax", "6"]).unwrap();
        assert_eq!(out.lines().count(), 2 + 5); // header x2 + k = 2..6
    }

    #[test]
    fn plan_command() {
        let out = run(&[
            "plan", "--c1", "1", "--c2", "2", "--d", "8", "--target", "5.0",
        ])
        .unwrap();
        assert!(out.contains("suffices"), "{out}");
        // Impossible target.
        let out = run(&[
            "plan", "--c1", "1", "--c2", "2", "--d", "8", "--target", "0.001", "--kmax", "8",
        ])
        .unwrap();
        assert!(out.contains("unreachable"), "{out}");
        assert!(run(&["plan"]).is_err()); // --target required
        assert!(run(&["plan", "--target", "x"]).is_err());
    }

    #[test]
    fn dist_command() {
        let out = run(&[
            "dist",
            "--protocol",
            "beta",
            "--k",
            "4",
            "--n",
            "40",
            "--runs",
            "4",
        ])
        .unwrap();
        assert!(out.contains("4 random schedules"), "{out}");
        assert!(out.contains("mean="));
    }

    #[test]
    fn unknown_flag_rejected_per_command() {
        assert!(run(&["bounds", "--nope", "1"]).is_err());
        assert!(run(&["run", "--protocol", "unknown"]).is_err());
        assert!(run(&["run", "--step", "unknown"]).is_err());
        assert!(run(&["run", "--delivery", "unknown"]).is_err());
        assert!(run(&["run", "--input", "012"]).is_err());
    }
}
