//! Property tests for the flight-record format, mirroring the wire
//! codec's taxonomy: encode→decode identity over the whole record
//! space, and strict non-panicking rejection of corrupted prefixes.

use proptest::prelude::*;
use rstp_record::{
    format::{decode_record, encode_record, read_header, write_header},
    Event, RecStats, Record, RecordError, RunMeta,
};
use rstp_sim::ProtocolKind;

fn kind_strategy() -> impl Strategy<Value = ProtocolKind> {
    prop_oneof![
        Just(ProtocolKind::Alpha),
        (1u64..=16).prop_map(|k| ProtocolKind::Beta { k }),
        (1u64..=16).prop_map(|k| ProtocolKind::Gamma { k }),
        (any::<bool>(), 0u64..=64).prop_map(|(some, t)| ProtocolKind::AltBit {
            timeout_steps: some.then_some(t)
        }),
        (1u64..=16).prop_map(|k| ProtocolKind::Framed { k }),
        (1u64..=16).prop_map(|k| ProtocolKind::BetaWindow { k }),
        (any::<bool>(), 0u64..=64).prop_map(|(some, t)| ProtocolKind::Stenning {
            timeout_steps: some.then_some(t)
        }),
        (1u64..=16, 1u64..=8).prop_map(|(k, window)| ProtocolKind::Pipelined { k, window }),
    ]
}

fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        (any::<u64>(), any::<u32>(), kind_strategy(), any::<u32>()).prop_map(
            |(at_micros, session, kind, n)| Event::Admit {
                at_micros,
                session,
                kind,
                n,
            }
        ),
        (
            any::<u64>(),
            any::<u32>(),
            proptest::collection::vec(any::<u8>(), 0..=64)
        )
            .prop_map(|(at_micros, session, wire)| Event::Rx {
                at_micros,
                session,
                wire,
            }),
        (
            any::<u64>(),
            any::<u32>(),
            proptest::collection::vec(any::<u8>(), 0..=64)
        )
            .prop_map(|(at_micros, session, wire)| Event::Tx {
                at_micros,
                session,
                wire,
            }),
        (any::<u64>(), any::<u32>(), any::<u64>(), any::<bool>()).prop_map(
            |(at_micros, session, due_tick, late)| Event::WheelPop {
                at_micros,
                session,
                due_tick,
                late,
            }
        ),
        (any::<u64>(), any::<u32>(), any::<u64>()).prop_map(|(at_micros, session, due_tick)| {
            Event::DeadlineMiss {
                at_micros,
                session,
                due_tick,
            }
        }),
        (
            any::<u64>(),
            any::<u32>(),
            any::<bool>(),
            proptest::collection::vec(any::<bool>(), 0..=80)
        )
            .prop_map(|(at_micros, session, completed, written)| Event::Verdict {
                at_micros,
                session,
                completed,
                written,
            }),
        (
            any::<u64>(),
            any::<u32>(),
            proptest::collection::vec(any::<u8>(), 0..=96)
        )
            .prop_map(|(at_micros, session, state)| Event::Snapshot {
                at_micros,
                session,
                state,
            }),
        (any::<u64>(), any::<u32>(), any::<u64>(), any::<bool>()).prop_map(
            |(at_micros, session, written, bit)| Event::Write {
                at_micros,
                session,
                written,
                bit,
            }
        ),
    ]
}

fn record_strategy() -> impl Strategy<Value = Record> {
    prop_oneof![
        (
            any::<u32>(),
            1u64..=8,
            1u64..=16,
            1u64..=64,
            1u64..=10_000,
            (any::<bool>(), any::<u64>())
        )
            .prop_map(
                |(shard, c1, c2, d, tick_micros, (has_seed, s))| Record::Meta(RunMeta {
                    shard,
                    c1,
                    c2,
                    d,
                    tick_micros,
                    seed: has_seed.then_some(s),
                })
            ),
        event_strategy().prop_map(Record::Event),
        (any::<u64>(), any::<u64>(), any::<u32>()).prop_map(|(recorded, dropped, epoch)| {
            Record::Stats(RecStats {
                recorded,
                dropped,
                epoch,
            })
        }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_is_identity(rec in record_strategy()) {
        let mut buf = Vec::new();
        encode_record(&rec, &mut buf);
        let (got, used) = decode_record(&buf).expect("own encoding must decode");
        prop_assert_eq!(got, rec);
        prop_assert_eq!(used, buf.len());
    }

    #[test]
    fn streams_decode_back_to_back(recs in proptest::collection::vec(record_strategy(), 1..=8)) {
        let mut buf = Vec::new();
        write_header(&mut buf);
        for rec in &recs {
            encode_record(rec, &mut buf);
        }
        let mut pos = read_header(&buf).expect("header");
        let mut got = Vec::new();
        while pos < buf.len() {
            let (rec, used) = decode_record(&buf[pos..]).expect("stream record");
            got.push(rec);
            pos += used;
        }
        prop_assert_eq!(got, recs);
    }

    #[test]
    fn every_strict_prefix_is_truncated_never_a_panic(rec in record_strategy()) {
        let mut buf = Vec::new();
        encode_record(&rec, &mut buf);
        for cut in 0..buf.len() {
            prop_assert!(matches!(
                decode_record(&buf[..cut]),
                Err(RecordError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..=96)) {
        // Any result is fine; reaching it without a panic is the property.
        let _ = decode_record(&bytes);
        let _ = read_header(&bytes);
    }
}
