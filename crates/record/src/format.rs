//! The versioned, length-prefixed flight-record format.
//!
//! A recording file is a 9-byte header — the 8-byte magic `RSTPREC\0`
//! followed by a version byte — and then a stream of records. Each
//! record is a `u32` big-endian payload length followed by the payload;
//! the payload's first byte is the record kind, the rest is the
//! kind-specific body. All integers are big-endian, like the wire
//! format in `rstp-net`.
//!
//! The format is append-only and truncation-tolerant by design: a
//! flight recorder can lose power mid-record, so the reader treats a
//! short tail as a flagged condition, not corruption (see
//! [`crate::reader`]). Everything *before* the tail must parse exactly
//! — the golden-bytes tests below pin the encoding so a revision bump
//! is a conscious act, mirroring the wire-codec discipline.
//!
//! Record kinds:
//!
//! | kind | record | body |
//! |---|---|---|
//! | 1 | [`RunMeta`] | shard u32, c1/c2/d u64, tick_micros u64, seed flag u8 + u64 |
//! | 2 | `Admit` | at u64, session u32, protocol tag u8 + k u64 + window u64 + timeout flag u8 + u64, n u32 |
//! | 3 | `Rx` | at u64, session u32, wire len u16 + bytes |
//! | 4 | `Tx` | at u64, session u32, wire len u16 + bytes |
//! | 5 | `WheelPop` | at u64, session u32, due_tick u64, late u8 |
//! | 6 | `DeadlineMiss` | at u64, session u32, due_tick u64 |
//! | 7 | `Verdict` | at u64, session u32, completed u8, n u32 + packed bits |
//! | 8 | [`RecStats`] | recorded u64, dropped u64, epoch u32 (absent in v1) |
//! | 9 | `Snapshot` | at u64, session u32, state len u16 + bytes |
//! | 10 | `Write` | at u64, session u32, written u64, bit u8 |
//!
//! Version 2 added kinds 9/10 (session snapshots and incremental write
//! records — the durability source for crash recovery) and the stats
//! `epoch` field, which identifies the shard-writer incarnation a stats
//! record belongs to so shed accounting can dedupe mid-file checkpoints
//! from trailers. A v2 reader still parses v1 files: the epoch field is
//! optional on decode and defaults to 0.

use rstp_sim::ProtocolKind;
use std::fmt;

/// Leading file magic: `RSTPREC\0`.
pub const RECORD_MAGIC: [u8; 8] = *b"RSTPREC\0";
/// Current format version; a reader rejects anything newer.
pub const RECORD_VERSION: u8 = 2;
/// File header length: magic plus version byte.
pub const HEADER_LEN: usize = RECORD_MAGIC.len() + 1;
/// Hard ceiling on one record's payload — far above any real record
/// (the largest carries one wire frame), so an oversized length prefix
/// means corruption, not load.
pub const MAX_RECORD_LEN: u32 = 1 << 20;

/// Decode failure for a recording header or record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecordError {
    /// Fewer bytes than the construct needs.
    Truncated {
        /// Bytes required.
        need: usize,
        /// Bytes present.
        got: usize,
    },
    /// The file does not start with [`RECORD_MAGIC`].
    BadMagic,
    /// The header version is newer than this reader.
    FutureVersion {
        /// Version byte found.
        got: u8,
    },
    /// An unassigned record-kind byte.
    UnknownKind {
        /// Kind byte found.
        got: u8,
    },
    /// A length prefix above [`MAX_RECORD_LEN`].
    Oversized {
        /// Declared payload length.
        len: u32,
    },
    /// A structurally invalid body (bad protocol tag, flag byte, or an
    /// inner length that disagrees with the payload length).
    Malformed {
        /// What was wrong.
        what: &'static str,
    },
    /// Filesystem failure while loading a recording (reader only; the
    /// pure decoders never return this).
    Io {
        /// Rendered OS error with path context.
        what: String,
    },
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Truncated { need, got } => {
                write!(f, "truncated record: need {need} bytes, got {got}")
            }
            RecordError::BadMagic => f.write_str("bad magic: not an rstp recording"),
            RecordError::FutureVersion { got } => write!(
                f,
                "recording version {got} is newer than this reader (max {RECORD_VERSION})"
            ),
            RecordError::UnknownKind { got } => write!(f, "unknown record kind {got}"),
            RecordError::Oversized { len } => {
                write!(f, "record length {len} exceeds the {MAX_RECORD_LEN} cap")
            }
            RecordError::Malformed { what } => write!(f, "malformed record: {what}"),
            RecordError::Io { what } => write!(f, "recording io: {what}"),
        }
    }
}

impl std::error::Error for RecordError {}

/// Run-level metadata, written once at the start of every shard file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunMeta {
    /// Shard index the file belongs to.
    pub shard: u32,
    /// `c1` in ticks.
    pub c1: u64,
    /// `c2` in ticks.
    pub c2: u64,
    /// `d` in ticks.
    pub d: u64,
    /// Wall-clock length of one tick, microseconds.
    pub tick_micros: u64,
    /// Swarm input seed, when the run's inputs were seed-derived
    /// (`random_input(n, seed + session - 1)` per the swarm convention).
    pub seed: Option<u64>,
}

/// Ring statistics, written as the trailer of every shard file — and,
/// since format v2, also mid-file as a checkpoint before a shard
/// restarts. Counters are cumulative *within one writer incarnation*;
/// the `epoch` field names that incarnation so readers can dedupe a
/// checkpoint from the trailer that supersedes it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecStats {
    /// Events that made it into the file.
    pub recorded: u64,
    /// Events dropped at the ring (full buffer or contended lock).
    pub dropped: u64,
    /// Writer incarnation the counters belong to (0 for v1 files).
    pub epoch: u32,
}

/// One frame-level event, stamped with the shard clock's microsecond
/// reading (`TickClock::now_micros`; the shard never reads the wall
/// clock on the recorder's behalf).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A session was admitted to the shard's table.
    Admit {
        /// Clock stamp, microseconds since the epoch.
        at_micros: u64,
        /// Raw session id.
        session: u32,
        /// Protocol the session speaks.
        kind: ProtocolKind,
        /// Messages the transfer carries.
        n: u32,
    },
    /// A frame was applied as a `recv` input (wire bytes included).
    Rx {
        /// Clock stamp at application.
        at_micros: u64,
        /// Raw session id.
        session: u32,
        /// The frame's canonical wire encoding.
        wire: Vec<u8>,
    },
    /// A frame was produced by a local step (wire bytes included).
    Tx {
        /// Clock stamp at encoding.
        at_micros: u64,
        /// Raw session id.
        session: u32,
        /// The frame's wire encoding as shipped.
        wire: Vec<u8>,
    },
    /// The timer wheel popped a session's deadline.
    WheelPop {
        /// Clock stamp at the wake.
        at_micros: u64,
        /// Raw session id.
        session: u32,
        /// The tick the deadline was scheduled for.
        due_tick: u64,
        /// Whether the wake overshot the slack (counted as a miss).
        late: bool,
    },
    /// A deadline miss was booked against the session.
    DeadlineMiss {
        /// Clock stamp at the late wake.
        at_micros: u64,
        /// Raw session id.
        session: u32,
        /// The tick that was missed.
        due_tick: u64,
    },
    /// A full serialized session state (the versioned snapshot encoding
    /// from `rstp-serve`), written on admit and on handover-admit. A
    /// crash recovery starts from the latest snapshot and replays the
    /// events after it.
    Snapshot {
        /// Clock stamp at capture.
        at_micros: u64,
        /// Raw session id.
        session: u32,
        /// Opaque versioned snapshot bytes.
        state: Vec<u8>,
    },
    /// The receiver wrote (acknowledged) one message. `written` is the
    /// cumulative count *after* this write — the durable floor a
    /// restarted node must reach again — and `bit` is the message value,
    /// so the no-acknowledged-loss oracle can check the Y-prefix by
    /// content, not just length.
    Write {
        /// Clock stamp at the write.
        at_micros: u64,
        /// Raw session id.
        session: u32,
        /// Cumulative messages written after this one.
        written: u64,
        /// The message value written.
        bit: bool,
    },
    /// The session left the table; `written` is its final output `Y`.
    Verdict {
        /// Clock stamp at retirement (or shutdown, for unfinished).
        at_micros: u64,
        /// Raw session id.
        session: u32,
        /// Whether the session completed (vs. shutdown-unfinished).
        completed: bool,
        /// The receiver's written bits.
        written: Vec<bool>,
    },
}

/// Any record a shard file can contain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// File-leading run metadata.
    Meta(RunMeta),
    /// A frame-level event.
    Event(Event),
    /// File-trailing ring statistics.
    Stats(RecStats),
}

const KIND_META: u8 = 1;
const KIND_ADMIT: u8 = 2;
const KIND_RX: u8 = 3;
const KIND_TX: u8 = 4;
const KIND_POP: u8 = 5;
const KIND_MISS: u8 = 6;
const KIND_VERDICT: u8 = 7;
const KIND_STATS: u8 = 8;
const KIND_SNAPSHOT: u8 = 9;
const KIND_WRITE: u8 = 10;

const TAG_ALPHA: u8 = 1;
const TAG_BETA: u8 = 2;
const TAG_GAMMA: u8 = 3;
const TAG_ALTBIT: u8 = 4;
const TAG_FRAMED: u8 = 5;
const TAG_BETA_WINDOW: u8 = 6;
const TAG_STENNING: u8 = 7;
const TAG_PIPELINED: u8 = 8;
const TAG_STAB_STENNING: u8 = 9;
const TAG_STAB_BETA: u8 = 10;

/// Appends the 9-byte file header.
pub fn write_header(out: &mut Vec<u8>) {
    out.extend_from_slice(&RECORD_MAGIC);
    out.push(RECORD_VERSION);
}

/// Validates the file header; returns [`HEADER_LEN`] on success.
///
/// # Errors
///
/// [`RecordError::Truncated`], [`RecordError::BadMagic`], or
/// [`RecordError::FutureVersion`].
pub fn read_header(buf: &[u8]) -> Result<usize, RecordError> {
    if buf.len() < HEADER_LEN {
        return Err(RecordError::Truncated {
            need: HEADER_LEN,
            got: buf.len(),
        });
    }
    if !buf.starts_with(&RECORD_MAGIC) {
        return Err(RecordError::BadMagic);
    }
    let version = buf.get(RECORD_MAGIC.len()).copied().unwrap_or(0);
    if version > RECORD_VERSION {
        return Err(RecordError::FutureVersion { got: version });
    }
    Ok(HEADER_LEN)
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_kind(out: &mut Vec<u8>, kind: ProtocolKind) {
    let (tag, k, window, timeout) = match kind {
        ProtocolKind::Alpha => (TAG_ALPHA, 0, 0, None),
        ProtocolKind::Beta { k } => (TAG_BETA, k, 0, None),
        ProtocolKind::Gamma { k } => (TAG_GAMMA, k, 0, None),
        ProtocolKind::AltBit { timeout_steps } => (TAG_ALTBIT, 0, 0, timeout_steps),
        ProtocolKind::Framed { k } => (TAG_FRAMED, k, 0, None),
        ProtocolKind::BetaWindow { k } => (TAG_BETA_WINDOW, k, 0, None),
        ProtocolKind::Stenning { timeout_steps } => (TAG_STENNING, 0, 0, timeout_steps),
        ProtocolKind::Pipelined { k, window } => (TAG_PIPELINED, k, window, None),
        ProtocolKind::StabStenning { timeout_steps } => (TAG_STAB_STENNING, 0, 0, timeout_steps),
        ProtocolKind::StabBeta { k } => (TAG_STAB_BETA, k, 0, None),
    };
    out.push(tag);
    put_u64(out, k);
    put_u64(out, window);
    out.push(u8::from(timeout.is_some()));
    put_u64(out, timeout.unwrap_or(0));
}

/// Appends one length-prefixed record.
pub fn encode_record(rec: &Record, out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(64);
    match rec {
        Record::Meta(m) => {
            payload.push(KIND_META);
            put_u32(&mut payload, m.shard);
            put_u64(&mut payload, m.c1);
            put_u64(&mut payload, m.c2);
            put_u64(&mut payload, m.d);
            put_u64(&mut payload, m.tick_micros);
            payload.push(u8::from(m.seed.is_some()));
            put_u64(&mut payload, m.seed.unwrap_or(0));
        }
        Record::Event(ev) => encode_event(ev, &mut payload),
        Record::Stats(s) => {
            payload.push(KIND_STATS);
            put_u64(&mut payload, s.recorded);
            put_u64(&mut payload, s.dropped);
            put_u32(&mut payload, s.epoch);
        }
    }
    put_u32(out, u32::try_from(payload.len()).unwrap_or(u32::MAX));
    out.extend_from_slice(&payload);
}

fn encode_event(ev: &Event, payload: &mut Vec<u8>) {
    match ev {
        Event::Admit {
            at_micros,
            session,
            kind,
            n,
        } => {
            payload.push(KIND_ADMIT);
            put_u64(payload, *at_micros);
            put_u32(payload, *session);
            put_kind(payload, *kind);
            put_u32(payload, *n);
        }
        Event::Rx {
            at_micros,
            session,
            wire,
        }
        | Event::Tx {
            at_micros,
            session,
            wire,
        } => {
            payload.push(if matches!(ev, Event::Rx { .. }) {
                KIND_RX
            } else {
                KIND_TX
            });
            put_u64(payload, *at_micros);
            put_u32(payload, *session);
            put_u16(payload, u16::try_from(wire.len()).unwrap_or(u16::MAX));
            payload.extend_from_slice(&wire[..wire.len().min(usize::from(u16::MAX))]);
        }
        Event::WheelPop {
            at_micros,
            session,
            due_tick,
            late,
        } => {
            payload.push(KIND_POP);
            put_u64(payload, *at_micros);
            put_u32(payload, *session);
            put_u64(payload, *due_tick);
            payload.push(u8::from(*late));
        }
        Event::DeadlineMiss {
            at_micros,
            session,
            due_tick,
        } => {
            payload.push(KIND_MISS);
            put_u64(payload, *at_micros);
            put_u32(payload, *session);
            put_u64(payload, *due_tick);
        }
        Event::Snapshot {
            at_micros,
            session,
            state,
        } => {
            payload.push(KIND_SNAPSHOT);
            put_u64(payload, *at_micros);
            put_u32(payload, *session);
            put_u16(payload, u16::try_from(state.len()).unwrap_or(u16::MAX));
            payload.extend_from_slice(&state[..state.len().min(usize::from(u16::MAX))]);
        }
        Event::Write {
            at_micros,
            session,
            written,
            bit,
        } => {
            payload.push(KIND_WRITE);
            put_u64(payload, *at_micros);
            put_u32(payload, *session);
            put_u64(payload, *written);
            payload.push(u8::from(*bit));
        }
        Event::Verdict {
            at_micros,
            session,
            completed,
            written,
        } => {
            payload.push(KIND_VERDICT);
            put_u64(payload, *at_micros);
            put_u32(payload, *session);
            payload.push(u8::from(*completed));
            put_u32(payload, u32::try_from(written.len()).unwrap_or(u32::MAX));
            let mut byte = 0u8;
            for (i, bit) in written.iter().enumerate() {
                if *bit {
                    byte |= 1 << (i % 8);
                }
                if i % 8 == 7 {
                    payload.push(byte);
                    byte = 0;
                }
            }
            if written.len() % 8 != 0 {
                payload.push(byte);
            }
        }
    }
}

/// A cursor over one record's body.
struct Body<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Body<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RecordError> {
        let end = self.pos.checked_add(n).ok_or(RecordError::Malformed {
            what: "body length overflow",
        })?;
        let s = self.buf.get(self.pos..end).ok_or(RecordError::Truncated {
            need: end,
            got: self.buf.len(),
        })?;
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, RecordError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, RecordError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, RecordError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, RecordError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn flag(&mut self, what: &'static str) -> Result<bool, RecordError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(RecordError::Malformed { what }),
        }
    }

    fn finish(&self) -> Result<(), RecordError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(RecordError::Malformed {
                what: "trailing bytes after body",
            })
        }
    }
}

fn take_kind(b: &mut Body<'_>) -> Result<ProtocolKind, RecordError> {
    let tag = b.u8()?;
    let k = b.u64()?;
    let window = b.u64()?;
    let has_timeout = b.flag("protocol timeout flag")?;
    let timeout_raw = b.u64()?;
    let timeout_steps = has_timeout.then_some(timeout_raw);
    match tag {
        TAG_ALPHA => Ok(ProtocolKind::Alpha),
        TAG_BETA => Ok(ProtocolKind::Beta { k }),
        TAG_GAMMA => Ok(ProtocolKind::Gamma { k }),
        TAG_ALTBIT => Ok(ProtocolKind::AltBit { timeout_steps }),
        TAG_FRAMED => Ok(ProtocolKind::Framed { k }),
        TAG_BETA_WINDOW => Ok(ProtocolKind::BetaWindow { k }),
        TAG_STENNING => Ok(ProtocolKind::Stenning { timeout_steps }),
        TAG_PIPELINED => Ok(ProtocolKind::Pipelined { k, window }),
        TAG_STAB_STENNING => Ok(ProtocolKind::StabStenning { timeout_steps }),
        TAG_STAB_BETA => Ok(ProtocolKind::StabBeta { k }),
        _ => Err(RecordError::Malformed {
            what: "unknown protocol tag",
        }),
    }
}

/// Decodes one length-prefixed record from the start of `buf`.
/// Returns the record and the total bytes consumed (prefix + payload).
///
/// # Errors
///
/// [`RecordError`] on truncation, an oversized or unknown record, or a
/// malformed body.
pub fn decode_record(buf: &[u8]) -> Result<(Record, usize), RecordError> {
    if buf.len() < 4 {
        return Err(RecordError::Truncated {
            need: 4,
            got: buf.len(),
        });
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len > MAX_RECORD_LEN {
        return Err(RecordError::Oversized { len });
    }
    let len = len as usize;
    let total = 4 + len;
    if buf.len() < total {
        return Err(RecordError::Truncated {
            need: total,
            got: buf.len(),
        });
    }
    let Some((&kind_byte, body)) = buf.get(4..total).and_then(<[u8]>::split_first) else {
        return Err(RecordError::Malformed {
            what: "empty payload",
        });
    };
    let mut b = Body { buf: body, pos: 0 };
    let rec = match kind_byte {
        KIND_META => {
            let shard = b.u32()?;
            let c1 = b.u64()?;
            let c2 = b.u64()?;
            let d = b.u64()?;
            let tick_micros = b.u64()?;
            let has_seed = b.flag("meta seed flag")?;
            let seed_raw = b.u64()?;
            Record::Meta(RunMeta {
                shard,
                c1,
                c2,
                d,
                tick_micros,
                seed: has_seed.then_some(seed_raw),
            })
        }
        KIND_ADMIT => {
            let at_micros = b.u64()?;
            let session = b.u32()?;
            let kind = take_kind(&mut b)?;
            let n = b.u32()?;
            Record::Event(Event::Admit {
                at_micros,
                session,
                kind,
                n,
            })
        }
        kind @ (KIND_RX | KIND_TX) => {
            let at_micros = b.u64()?;
            let session = b.u32()?;
            let wire_len = usize::from(b.u16()?);
            let wire = b.take(wire_len)?.to_vec();
            Record::Event(if kind == KIND_RX {
                Event::Rx {
                    at_micros,
                    session,
                    wire,
                }
            } else {
                Event::Tx {
                    at_micros,
                    session,
                    wire,
                }
            })
        }
        KIND_POP => Record::Event(Event::WheelPop {
            at_micros: b.u64()?,
            session: b.u32()?,
            due_tick: b.u64()?,
            late: b.flag("pop late flag")?,
        }),
        KIND_MISS => Record::Event(Event::DeadlineMiss {
            at_micros: b.u64()?,
            session: b.u32()?,
            due_tick: b.u64()?,
        }),
        KIND_VERDICT => {
            let at_micros = b.u64()?;
            let session = b.u32()?;
            let completed = b.flag("verdict completed flag")?;
            let n = b.u32()? as usize;
            let packed = b.take(n.div_ceil(8))?;
            let written = (0..n)
                .map(|i| packed.get(i / 8).copied().unwrap_or(0) >> (i % 8) & 1 == 1)
                .collect();
            Record::Event(Event::Verdict {
                at_micros,
                session,
                completed,
                written,
            })
        }
        KIND_STATS => {
            let recorded = b.u64()?;
            let dropped = b.u64()?;
            // The epoch field arrived in format v2; v1 stats bodies end
            // after the counters and decode with epoch 0.
            let epoch = if b.remaining() >= 4 { b.u32()? } else { 0 };
            Record::Stats(RecStats {
                recorded,
                dropped,
                epoch,
            })
        }
        KIND_SNAPSHOT => {
            let at_micros = b.u64()?;
            let session = b.u32()?;
            let state_len = usize::from(b.u16()?);
            let state = b.take(state_len)?.to_vec();
            Record::Event(Event::Snapshot {
                at_micros,
                session,
                state,
            })
        }
        KIND_WRITE => Record::Event(Event::Write {
            at_micros: b.u64()?,
            session: b.u32()?,
            written: b.u64()?,
            bit: b.flag("write bit flag")?,
        }),
        got => return Err(RecordError::UnknownKind { got }),
    };
    b.finish()?;
    Ok((rec, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: &Record) {
        let mut buf = Vec::new();
        encode_record(rec, &mut buf);
        let (got, used) = decode_record(&buf).unwrap();
        assert_eq!(&got, rec);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn every_record_kind_round_trips() {
        roundtrip(&Record::Meta(RunMeta {
            shard: 3,
            c1: 1,
            c2: 2,
            d: 8,
            tick_micros: 200,
            seed: Some(42),
        }));
        roundtrip(&Record::Meta(RunMeta {
            shard: 0,
            c1: 2,
            c2: 5,
            d: 11,
            tick_micros: 1000,
            seed: None,
        }));
        for kind in [
            ProtocolKind::Alpha,
            ProtocolKind::Beta { k: 4 },
            ProtocolKind::Gamma { k: 2 },
            ProtocolKind::AltBit {
                timeout_steps: None,
            },
            ProtocolKind::AltBit {
                timeout_steps: Some(9),
            },
            ProtocolKind::Framed { k: 3 },
            ProtocolKind::BetaWindow { k: 5 },
            ProtocolKind::Stenning {
                timeout_steps: Some(7),
            },
            ProtocolKind::Pipelined { k: 4, window: 2 },
        ] {
            roundtrip(&Record::Event(Event::Admit {
                at_micros: 12345,
                session: 7,
                kind,
                n: 64,
            }));
        }
        roundtrip(&Record::Event(Event::Rx {
            at_micros: 1,
            session: 2,
            wire: vec![0xAA; 40],
        }));
        roundtrip(&Record::Event(Event::Tx {
            at_micros: u64::MAX,
            session: u32::MAX,
            wire: Vec::new(),
        }));
        roundtrip(&Record::Event(Event::WheelPop {
            at_micros: 5,
            session: 6,
            due_tick: 77,
            late: true,
        }));
        roundtrip(&Record::Event(Event::DeadlineMiss {
            at_micros: 5,
            session: 6,
            due_tick: 78,
        }));
        for n in [0usize, 1, 7, 8, 9, 64] {
            roundtrip(&Record::Event(Event::Verdict {
                at_micros: 9,
                session: 1,
                completed: n % 2 == 0,
                written: (0..n).map(|i| i % 3 == 0).collect(),
            }));
        }
        roundtrip(&Record::Event(Event::Snapshot {
            at_micros: 44,
            session: 3,
            state: vec![0x01, 0xFF, 0x00, 0x42],
        }));
        roundtrip(&Record::Event(Event::Snapshot {
            at_micros: 0,
            session: 0,
            state: Vec::new(),
        }));
        roundtrip(&Record::Event(Event::Write {
            at_micros: 55,
            session: 8,
            written: 17,
            bit: true,
        }));
        roundtrip(&Record::Stats(RecStats {
            recorded: 1000,
            dropped: 3,
            epoch: 0,
        }));
        roundtrip(&Record::Stats(RecStats {
            recorded: 12,
            dropped: 0,
            epoch: 2,
        }));
    }

    /// A v1 stats body (no epoch field) still decodes, with epoch 0:
    /// pre-v2 recordings must keep parsing under the v2 reader.
    #[test]
    fn v1_stats_body_decodes_with_epoch_zero() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&17u32.to_be_bytes());
        buf.push(8); // KIND_STATS
        buf.extend_from_slice(&2u64.to_be_bytes());
        buf.extend_from_slice(&1u64.to_be_bytes());
        let (rec, used) = decode_record(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(
            rec,
            Record::Stats(RecStats {
                recorded: 2,
                dropped: 1,
                epoch: 0,
            })
        );
    }

    /// Golden bytes: the exact encoding of a header plus one small
    /// record of each fixed-size kind. Any change to these bytes is a
    /// format revision and must bump [`RECORD_VERSION`].
    #[test]
    fn golden_bytes_are_pinned() {
        let mut buf = Vec::new();
        write_header(&mut buf);
        encode_record(
            &Record::Meta(RunMeta {
                shard: 1,
                c1: 1,
                c2: 2,
                d: 8,
                tick_micros: 200,
                seed: Some(5),
            }),
            &mut buf,
        );
        encode_record(
            &Record::Event(Event::WheelPop {
                at_micros: 0x0102,
                session: 9,
                due_tick: 3,
                late: false,
            }),
            &mut buf,
        );
        encode_record(
            &Record::Stats(RecStats {
                recorded: 2,
                dropped: 1,
                epoch: 7,
            }),
            &mut buf,
        );
        encode_record(
            &Record::Event(Event::Write {
                at_micros: 0x0304,
                session: 6,
                written: 12,
                bit: true,
            }),
            &mut buf,
        );
        let expected: Vec<u8> = vec![
            // header: magic + version 2
            b'R', b'S', b'T', b'P', b'R', b'E', b'C', 0, 2, //
            // Meta: len 46, kind 1, shard 1, c1 1, c2 2, d 8, tick 200,
            // seed flag 1 + 5
            0, 0, 0, 46, 1, //
            0, 0, 0, 1, //
            0, 0, 0, 0, 0, 0, 0, 1, //
            0, 0, 0, 0, 0, 0, 0, 2, //
            0, 0, 0, 0, 0, 0, 0, 8, //
            0, 0, 0, 0, 0, 0, 0, 200, //
            1, 0, 0, 0, 0, 0, 0, 0, 5, //
            // WheelPop: len 22, kind 5, at 0x0102, session 9, due 3, late 0
            0, 0, 0, 22, 5, //
            0, 0, 0, 0, 0, 0, 1, 2, //
            0, 0, 0, 9, //
            0, 0, 0, 0, 0, 0, 0, 3, //
            0, //
            // Stats: len 21, kind 8, recorded 2, dropped 1, epoch 7
            0, 0, 0, 21, 8, //
            0, 0, 0, 0, 0, 0, 0, 2, //
            0, 0, 0, 0, 0, 0, 0, 1, //
            0, 0, 0, 7, //
            // Write: len 22, kind 10, at 0x0304, session 6, written 12, bit 1
            0, 0, 0, 22, 10, //
            0, 0, 0, 0, 0, 0, 3, 4, //
            0, 0, 0, 6, //
            0, 0, 0, 0, 0, 0, 0, 12, //
            1,  //
        ];
        assert_eq!(buf, expected);
    }

    #[test]
    fn header_errors_are_exhaustive() {
        // Truncated header.
        assert_eq!(
            read_header(&RECORD_MAGIC[..5]),
            Err(RecordError::Truncated { need: 9, got: 5 })
        );
        // Bad magic.
        let mut bad = RECORD_MAGIC.to_vec();
        bad[0] ^= 0xFF;
        bad.push(RECORD_VERSION);
        assert_eq!(read_header(&bad), Err(RecordError::BadMagic));
        // Future version.
        let mut future = RECORD_MAGIC.to_vec();
        future.push(RECORD_VERSION + 1);
        assert_eq!(
            read_header(&future),
            Err(RecordError::FutureVersion {
                got: RECORD_VERSION + 1
            })
        );
        // A valid header parses.
        let mut ok = RECORD_MAGIC.to_vec();
        ok.push(RECORD_VERSION);
        assert_eq!(read_header(&ok), Ok(HEADER_LEN));
    }

    #[test]
    fn record_decode_errors_are_exhaustive() {
        let mut buf = Vec::new();
        encode_record(
            &Record::Event(Event::DeadlineMiss {
                at_micros: 1,
                session: 2,
                due_tick: 3,
            }),
            &mut buf,
        );
        // Truncated at every prefix length strictly shorter than the record.
        for cut in 0..buf.len() {
            assert!(
                matches!(
                    decode_record(&buf[..cut]),
                    Err(RecordError::Truncated { .. })
                ),
                "cut at {cut}"
            );
        }
        // Unknown kind byte.
        let mut unk = buf.clone();
        unk[4] = 0xEE;
        assert_eq!(
            decode_record(&unk),
            Err(RecordError::UnknownKind { got: 0xEE })
        );
        // Oversized length prefix.
        let mut big = buf.clone();
        big[..4].copy_from_slice(&(MAX_RECORD_LEN + 1).to_be_bytes());
        assert_eq!(
            decode_record(&big),
            Err(RecordError::Oversized {
                len: MAX_RECORD_LEN + 1
            })
        );
        // Zero-length payload.
        assert_eq!(
            decode_record(&[0, 0, 0, 0]),
            Err(RecordError::Malformed {
                what: "empty payload"
            })
        );
        // Trailing bytes inside the declared payload.
        let mut fat = buf.clone();
        fat.push(0xAB);
        let len = u32::try_from(fat.len() - 4).unwrap();
        fat[..4].copy_from_slice(&len.to_be_bytes());
        assert_eq!(
            decode_record(&fat),
            Err(RecordError::Malformed {
                what: "trailing bytes after body"
            })
        );
        // A non-boolean flag byte.
        let mut pop = Vec::new();
        encode_record(
            &Record::Event(Event::WheelPop {
                at_micros: 1,
                session: 2,
                due_tick: 3,
                late: false,
            }),
            &mut pop,
        );
        let last = pop.len() - 1;
        pop[last] = 2;
        assert_eq!(
            decode_record(&pop),
            Err(RecordError::Malformed {
                what: "pop late flag"
            })
        );
        // A snapshot whose inner length overruns the payload.
        let mut snap = Vec::new();
        encode_record(
            &Record::Event(Event::Snapshot {
                at_micros: 1,
                session: 2,
                state: vec![0xAA, 0xBB],
            }),
            &mut snap,
        );
        // Inner state length sits after len(4)+kind(1)+at(8)+session(4).
        snap[4 + 1 + 8 + 4 + 1] = 0xFF;
        assert!(matches!(
            decode_record(&snap),
            Err(RecordError::Truncated { .. })
        ));
        // A non-boolean write bit.
        let mut wr = Vec::new();
        encode_record(
            &Record::Event(Event::Write {
                at_micros: 1,
                session: 2,
                written: 3,
                bit: false,
            }),
            &mut wr,
        );
        let last = wr.len() - 1;
        wr[last] = 9;
        assert_eq!(
            decode_record(&wr),
            Err(RecordError::Malformed {
                what: "write bit flag"
            })
        );
        // A bad protocol tag.
        let mut admit = Vec::new();
        encode_record(
            &Record::Event(Event::Admit {
                at_micros: 1,
                session: 2,
                kind: ProtocolKind::Alpha,
                n: 4,
            }),
            &mut admit,
        );
        admit[4 + 1 + 8 + 4] = 0xBB; // the tag byte after len+kind+at+session
        assert_eq!(
            decode_record(&admit),
            Err(RecordError::Malformed {
                what: "unknown protocol tag"
            })
        );
    }

    #[test]
    fn error_display_is_informative() {
        for (err, needle) in [
            (RecordError::Truncated { need: 9, got: 2 }, "truncated"),
            (RecordError::BadMagic, "magic"),
            (RecordError::FutureVersion { got: 9 }, "version 9"),
            (RecordError::UnknownKind { got: 99 }, "kind 99"),
            (RecordError::Oversized { len: 1 << 21 }, "cap"),
            (RecordError::Malformed { what: "x" }, "malformed"),
            (
                RecordError::Io {
                    what: "enoent".into(),
                },
                "io",
            ),
        ] {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
