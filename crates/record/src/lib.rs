//! # rstp-record — per-shard flight recorder and postmortem reader
//!
//! At swarm scale a failed session used to be a one-line `Y != X`
//! verdict with no way back to the frames that caused it. This crate is
//! the observability layer: every shard of `rstp-serve` can stream its
//! frame-level events — admit, rx/tx with wire bytes, timer-wheel pop,
//! deadline miss, final verdict — into a per-shard binary file, and a
//! postmortem can reconstruct any session from those files and feed it
//! back through the simulator (see `rstp replay` and the
//! `rstp-check` bridge).
//!
//! The cardinal rule is *load independence*: recording must never pace
//! the data path. The producer side is strictly nonblocking — a bounded
//! ring accepts events with a single `try_lock`, and saturation or
//! contention drops the event and counts it, loudly, rather than
//! stalling a shard past its `c2` window (see [`ring`]). A writer
//! thread per shard drains the ring to disk ([`writer`]) in a
//! versioned, length-prefixed format with pinned golden bytes
//! ([`format`]); [`reader`] and [`index`] turn the files back into
//! per-session histories.
//!
//! Timestamps are `TickClock::now_micros` readings supplied by the
//! shard — this crate never reads the wall clock itself, so the
//! `wall-clock-outside-driver` lint holds by construction.
//!
//! See `docs/REPLAY.md` for the format specification and the full
//! record → replay → shrink walkthrough.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod index;
pub mod reader;
pub mod ring;
pub mod writer;

pub use format::{
    Event, RecStats, Record, RecordError, RunMeta, HEADER_LEN, MAX_RECORD_LEN, RECORD_MAGIC,
    RECORD_VERSION,
};
pub use index::{SessionHistory, SessionIndex};
pub use reader::Recording;
pub use ring::{ring, RingConsumer, RingProducer};
pub use writer::{shard_file_name, RecorderSet, RecorderTotals, ShardRecorder, DEFAULT_RING_CAP};
