//! A per-session view over every shard file of one recorded run.
//!
//! The shard files interleave sessions in arrival order; a postmortem
//! asks the opposite question — "show me session 17". The index groups
//! each session's admit, frames, pops, misses, and verdict, keyed by
//! raw session id, and carries the run-level metadata (timing triple,
//! tick, seed) the replay bridge needs.

use crate::format::{Event, RecordError, RunMeta};
use crate::reader::Recording;
use rstp_sim::ProtocolKind;
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// Everything one session did, in event order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SessionHistory {
    /// Raw session id.
    pub session: u32,
    /// Shard that owned the session.
    pub shard: u32,
    /// Protocol, from the admit event.
    pub kind: Option<ProtocolKind>,
    /// Planned transfer length `n`, from the admit event.
    pub n: Option<u32>,
    /// Applied inbound frames as `(at_micros, wire bytes)`.
    pub rx: Vec<(u64, Vec<u8>)>,
    /// Produced outbound frames as `(at_micros, wire bytes)`.
    pub tx: Vec<(u64, Vec<u8>)>,
    /// Wheel pops as `(at_micros, due_tick, late)`.
    pub pops: Vec<(u64, u64, bool)>,
    /// Deadline misses as `(at_micros, due_tick)`.
    pub misses: Vec<(u64, u64)>,
    /// Acknowledged writes as `(at_micros, cumulative_written, bit)`.
    /// The last entry's count is the durable floor a crash recovery
    /// must restore; the bits are the acknowledged Y-prefix.
    pub writes: Vec<(u64, u64, bool)>,
    /// Session-state snapshots as `(at_micros, snapshot bytes)`.
    pub snapshots: Vec<(u64, Vec<u8>)>,
    /// Final verdict as `(at_micros, completed, written)`.
    pub verdict: Option<(u64, bool, Vec<bool>)>,
}

/// The run-wide index: session histories plus run metadata.
#[derive(Clone, Debug, Default)]
pub struct SessionIndex {
    /// Timing triple `(c1, c2, d)` in ticks, from the first meta record.
    pub params: Option<(u64, u64, u64)>,
    /// Tick length in microseconds, from the first meta record.
    pub tick_micros: Option<u64>,
    /// Swarm input seed, when the run recorded one.
    pub seed: Option<u64>,
    /// Ring drops summed over every shard file (a nonzero value means
    /// histories may have holes).
    pub dropped: u64,
    /// Ring drops per shard, for scoping "this history may have holes"
    /// to the sessions that shard owned.
    pub shard_dropped: BTreeMap<u32, u64>,
    /// True if any shard file was truncated mid-record.
    pub truncated: bool,
    sessions: BTreeMap<u32, SessionHistory>,
}

impl SessionIndex {
    /// Builds an index from parsed shard recordings.
    #[must_use]
    pub fn build(recordings: &[Recording]) -> SessionIndex {
        let mut ix = SessionIndex::default();
        for rec in recordings {
            let shard = rec.meta.map_or(0, |m| m.shard);
            if let Some(RunMeta {
                c1,
                c2,
                d,
                tick_micros,
                seed,
                ..
            }) = rec.meta
            {
                ix.params = ix.params.or(Some((c1, c2, d)));
                ix.tick_micros = ix.tick_micros.or(Some(tick_micros));
                ix.seed = ix.seed.or(seed);
            }
            // Shed accounting: counters are cumulative within a writer
            // epoch, and a file may hold several stats records for the
            // same epoch (a recovery checkpoint plus the trailer that
            // supersedes it). Keep only the *last* record per epoch,
            // then sum across epochs — summing raw records would double
            // count every checkpointed shard.
            let mut per_epoch: BTreeMap<u32, u64> = BTreeMap::new();
            if rec.stats_records.is_empty() {
                // Hand-built or pre-`stats_records` recordings.
                if let Some(s) = rec.stats {
                    per_epoch.insert(s.epoch, s.dropped);
                }
            } else {
                for s in &rec.stats_records {
                    per_epoch.insert(s.epoch, s.dropped);
                }
            }
            let dropped: u64 = per_epoch.values().sum();
            ix.dropped += dropped;
            if dropped > 0 {
                *ix.shard_dropped.entry(shard).or_insert(0) += dropped;
            }
            ix.truncated |= rec.truncated;
            for ev in &rec.events {
                ix.apply(shard, ev);
            }
        }
        ix
    }

    fn apply(&mut self, shard: u32, ev: &Event) {
        let session = match ev {
            Event::Admit { session, .. }
            | Event::Rx { session, .. }
            | Event::Tx { session, .. }
            | Event::WheelPop { session, .. }
            | Event::DeadlineMiss { session, .. }
            | Event::Snapshot { session, .. }
            | Event::Write { session, .. }
            | Event::Verdict { session, .. } => *session,
        };
        let h = self
            .sessions
            .entry(session)
            .or_insert_with(|| SessionHistory {
                session,
                shard,
                ..SessionHistory::default()
            });
        match ev {
            Event::Admit { kind, n, .. } => {
                h.kind = Some(*kind);
                h.n = Some(*n);
            }
            Event::Rx {
                at_micros, wire, ..
            } => h.rx.push((*at_micros, wire.clone())),
            Event::Tx {
                at_micros, wire, ..
            } => h.tx.push((*at_micros, wire.clone())),
            Event::WheelPop {
                at_micros,
                due_tick,
                late,
                ..
            } => h.pops.push((*at_micros, *due_tick, *late)),
            Event::DeadlineMiss {
                at_micros,
                due_tick,
                ..
            } => h.misses.push((*at_micros, *due_tick)),
            Event::Snapshot {
                at_micros, state, ..
            } => h.snapshots.push((*at_micros, state.clone())),
            Event::Write {
                at_micros,
                written,
                bit,
                ..
            } => h.writes.push((*at_micros, *written, *bit)),
            Event::Verdict {
                at_micros,
                completed,
                written,
                ..
            } => h.verdict = Some((*at_micros, *completed, written.clone())),
        }
    }

    /// Loads every `shard-*.rec` under `dir` (sorted by name) and
    /// builds the index.
    ///
    /// # Errors
    ///
    /// [`RecordError::Io`] if the directory is unreadable or holds no
    /// `.rec` files; parse errors as [`Recording::load`].
    pub fn from_dir(dir: &Path) -> Result<SessionIndex, RecordError> {
        let entries = fs::read_dir(dir).map_err(|e| RecordError::Io {
            what: format!("read dir {}: {e}", dir.display()),
        })?;
        let mut paths: Vec<_> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("rec"))
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(RecordError::Io {
                what: format!("no .rec files under {}", dir.display()),
            });
        }
        let mut recordings = Vec::with_capacity(paths.len());
        for p in paths {
            recordings.push(Recording::load(&p)?);
        }
        Ok(SessionIndex::build(&recordings))
    }

    /// One session's history, if recorded.
    #[must_use]
    pub fn get(&self, session: u32) -> Option<&SessionHistory> {
        self.sessions.get(&session)
    }

    /// Every recorded session, ascending by id.
    pub fn sessions(&self) -> impl Iterator<Item = &SessionHistory> {
        self.sessions.values()
    }

    /// Number of distinct sessions recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when no session appears in any shard file.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::RecStats;

    fn meta(shard: u32) -> RunMeta {
        RunMeta {
            shard,
            c1: 1,
            c2: 2,
            d: 8,
            tick_micros: 200,
            seed: Some(11),
        }
    }

    #[test]
    fn index_groups_events_by_session_across_shards() {
        let shard0 = Recording {
            meta: Some(meta(0)),
            events: vec![
                Event::Admit {
                    at_micros: 1,
                    session: 2,
                    kind: ProtocolKind::Beta { k: 4 },
                    n: 8,
                },
                Event::Rx {
                    at_micros: 5,
                    session: 2,
                    wire: vec![1, 2, 3],
                },
                Event::Verdict {
                    at_micros: 9,
                    session: 2,
                    completed: true,
                    written: vec![true, false],
                },
            ],
            stats: Some(RecStats {
                recorded: 3,
                dropped: 1,
                epoch: 0,
            }),
            stats_records: vec![RecStats {
                recorded: 3,
                dropped: 1,
                epoch: 0,
            }],
            truncated: false,
        };
        let shard1 = Recording {
            meta: Some(meta(1)),
            events: vec![Event::WheelPop {
                at_micros: 2,
                session: 3,
                due_tick: 7,
                late: true,
            }],
            stats: None,
            stats_records: Vec::new(),
            truncated: true,
        };
        let ix = SessionIndex::build(&[shard0, shard1]);
        assert_eq!(ix.len(), 2);
        assert_eq!(ix.params, Some((1, 2, 8)));
        assert_eq!(ix.tick_micros, Some(200));
        assert_eq!(ix.seed, Some(11));
        assert_eq!(ix.dropped, 1);
        assert_eq!(ix.shard_dropped.get(&0), Some(&1));
        assert_eq!(ix.shard_dropped.get(&1), None);
        assert!(ix.truncated);
        let s2 = ix.get(2).unwrap();
        assert_eq!(s2.shard, 0);
        assert_eq!(s2.kind, Some(ProtocolKind::Beta { k: 4 }));
        assert_eq!(s2.n, Some(8));
        assert_eq!(s2.rx.len(), 1);
        assert_eq!(s2.verdict.as_ref().unwrap().2, vec![true, false]);
        let s3 = ix.get(3).unwrap();
        assert_eq!(s3.shard, 1);
        assert_eq!(s3.pops, vec![(2, 7, true)]);
        assert!(ix.get(9).is_none());
        let ids: Vec<u32> = ix.sessions().map(|h| h.session).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn checkpoint_plus_trailer_in_one_epoch_counts_sheds_once() {
        // The shape a shard restart leaves behind: a cumulative stats
        // checkpoint mid-file, then the (larger, same-epoch) trailer.
        // Naive summing reports 3 + 3 = 6 sheds; the truth is 3.
        let rec = Recording {
            meta: Some(meta(0)),
            events: Vec::new(),
            stats: Some(RecStats {
                recorded: 9,
                dropped: 3,
                epoch: 0,
            }),
            stats_records: vec![
                RecStats {
                    recorded: 5,
                    dropped: 3,
                    epoch: 0,
                },
                RecStats {
                    recorded: 9,
                    dropped: 3,
                    epoch: 0,
                },
            ],
            truncated: false,
        };
        let ix = SessionIndex::build(&[rec]);
        assert_eq!(ix.dropped, 3);
        assert_eq!(ix.shard_dropped.get(&0), Some(&3));
    }

    #[test]
    fn distinct_writer_epochs_are_summed() {
        // A writer that restarted mid-file resets its counters; each
        // epoch's last record contributes independently.
        let rec = Recording {
            meta: Some(meta(2)),
            events: Vec::new(),
            stats: None,
            stats_records: vec![
                RecStats {
                    recorded: 5,
                    dropped: 2,
                    epoch: 0,
                },
                RecStats {
                    recorded: 1,
                    dropped: 4,
                    epoch: 1,
                },
                RecStats {
                    recorded: 7,
                    dropped: 5,
                    epoch: 1,
                },
            ],
            truncated: false,
        };
        let ix = SessionIndex::build(&[rec]);
        assert_eq!(ix.dropped, 7); // epoch 0 → 2, epoch 1 → 5 (last wins)
        assert_eq!(ix.shard_dropped.get(&2), Some(&7));
    }

    /// Regression for the shed double-count: a truncated-then-resumed
    /// recording — checkpoint stats written before a restart, more
    /// events after it, file torn mid-record at the tail — must count
    /// the checkpoint's sheds exactly once.
    #[test]
    fn truncated_then_resumed_recording_counts_sheds_once() {
        use crate::format::{encode_record, write_header, Record};
        let mut buf = Vec::new();
        write_header(&mut buf);
        encode_record(&Record::Meta(meta(0)), &mut buf);
        encode_record(
            &Record::Event(Event::Admit {
                at_micros: 1,
                session: 4,
                kind: ProtocolKind::Beta { k: 4 },
                n: 8,
            }),
            &mut buf,
        );
        // Pre-restart checkpoint (cumulative: 1 recorded, 2 shed).
        encode_record(
            &Record::Stats(RecStats {
                recorded: 1,
                dropped: 2,
                epoch: 0,
            }),
            &mut buf,
        );
        // The resumed epoch appends more events...
        encode_record(
            &Record::Event(Event::Write {
                at_micros: 9,
                session: 4,
                written: 1,
                bit: true,
            }),
            &mut buf,
        );
        // ...then a second checkpoint, cumulative over the same ring.
        encode_record(
            &Record::Stats(RecStats {
                recorded: 3,
                dropped: 2,
                epoch: 0,
            }),
            &mut buf,
        );
        // Torn tail: a record that never finished hitting the disk.
        encode_record(
            &Record::Event(Event::DeadlineMiss {
                at_micros: 12,
                session: 4,
                due_tick: 3,
            }),
            &mut buf,
        );
        buf.truncate(buf.len() - 5);

        let rec = Recording::parse(&buf).unwrap();
        assert!(rec.truncated);
        assert_eq!(rec.stats_records.len(), 2);
        let ix = SessionIndex::build(&[rec]);
        assert!(ix.truncated);
        assert_eq!(ix.dropped, 2, "checkpoint + trailer must dedupe");
        assert_eq!(ix.shard_dropped.get(&0), Some(&2));
        let h = ix.get(4).unwrap();
        assert_eq!(h.writes, vec![(9, 1, true)]);
    }

    #[test]
    fn from_dir_without_recordings_is_io() {
        let err = SessionIndex::from_dir(Path::new("/no/such/rstp-dir")).unwrap_err();
        assert!(matches!(err, RecordError::Io { .. }), "{err}");
    }
}
