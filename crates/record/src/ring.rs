//! The bounded, strictly nonblocking event ring between a shard and its
//! writer thread.
//!
//! The data-path contract is absolute: recording must never pace the
//! shard. The producer side therefore takes the buffer lock only with
//! `try_lock` — if the writer happens to hold it, or the ring is at
//! capacity, the event is *dropped and counted*, never queued against a
//! blocked lock. The consumer (the writer thread) is the only side that
//! blocks; it drains the whole buffer in one swap so the lock is held
//! for O(1) pointer work, not per-record encoding.
//!
//! Lock discipline: `buf` is the ring's only lock and nests under
//! nothing — see `analysis/lock-order.toml`, which tracks this file.

use crate::format::Record;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Shared state between one producer ([`RingProducer`]) and one
/// consumer ([`RingConsumer`]).
struct Shared {
    buf: Mutex<VecDeque<Record>>,
    cap: usize,
    recorded: AtomicU64,
    dropped: AtomicU64,
    closed: AtomicBool,
}

/// The shard-side handle: nonblocking push plus the counters.
#[derive(Clone)]
pub struct RingProducer {
    shared: Arc<Shared>,
}

/// The writer-side handle: blocking drain plus shutdown observation.
pub struct RingConsumer {
    shared: Arc<Shared>,
}

/// Creates a ring bounded at `cap` records (at least 1).
#[must_use]
pub fn ring(cap: usize) -> (RingProducer, RingConsumer) {
    let shared = Arc::new(Shared {
        buf: Mutex::new(VecDeque::with_capacity(cap.clamp(1, 4096))),
        cap: cap.max(1),
        recorded: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
        closed: AtomicBool::new(false),
    });
    (
        RingProducer {
            shared: shared.clone(),
        },
        RingConsumer { shared },
    )
}

impl RingProducer {
    /// Offers one record. Returns `true` if it was accepted; a full ring
    /// or a contended lock drops the record (counted in [`dropped`]).
    /// This never blocks and never allocates beyond the deque's growth
    /// toward its fixed capacity.
    ///
    /// [`dropped`]: RingProducer::dropped
    pub fn push(&self, rec: Record) -> bool {
        if let Ok(mut q) = self.shared.buf.try_lock() {
            if q.len() < self.shared.cap {
                q.push_back(rec);
                drop(q);
                self.shared.recorded.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        self.shared.dropped.fetch_add(1, Ordering::Relaxed);
        false
    }

    /// Events accepted into the ring so far.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.shared.recorded.load(Ordering::Relaxed)
    }

    /// Events dropped at the ring so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Signals the consumer that no further events will arrive.
    pub fn close(&self) {
        self.shared.closed.store(true, Ordering::Release);
    }
}

impl RingConsumer {
    /// Moves every buffered record into `out`. The lock is held only
    /// for the swap. A poisoned lock (a panicked producer mid-push,
    /// which cannot happen — push performs no fallible work under the
    /// lock) degrades to draining whatever is there.
    pub fn drain(&self, out: &mut Vec<Record>) {
        let mut q = self
            .shared
            .buf
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        out.extend(q.drain(..));
    }

    /// True once the producer closed the ring; buffered records may
    /// still need a final [`drain`](RingConsumer::drain).
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }

    /// Counter snapshot `(recorded, dropped)`.
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        (
            self.shared.recorded.load(Ordering::Relaxed),
            self.shared.dropped.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{Event, RecStats};

    fn ev(session: u32) -> Record {
        Record::Event(Event::DeadlineMiss {
            at_micros: 1,
            session,
            due_tick: 2,
        })
    }

    #[test]
    fn push_then_drain_preserves_order() {
        let (tx, rx) = ring(8);
        for i in 0..5 {
            assert!(tx.push(ev(i)));
        }
        let mut out = Vec::new();
        rx.drain(&mut out);
        let ids: Vec<u32> = out
            .iter()
            .map(|r| match r {
                Record::Event(Event::DeadlineMiss { session, .. }) => *session,
                _ => u32::MAX,
            })
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(tx.recorded(), 5);
        assert_eq!(tx.dropped(), 0);
    }

    #[test]
    fn full_ring_drops_newest_and_counts() {
        let (tx, rx) = ring(2);
        assert!(tx.push(ev(0)));
        assert!(tx.push(ev(1)));
        assert!(!tx.push(ev(2)));
        assert!(!tx.push(ev(3)));
        assert_eq!(tx.recorded(), 2);
        assert_eq!(tx.dropped(), 2);
        let mut out = Vec::new();
        rx.drain(&mut out);
        assert_eq!(out.len(), 2);
        // Room again after the drain.
        assert!(tx.push(Record::Stats(RecStats::default())));
    }

    #[test]
    fn contended_lock_drops_instead_of_blocking() {
        let (tx, rx) = ring(64);
        // Hold the consumer side of the lock across a push: the producer
        // must fail fast, not wait.
        let guard = rx.shared.buf.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(!tx.push(ev(0)));
        drop(guard);
        assert_eq!(tx.dropped(), 1);
        assert!(tx.push(ev(1)));
    }

    #[test]
    fn close_is_visible_to_the_consumer() {
        let (tx, rx) = ring(4);
        assert!(!rx.is_closed());
        tx.push(ev(9));
        tx.close();
        assert!(rx.is_closed());
        let mut out = Vec::new();
        rx.drain(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(rx.counters(), (1, 0));
    }
}
