//! The bounded, strictly nonblocking event ring between a shard and its
//! writer thread.
//!
//! The data-path contract is absolute: recording must never pace the
//! shard. The producer side therefore takes the buffer lock only with
//! `try_lock`, retried for a small bounded number of spins — if the
//! writer still holds it after those, or the ring is at capacity, the
//! event is *dropped and counted*, never queued against a blocked
//! lock. The consumer (the writer thread) is the only side that
//! blocks; it drains the whole buffer in one swap so the lock is held
//! for O(1) pointer work, not per-record encoding — which is what
//! makes the producer's bounded spin all but certain to succeed.
//!
//! Lock discipline: `buf` is the ring's only lock and nests under
//! nothing — see `analysis/lock-order.toml`, which tracks this file.

use crate::format::Record;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Shared state between one producer ([`RingProducer`]) and one
/// consumer ([`RingConsumer`]).
struct Shared {
    buf: Mutex<VecDeque<Record>>,
    cap: usize,
    recorded: AtomicU64,
    dropped: AtomicU64,
    closed: AtomicBool,
    /// Monotone flush-barrier request counter (see
    /// [`RingProducer::request_sync`]).
    sync_req: AtomicU64,
    /// Highest request token the writer has flushed through to disk.
    sync_ack: AtomicU64,
}

/// The shard-side handle: nonblocking push plus the counters.
#[derive(Clone)]
pub struct RingProducer {
    shared: Arc<Shared>,
}

/// The writer-side handle: blocking drain plus shutdown observation.
pub struct RingConsumer {
    shared: Arc<Shared>,
    /// Drain target swapped against `buf` under the lock, so the lock
    /// hold is one pointer swap regardless of how many records are
    /// pending. Warm after the first cycle — both deques keep their
    /// grown capacity.
    scratch: VecDeque<Record>,
}

/// Creates a ring bounded at `cap` records (at least 1).
#[must_use]
pub fn ring(cap: usize) -> (RingProducer, RingConsumer) {
    let shared = Arc::new(Shared {
        buf: Mutex::new(VecDeque::with_capacity(cap.clamp(1, 4096))),
        cap: cap.max(1),
        recorded: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
        closed: AtomicBool::new(false),
        sync_req: AtomicU64::new(0),
        sync_ack: AtomicU64::new(0),
    });
    let scratch = VecDeque::with_capacity(cap.clamp(1, 4096));
    (
        RingProducer {
            shared: shared.clone(),
        },
        RingConsumer { shared, scratch },
    )
}

/// How many times `push` re-tries a contended lock before shedding.
/// The consumer holds the lock for one pointer swap, so a handful of
/// spins rides out any drain that races a push; the bound keeps the
/// path strictly nonblocking even if the writer thread is descheduled
/// mid-swap.
const PUSH_SPINS: u32 = 64;

/// How many scheduler yields [`push_insist`](RingProducer::push_insist)
/// spends on top of its spins. Spins ride out a live swap; yields ride
/// out a writer thread *descheduled* mid-swap, which a spin never
/// outlasts on a loaded box. Still strictly bounded.
const INSIST_YIELDS: u32 = 64;

impl RingProducer {
    /// One bounded acceptance attempt: spins through a contended lock,
    /// hands the record back on a full ring or exhausted spins. Counts
    /// nothing on failure — the callers decide whether to retry or
    /// shed.
    fn offer(&self, rec: Record) -> Result<(), Record> {
        let mut spins = 0;
        loop {
            match self.shared.buf.try_lock() {
                Ok(mut q) => {
                    if q.len() < self.shared.cap {
                        q.push_back(rec);
                        drop(q);
                        self.shared.recorded.fetch_add(1, Ordering::Relaxed);
                        return Ok(());
                    }
                    // Full: only the writer's own drain cadence frees
                    // space, far beyond what a spin can wait out.
                    return Err(rec);
                }
                Err(_) if spins < PUSH_SPINS => {
                    spins += 1;
                    std::hint::spin_loop();
                }
                Err(_) => return Err(rec),
            }
        }
    }

    /// Offers one record. Returns `true` if it was accepted. A full
    /// ring drops the record immediately; a contended lock is retried
    /// for at most [`PUSH_SPINS`] spin hints (the consumer holds it
    /// only for a pointer swap) before the record is likewise dropped.
    /// Every drop is counted in [`dropped`]. This never blocks and
    /// never allocates beyond the deque's growth toward its fixed
    /// capacity.
    ///
    /// [`dropped`]: RingProducer::dropped
    pub fn push(&self, rec: Record) -> bool {
        if self.offer(rec).is_ok() {
            return true;
        }
        self.shared.dropped.fetch_add(1, Ordering::Relaxed);
        false
    }

    /// Offers one record that the caller cannot afford to shed (crash
    /// recovery's admission / snapshot anchors and final verdicts).
    /// Retries [`push`](RingProducer::push)'s bounded attempt across up
    /// to [`INSIST_YIELDS`] scheduler yields, so a writer descheduled
    /// while holding the lock no longer forces a drop. Bounded and
    /// lock-free like `push`, but willing to spend scheduler quanta —
    /// keep it off the per-frame data path.
    pub fn push_insist(&self, rec: Record) -> bool {
        let mut rec = rec;
        for _ in 0..INSIST_YIELDS {
            match self.offer(rec) {
                Ok(()) => return true,
                Err(back) => rec = back,
            }
            std::thread::yield_now();
        }
        if self.offer(rec).is_ok() {
            return true;
        }
        self.shared.dropped.fetch_add(1, Ordering::Relaxed);
        false
    }

    /// Events accepted into the ring so far.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.shared.recorded.load(Ordering::Relaxed)
    }

    /// Events dropped at the ring so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Signals the consumer that no further events will arrive.
    pub fn close(&self) {
        self.shared.closed.store(true, Ordering::Release);
    }

    /// Requests a flush barrier: returns a token that
    /// [`sync_done`](RingProducer::sync_done) reports once every record
    /// pushed *before* this call has been drained, encoded, and flushed
    /// to disk by the writer. Used by crash recovery, which must read a
    /// shard's file while the writer is still alive. Never blocks.
    pub fn request_sync(&self) -> u64 {
        self.shared.sync_req.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// True once the writer has flushed through barrier `token`.
    #[must_use]
    pub fn sync_done(&self, token: u64) -> bool {
        self.shared.sync_ack.load(Ordering::Acquire) >= token
    }
}

impl RingConsumer {
    /// Moves every buffered record into `out`. The lock is held for
    /// exactly one pointer swap — O(1) no matter how many records are
    /// pending, so a racing producer's bounded `try_lock` spin wins. A
    /// poisoned lock (a panicked producer mid-push, which cannot
    /// happen — push performs no fallible work under the lock)
    /// degrades to draining whatever is there.
    pub fn drain(&mut self, out: &mut Vec<Record>) {
        {
            let mut q = self
                .shared
                .buf
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            std::mem::swap(&mut *q, &mut self.scratch);
        }
        out.extend(self.scratch.drain(..));
    }

    /// True once the producer closed the ring; buffered records may
    /// still need a final [`drain`](RingConsumer::drain).
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }

    /// The latest outstanding flush-barrier token, or `None` when every
    /// request has been acknowledged. The writer samples this *before*
    /// draining, so every record that preceded the request is in hand
    /// when it acknowledges.
    #[must_use]
    pub fn pending_sync(&self) -> Option<u64> {
        let req = self.shared.sync_req.load(Ordering::Acquire);
        (req > self.shared.sync_ack.load(Ordering::Acquire)).then_some(req)
    }

    /// Acknowledges flush barrier `token` (after flushing to disk).
    pub fn ack_sync(&self, token: u64) {
        self.shared.sync_ack.fetch_max(token, Ordering::AcqRel);
    }

    /// Counter snapshot `(recorded, dropped)`.
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        (
            self.shared.recorded.load(Ordering::Relaxed),
            self.shared.dropped.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{Event, RecStats};

    fn ev(session: u32) -> Record {
        Record::Event(Event::DeadlineMiss {
            at_micros: 1,
            session,
            due_tick: 2,
        })
    }

    #[test]
    fn push_then_drain_preserves_order() {
        let (tx, mut rx) = ring(8);
        for i in 0..5 {
            assert!(tx.push(ev(i)));
        }
        let mut out = Vec::new();
        rx.drain(&mut out);
        let ids: Vec<u32> = out
            .iter()
            .map(|r| match r {
                Record::Event(Event::DeadlineMiss { session, .. }) => *session,
                _ => u32::MAX,
            })
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(tx.recorded(), 5);
        assert_eq!(tx.dropped(), 0);
    }

    #[test]
    fn full_ring_drops_newest_and_counts() {
        let (tx, mut rx) = ring(2);
        assert!(tx.push(ev(0)));
        assert!(tx.push(ev(1)));
        assert!(!tx.push(ev(2)));
        assert!(!tx.push(ev(3)));
        assert_eq!(tx.recorded(), 2);
        assert_eq!(tx.dropped(), 2);
        let mut out = Vec::new();
        rx.drain(&mut out);
        assert_eq!(out.len(), 2);
        // Room again after the drain.
        assert!(tx.push(Record::Stats(RecStats::default())));
    }

    #[test]
    fn contended_lock_drops_instead_of_blocking() {
        let (tx, rx) = ring(64);
        // Hold the consumer side of the lock across a push: the producer
        // must give up after its bounded spins, not wait indefinitely.
        let guard = rx.shared.buf.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(!tx.push(ev(0)));
        drop(guard);
        assert_eq!(tx.dropped(), 1);
        assert!(tx.push(ev(1)));
    }

    #[test]
    fn sync_barrier_handshake_round_trips() {
        let (tx, rx) = ring(4);
        assert_eq!(rx.pending_sync(), None);
        let t1 = tx.request_sync();
        assert_eq!(t1, 1);
        assert!(!tx.sync_done(t1));
        assert_eq!(rx.pending_sync(), Some(1));
        rx.ack_sync(t1);
        assert!(tx.sync_done(t1));
        assert_eq!(rx.pending_sync(), None);
        // A second request issues a fresh, higher token.
        let t2 = tx.request_sync();
        assert_eq!(t2, 2);
        assert!(!tx.sync_done(t2));
        // A stale (smaller) ack never regresses the barrier.
        rx.ack_sync(t1);
        assert!(!tx.sync_done(t2));
        rx.ack_sync(t2);
        assert!(tx.sync_done(t2));
    }

    #[test]
    fn close_is_visible_to_the_consumer() {
        let (tx, mut rx) = ring(4);
        assert!(!rx.is_closed());
        tx.push(ev(9));
        tx.close();
        assert!(rx.is_closed());
        let mut out = Vec::new();
        rx.drain(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(rx.counters(), (1, 0));
    }
}
