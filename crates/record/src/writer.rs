//! The per-shard writer thread and the handle set a server owns.
//!
//! One [`ShardRecorder`] per shard goes to the data path; one writer
//! thread per shard drains that shard's ring to `shard-NN.rec`. The
//! writer paces itself with `thread::park_timeout` (a bounded nap, not
//! a sleep in the pacer's sense — this thread owns no deadline) and is
//! joined by [`RecorderSet::finish`], which also writes each file's
//! [`RecStats`] trailer from the ring counters.

use crate::format::{encode_record, write_header, RecStats, Record, RecordError, RunMeta};
use crate::ring::{ring, RingConsumer, RingProducer};
use std::fs::{self, File};
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Default ring capacity per shard, in records. Sized so a writer that
/// drains every millisecond keeps up with hundreds of thousands of
/// events per second with two orders of magnitude of headroom.
pub const DEFAULT_RING_CAP: usize = 65_536;

/// How long the writer naps when its ring was empty.
const DRAIN_NAP: Duration = Duration::from_millis(1);

/// File name of one shard's recording.
#[must_use]
pub fn shard_file_name(shard: u32) -> String {
    format!("shard-{shard:02}.rec")
}

/// The data-path handle a shard records through. Cloneable and
/// strictly nonblocking: the fast path is one `try_lock`, retried for
/// a bounded number of spins under contention before shedding.
#[derive(Clone)]
pub struct ShardRecorder {
    producer: RingProducer,
}

impl ShardRecorder {
    /// Offers one event; a saturated recorder drops it (counted).
    pub fn record(&self, ev: crate::format::Event) {
        self.producer.push(Record::Event(ev));
    }

    /// Offers one event crash recovery cannot do without — admission
    /// and snapshot anchors, final verdicts. A contended ring is
    /// retried across a bounded number of scheduler yields instead of
    /// shedding at the first busy lock, so a momentarily descheduled
    /// writer thread no longer costs a session its recovery anchor.
    /// Reserved for the admit / teardown paths; the per-frame loop
    /// stays on [`record`](ShardRecorder::record).
    pub fn record_durable(&self, ev: crate::format::Event) {
        self.producer.push_insist(Record::Event(ev));
    }

    /// Events accepted so far.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.producer.recorded()
    }

    /// Events dropped so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.producer.dropped()
    }

    /// Offers a mid-file [`RecStats`] checkpoint (crash recovery writes
    /// one before re-reading a live shard's file, so readers can tell
    /// the checkpoint from the trailer by keeping the last stats record
    /// per epoch). Recovery depends on the checkpoint, so a contended
    /// ring is ridden out with the same bounded yields as
    /// [`record_durable`](ShardRecorder::record_durable).
    pub fn push_stats(&self, stats: RecStats) {
        self.producer.push_insist(Record::Stats(stats));
    }

    /// Blocks the *caller* (never the data path — this is for the
    /// recovery orchestrator) until every record pushed before this call
    /// has been flushed to disk, or `timeout` elapses. Returns whether
    /// the barrier completed.
    pub fn flush_barrier(&self, timeout: Duration) -> bool {
        let token = self.producer.request_sync();
        let deadline = Instant::now() + timeout;
        while !self.producer.sync_done(token) {
            if Instant::now() >= deadline {
                return false;
            }
            thread::park_timeout(Duration::from_micros(200));
        }
        true
    }
}

struct Worker {
    producer: RingProducer,
    handle: JoinHandle<Result<(), RecordError>>,
}

/// Owns every writer thread of one recorded run.
pub struct RecorderSet {
    workers: Vec<Worker>,
    /// Directory the recording lives in.
    pub dir: PathBuf,
}

/// Aggregate ring counters after a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecorderTotals {
    /// Events written across all shards.
    pub recorded: u64,
    /// Events dropped across all shards.
    pub dropped: u64,
}

fn io_err(what: &str, path: &Path, e: &std::io::Error) -> RecordError {
    RecordError::Io {
        what: format!("{what} {}: {e}", path.display()),
    }
}

impl RecorderSet {
    /// Creates `shards` recordings under `dir` (created if missing):
    /// one file, ring, and writer thread each. `meta_of` supplies the
    /// per-shard [`RunMeta`] written at the head of each file.
    ///
    /// # Errors
    ///
    /// [`RecordError::Io`] if the directory or a file cannot be
    /// created, or a writer thread cannot be spawned.
    pub fn create(
        dir: &Path,
        shards: usize,
        meta_of: impl Fn(u32) -> RunMeta,
    ) -> Result<(RecorderSet, Vec<ShardRecorder>), RecordError> {
        fs::create_dir_all(dir).map_err(|e| io_err("create dir", dir, &e))?;
        let mut workers = Vec::with_capacity(shards);
        let mut recorders = Vec::with_capacity(shards);
        for shard in 0..shards {
            let shard_u32 = u32::try_from(shard).unwrap_or(u32::MAX);
            let path = dir.join(shard_file_name(shard_u32));
            let file = File::create(&path).map_err(|e| io_err("create", &path, &e))?;
            let mut head = Vec::with_capacity(64);
            write_header(&mut head);
            encode_record(&Record::Meta(meta_of(shard_u32)), &mut head);
            let mut out = BufWriter::new(file);
            out.write_all(&head)
                .map_err(|e| io_err("write", &path, &e))?;
            let (producer, consumer) = ring(DEFAULT_RING_CAP);
            let handle = thread::Builder::new()
                .name(format!("rstp-record-{shard}"))
                .spawn(move || drain_loop(consumer, out, &path))
                .map_err(|e| RecordError::Io {
                    what: format!("spawn recorder {shard}: {e}"),
                })?;
            recorders.push(ShardRecorder {
                producer: producer.clone(),
            });
            workers.push(Worker { producer, handle });
        }
        Ok((
            RecorderSet {
                workers,
                dir: dir.to_path_buf(),
            },
            recorders,
        ))
    }

    /// A fresh data-path handle for `shard`, sharing the shard's ring
    /// and file. Crash recovery hands this to a restarted shard thread
    /// so its new epoch appends to the same recording.
    #[must_use]
    pub fn recorder(&self, shard: usize) -> Option<ShardRecorder> {
        self.workers.get(shard).map(|w| ShardRecorder {
            producer: w.producer.clone(),
        })
    }

    /// Closes every ring, joins every writer, and returns the aggregate
    /// counters. Each file ends with its [`RecStats`] trailer.
    ///
    /// # Errors
    ///
    /// The first writer I/O failure, if any.
    pub fn finish(self) -> Result<RecorderTotals, RecordError> {
        let mut totals = RecorderTotals::default();
        let mut first_err = None;
        for w in self.workers {
            w.producer.close();
            totals.recorded += w.producer.recorded();
            totals.dropped += w.producer.dropped();
            match w.handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => first_err = first_err.or(Some(e)),
                Err(_) => {
                    first_err = first_err.or(Some(RecordError::Io {
                        what: "recorder writer thread panicked".into(),
                    }));
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(totals),
        }
    }
}

fn drain_loop(
    mut consumer: RingConsumer,
    mut out: BufWriter<File>,
    path: &Path,
) -> Result<(), RecordError> {
    let mut pending: Vec<Record> = Vec::with_capacity(1024);
    let mut bytes: Vec<u8> = Vec::with_capacity(64 * 1024);
    loop {
        let closing = consumer.is_closed();
        // Sample the flush barrier *before* draining: every record that
        // preceded the request is then guaranteed to be in this drain,
        // so acknowledging after the write covers them all.
        let sync = consumer.pending_sync();
        pending.clear();
        consumer.drain(&mut pending);
        if !pending.is_empty() {
            bytes.clear();
            for rec in &pending {
                encode_record(rec, &mut bytes);
            }
            out.write_all(&bytes)
                .map_err(|e| io_err("write", path, &e))?;
        }
        if let Some(token) = sync {
            out.flush().map_err(|e| io_err("flush", path, &e))?;
            consumer.ack_sync(token);
        }
        if closing {
            // One final drain happened above (close-then-drain order);
            // now seal the file with the counter trailer.
            let (recorded, dropped) = consumer.counters();
            bytes.clear();
            encode_record(
                &Record::Stats(RecStats {
                    recorded,
                    dropped,
                    epoch: 0,
                }),
                &mut bytes,
            );
            out.write_all(&bytes)
                .map_err(|e| io_err("write", path, &e))?;
            out.flush().map_err(|e| io_err("flush", path, &e))?;
            return Ok(());
        }
        if pending.is_empty() {
            thread::park_timeout(DRAIN_NAP);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::Event;
    use crate::reader::Recording;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("rstp-record-{tag}-{}-{n}", std::process::id()))
    }

    fn meta(shard: u32) -> RunMeta {
        RunMeta {
            shard,
            c1: 1,
            c2: 2,
            d: 8,
            tick_micros: 200,
            seed: Some(1),
        }
    }

    #[test]
    fn writes_one_parseable_file_per_shard() {
        let dir = temp_dir("set");
        let (set, recorders) = RecorderSet::create(&dir, 2, meta).unwrap();
        for (i, rec) in recorders.iter().enumerate() {
            for s in 0..10u32 {
                rec.record(Event::WheelPop {
                    at_micros: u64::from(s),
                    session: s + 1,
                    due_tick: u64::from(s),
                    late: false,
                });
            }
            assert_eq!(rec.recorded(), 10, "shard {i}");
            assert_eq!(rec.dropped(), 0);
        }
        let totals = set.finish().unwrap();
        assert_eq!(
            totals,
            RecorderTotals {
                recorded: 20,
                dropped: 0
            }
        );
        for shard in 0..2u32 {
            let path = dir.join(shard_file_name(shard));
            let recording = Recording::load(&path).unwrap();
            assert_eq!(recording.meta, Some(meta(shard)));
            assert_eq!(recording.events.len(), 10);
            assert_eq!(
                recording.stats,
                Some(RecStats {
                    recorded: 10,
                    dropped: 0,
                    epoch: 0
                })
            );
            assert!(!recording.truncated);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn finish_without_events_still_seals_headers_and_trailers() {
        let dir = temp_dir("empty");
        let (set, _recorders) = RecorderSet::create(&dir, 1, meta).unwrap();
        set.finish().unwrap();
        let recording = Recording::load(&dir.join(shard_file_name(0))).unwrap();
        assert!(recording.events.is_empty());
        assert_eq!(recording.stats, Some(RecStats::default()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_barrier_makes_a_live_file_readable_mid_run() {
        let dir = temp_dir("barrier");
        let (set, recorders) = RecorderSet::create(&dir, 1, meta).unwrap();
        let rec = &recorders[0];
        for s in 0..5u32 {
            rec.record(Event::DeadlineMiss {
                at_micros: u64::from(s),
                session: s + 1,
                due_tick: 9,
            });
        }
        // The crash-recovery sequence: checkpoint stats, then barrier,
        // then read the file back while the writer thread is still live.
        rec.push_stats(RecStats {
            recorded: rec.recorded(),
            dropped: rec.dropped(),
            epoch: 0,
        });
        assert!(rec.flush_barrier(Duration::from_secs(5)));
        let live = Recording::load(&dir.join(shard_file_name(0))).unwrap();
        assert_eq!(live.events.len(), 5);
        assert_eq!(live.stats.map(|s| s.recorded), Some(5));
        assert!(!live.truncated);
        // The run then continues and seals normally.
        rec.record(Event::DeadlineMiss {
            at_micros: 6,
            session: 9,
            due_tick: 9,
        });
        set.finish().unwrap();
        let sealed = Recording::load(&dir.join(shard_file_name(0))).unwrap();
        assert_eq!(sealed.events.len(), 6);
        assert_eq!(sealed.stats.map(|s| s.recorded), Some(7));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_in_unwritable_location_reports_io() {
        let err = RecorderSet::create(Path::new("/proc/rstp-no-such/rec"), 1, meta)
            .err()
            .expect("must fail");
        assert!(matches!(err, RecordError::Io { .. }), "{err}");
    }
}
