//! Postmortem reader for one shard recording.
//!
//! Parsing is strict about structure (magic, version, record bodies)
//! but tolerant of a short tail: a flight recorder stops when its
//! process does, possibly mid-record, and the run's prefix is exactly
//! what a postmortem needs. A truncated tail sets
//! [`Recording::truncated`] instead of failing the load.

use crate::format::{decode_record, read_header, Event, RecStats, Record, RecordError, RunMeta};
use std::fs;
use std::path::Path;

/// One fully parsed shard file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Recording {
    /// The leading [`RunMeta`], when present.
    pub meta: Option<RunMeta>,
    /// Every event, in file (i.e. ring-arrival) order.
    pub events: Vec<Event>,
    /// The last [`RecStats`] seen (the trailer, when the file was
    /// sealed; the latest checkpoint otherwise).
    pub stats: Option<RecStats>,
    /// Every [`RecStats`] record, in file order. A file holds more than
    /// one when a checkpoint was written before a shard restart;
    /// consumers dedupe by epoch (see `SessionIndex`).
    pub stats_records: Vec<RecStats>,
    /// True when the file ended mid-record (an unsealed recording).
    pub truncated: bool,
}

impl Recording {
    /// Parses a recording from raw bytes.
    ///
    /// # Errors
    ///
    /// [`RecordError`] for a bad header or a structurally invalid
    /// record; a clean truncation mid-stream is *not* an error.
    pub fn parse(bytes: &[u8]) -> Result<Recording, RecordError> {
        let mut pos = read_header(bytes)?;
        let mut out = Recording::default();
        while pos < bytes.len() {
            let Some(rest) = bytes.get(pos..) else { break };
            match decode_record(rest) {
                Ok((rec, used)) => {
                    pos += used;
                    match rec {
                        Record::Meta(m) => out.meta = out.meta.or(Some(m)),
                        Record::Event(ev) => out.events.push(ev),
                        Record::Stats(s) => {
                            out.stats = Some(s);
                            out.stats_records.push(s);
                        }
                    }
                }
                Err(RecordError::Truncated { .. }) => {
                    out.truncated = true;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Loads and parses one shard file.
    ///
    /// # Errors
    ///
    /// [`RecordError::Io`] for filesystem failure, otherwise as
    /// [`Recording::parse`].
    pub fn load(path: &Path) -> Result<Recording, RecordError> {
        let bytes = fs::read(path).map_err(|e| RecordError::Io {
            what: format!("read {}: {e}", path.display()),
        })?;
        Recording::parse(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{encode_record, write_header, RECORD_MAGIC, RECORD_VERSION};

    fn sample_bytes() -> Vec<u8> {
        let mut buf = Vec::new();
        write_header(&mut buf);
        encode_record(
            &Record::Meta(RunMeta {
                shard: 0,
                c1: 1,
                c2: 2,
                d: 8,
                tick_micros: 200,
                seed: None,
            }),
            &mut buf,
        );
        encode_record(
            &Record::Event(Event::WheelPop {
                at_micros: 10,
                session: 1,
                due_tick: 5,
                late: false,
            }),
            &mut buf,
        );
        encode_record(
            &Record::Stats(RecStats {
                recorded: 1,
                dropped: 0,
                epoch: 0,
            }),
            &mut buf,
        );
        buf
    }

    #[test]
    fn sealed_file_parses_completely() {
        let rec = Recording::parse(&sample_bytes()).unwrap();
        assert!(rec.meta.is_some());
        assert_eq!(rec.events.len(), 1);
        assert_eq!(rec.stats.map(|s| s.recorded), Some(1));
        assert_eq!(rec.stats_records.len(), 1);
        assert!(!rec.truncated);
    }

    #[test]
    fn every_stats_record_is_kept_in_file_order() {
        let mut buf = sample_bytes();
        // Append a second stats record — the shape of a checkpoint
        // followed by a (second-epoch) trailer.
        encode_record(
            &Record::Stats(RecStats {
                recorded: 9,
                dropped: 4,
                epoch: 1,
            }),
            &mut buf,
        );
        let rec = Recording::parse(&buf).unwrap();
        assert_eq!(rec.stats_records.len(), 2);
        assert_eq!(rec.stats_records[0].epoch, 0);
        assert_eq!(rec.stats_records[1].epoch, 1);
        // `stats` keeps the last, as before.
        assert_eq!(rec.stats.map(|s| s.dropped), Some(4));
    }

    #[test]
    fn truncated_tail_is_flagged_not_fatal() {
        let buf = sample_bytes();
        // Cut into the final record: everything before it still parses.
        let rec = Recording::parse(&buf[..buf.len() - 3]).unwrap();
        assert_eq!(rec.events.len(), 1);
        assert_eq!(rec.stats, None);
        assert!(rec.truncated);
    }

    #[test]
    fn bad_header_and_bad_records_are_fatal() {
        assert_eq!(
            Recording::parse(b"nope"),
            Err(RecordError::Truncated { need: 9, got: 4 })
        );
        let mut wrong = sample_bytes();
        wrong[0] ^= 0x01;
        assert_eq!(Recording::parse(&wrong), Err(RecordError::BadMagic));
        let mut future = RECORD_MAGIC.to_vec();
        future.push(RECORD_VERSION + 7);
        assert_eq!(
            Recording::parse(&future),
            Err(RecordError::FutureVersion {
                got: RECORD_VERSION + 7
            })
        );
        let mut junk_kind = sample_bytes();
        junk_kind[13] = 0x77; // first record's kind byte (after 9-byte header + 4-byte len)
        assert!(matches!(
            Recording::parse(&junk_kind),
            Err(RecordError::UnknownKind { got: 0x77 })
        ));
    }

    #[test]
    fn load_missing_file_is_io() {
        let err = Recording::load(Path::new("/no/such/rstp.rec")).unwrap_err();
        assert!(matches!(err, RecordError::Io { .. }), "{err}");
    }
}
