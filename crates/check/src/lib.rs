//! # rstp-check — coverage-guided adversarial schedule fuzzing
//!
//! The paper's correctness claims are universally quantified over *legal
//! adversaries*: every step schedule with gaps in `[c1, c2]` and every
//! delivery order within the `d`-window must yield a good trace and respect
//! the §4/§6 effort bounds. This crate searches that space instead of
//! sampling it blindly:
//!
//! 1. [`scenario`] generates and mutates *legal-by-construction* scenarios —
//!    scripted step gaps, per-packet delivery fates (delay / drop /
//!    duplicate), and an input word.
//! 2. [`oracle`] runs a scenario through `rstp-sim` and checks every
//!    invariant we know: `good(A)` trace properties, termination, exact
//!    output, the closed-form effort bounds, formal replay through the
//!    composed automaton, and (periodically) a wall-clock differential
//!    against `rstp-net`'s `MemTransport` driven by the *same* delivery
//!    script.
//! 3. [`coverage`] turns each trace into structural coverage keys
//!    (channel-occupancy profile, delivery-reorder depth, deadline-slack
//!    histogram) so the [`engine`] can favor mutating scenarios that reached
//!    novel behavior.
//! 4. [`shrink`] delta-debugs any failing scenario down to a minimal repro,
//!    and [`corpus`] serializes it as a replayable text trace that is
//!    committed under `tests/corpus/` and re-run as a cargo test.
//! 5. [`bridge`] lifts a session out of an `rstp-record` flight recording
//!    back into scenario form, so a swarm failure replays deterministically
//!    through the same oracles and shrinker — the engine behind
//!    `rstp replay`.
//!
//! Everything is deterministic: the same seed produces the same coverage
//! counters, the same pool, and the same failures, run after run.
//!
//! ```
//! use rstp_check::engine::{fuzz, FuzzConfig};
//! use rstp_core::TimingParams;
//! use rstp_sim::ProtocolKind;
//!
//! let params = TimingParams::from_ticks(1, 2, 6).unwrap();
//! let mut cfg = FuzzConfig::new(ProtocolKind::Gamma { k: 4 }, params);
//! cfg.iters = 40;
//! let report = fuzz(&cfg);
//! assert!(report.failures.is_empty());
//! assert!(report.coverage.total > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bridge;
pub mod corpus;
pub mod coverage;
pub mod engine;
pub mod oracle;
pub mod scenario;
pub mod shrink;

pub use bridge::{
    ack_loss_failure, acked_prefix, bridge_session, replay_session, scenario_from_history,
    shrink_ack_loss, shrink_from_recording, BridgeError, BridgedSession, ReplayReport,
    REPLAY_MAX_EVENTS,
};
pub use corpus::{parse_repro, render_repro, Expectation, Repro, ReproError};
pub use coverage::{coverage_keys, Coverage, CoverageStats};
pub use engine::{fuzz, FoundFailure, FuzzConfig, FuzzReport};
pub use oracle::{run_scenario, Failure, FailureKind, ScenarioRun};
pub use scenario::Scenario;
pub use shrink::shrink;
