//! Structural coverage signals extracted from simulated traces.
//!
//! Random legal schedules overwhelmingly produce the same few behaviors
//! (everything FIFO, channel nearly empty). The fuzzer instead scores each
//! run by the *structure* it exercised and keeps scenarios that reached
//! anything new:
//!
//! - **occupancy** — for every event, how many packets were in flight per
//!   direction, paired with the action kind (a proxy for the joint
//!   protocol-state × channel-occupancy pair);
//! - **reorder** — how far each delivery strayed from FIFO order within its
//!   direction (the `d`-window's permutation depth);
//! - **slack** — histogram of `d − (recv − send)`: how close deliveries ran
//!   to their deadline;
//! - **outcome** — run shape: quiescence flag and log-scale trace length.
//!
//! Keys are plain `u64`s with the family tag in the top byte, stored in a
//! `BTreeSet` so counters are deterministic and order-independent.

use std::collections::{BTreeSet, VecDeque};

use rstp_core::{InternalKind, Packet, RstpAction, TimingParams};
use rstp_sim::{Outcome, SimTrace};

const FAM_OCCUPANCY: u64 = 1 << 56;
const FAM_REORDER: u64 = 2 << 56;
const FAM_SLACK: u64 = 3 << 56;
const FAM_OUTCOME: u64 = 4 << 56;

/// Accumulated coverage across a whole fuzzing campaign.
#[derive(Clone, Debug, Default)]
pub struct Coverage {
    seen: BTreeSet<u64>,
}

impl Coverage {
    /// Merges one run's keys; returns how many were new.
    pub fn absorb(&mut self, keys: &BTreeSet<u64>) -> usize {
        let before = self.seen.len();
        self.seen.extend(keys.iter().copied());
        self.seen.len() - before
    }

    /// Per-family counters over everything absorbed so far.
    #[must_use]
    pub fn stats(&self) -> CoverageStats {
        let count = |family: u64| self.seen.range(family..family + (1 << 56)).count() as u64;
        CoverageStats {
            total: self.seen.len() as u64,
            occupancy: count(FAM_OCCUPANCY),
            reorder: count(FAM_REORDER),
            slack: count(FAM_SLACK),
            outcome: count(FAM_OUTCOME),
        }
    }
}

/// Deterministic per-family coverage counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoverageStats {
    /// Total distinct keys.
    pub total: u64,
    /// Distinct (action, in-flight count) pairs.
    pub occupancy: u64,
    /// Distinct delivery-reorder depths.
    pub reorder: u64,
    /// Distinct deadline-slack buckets.
    pub slack: u64,
    /// Distinct run shapes.
    pub outcome: u64,
}

impl std::fmt::Display for CoverageStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} keys (occupancy {}, reorder {}, slack {}, outcome {})",
            self.total, self.occupancy, self.reorder, self.slack, self.outcome
        )
    }
}

/// Tracks the unmatched sends of one channel direction so each delivery can
/// be paired with its send by symbol.
#[derive(Default)]
struct Direction {
    outstanding: VecDeque<(u64, u64)>,
}

impl Direction {
    fn send(&mut self, symbol: u64, time: u64) {
        self.outstanding.push_back((symbol, time));
    }

    /// Matches a delivery to the oldest outstanding send of the same
    /// symbol. Returns `(reorder depth, send time)`; `None` for an
    /// unmatched delivery (an injected duplicate).
    fn recv(&mut self, symbol: u64) -> Option<(u64, u64)> {
        let pos = self.outstanding.iter().position(|&(s, _)| s == symbol)?;
        let (_, sent_at) = self.outstanding.remove(pos).expect("position is in range");
        Some((pos as u64, sent_at))
    }
}

fn action_tag(action: &RstpAction) -> u64 {
    match action {
        RstpAction::Send(Packet::Data(_)) => 0,
        RstpAction::Send(Packet::Ack(_)) => 1,
        RstpAction::Recv(Packet::Data(_)) => 2,
        RstpAction::Recv(Packet::Ack(_)) => 3,
        RstpAction::Write(_) => 4,
        RstpAction::TransmitterInternal(InternalKind::Wait) => 5,
        RstpAction::TransmitterInternal(InternalKind::Idle) => 6,
        RstpAction::ReceiverInternal(InternalKind::Wait) => 7,
        RstpAction::ReceiverInternal(InternalKind::Idle) => 8,
    }
}

fn log2_bucket(n: u64) -> u64 {
    64 - n.leading_zeros() as u64
}

/// Extracts the coverage key set of one run.
#[must_use]
pub fn coverage_keys(trace: &SimTrace, params: TimingParams, outcome: Outcome) -> BTreeSet<u64> {
    let d = params.d().ticks();
    let mut keys = BTreeSet::new();
    let mut dirs = [Direction::default(), Direction::default()];
    let mut data_sends = 0u64;

    for event in trace.events() {
        let time = event.time.ticks();
        let tag = action_tag(&event.action);
        match &event.action {
            RstpAction::Send(packet) => {
                let dir = usize::from(packet.is_ack());
                dirs[dir].send(packet.symbol(), time);
                data_sends += u64::from(packet.is_data());
            }
            RstpAction::Recv(packet) => {
                let dir = usize::from(packet.is_ack());
                if let Some((depth, sent_at)) = dirs[dir].recv(packet.symbol()) {
                    let dir = (dir as u64) << 16;
                    keys.insert(FAM_REORDER | dir | depth.min(31));
                    let slack = d.saturating_sub(time.saturating_sub(sent_at));
                    keys.insert(FAM_SLACK | dir | slack.min(31));
                }
            }
            _ => {}
        }
        let in_flight = (dirs[0].outstanding.len() + dirs[1].outstanding.len()) as u64;
        keys.insert(FAM_OCCUPANCY | (tag << 16) | in_flight.min(63));
    }

    keys.insert(FAM_OUTCOME | u64::from(outcome == Outcome::Quiescent));
    keys.insert(FAM_OUTCOME | 0x100 | log2_bucket(trace.events().len() as u64));
    keys.insert(FAM_OUTCOME | 0x200 | log2_bucket(data_sends));
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstp_core::TimingParams;
    use rstp_sim::adversary::{DeliveryPolicy, StepPolicy};
    use rstp_sim::harness::{run_configured, ProtocolKind, RunConfig};

    fn keys_for(delivery: DeliveryPolicy) -> BTreeSet<u64> {
        let params = TimingParams::from_ticks(1, 2, 6).unwrap();
        let out = run_configured(
            &RunConfig {
                kind: ProtocolKind::Gamma { k: 4 },
                params,
                step: StepPolicy::AllSlow,
                delivery,
                ..RunConfig::default()
            },
            &[true, false, true, true, false, false, true, false],
        )
        .unwrap();
        coverage_keys(&out.trace, params, Outcome::Quiescent)
    }

    #[test]
    fn reordering_adversaries_reach_more_reorder_coverage() {
        let fifo = keys_for(DeliveryPolicy::MaxDelay);
        let reversed = keys_for(DeliveryPolicy::ReverseBurst { burst: 3 });
        let depth = |keys: &BTreeSet<u64>| keys.range(FAM_REORDER..FAM_REORDER + (1 << 56)).count();
        assert!(
            depth(&reversed) > depth(&fifo),
            "reverse-burst must exercise deeper reordering than FIFO ({} vs {})",
            depth(&reversed),
            depth(&fifo)
        );
    }

    #[test]
    fn absorb_counts_only_novel_keys() {
        let keys = keys_for(DeliveryPolicy::MaxDelay);
        let mut cov = Coverage::default();
        let fresh = cov.absorb(&keys);
        assert_eq!(fresh, keys.len());
        assert_eq!(cov.absorb(&keys), 0);
        let stats = cov.stats();
        assert_eq!(
            stats.total,
            stats.occupancy + stats.reorder + stats.slack + stats.outcome
        );
        assert!(stats.occupancy > 0 && stats.slack > 0 && stats.outcome > 0);
    }
}
