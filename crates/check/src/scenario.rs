//! Legal-by-construction adversarial scenarios.
//!
//! A [`Scenario`] is a complete, replayable description of one simulated
//! run: the protocol, the timing parameters, the input word, a scripted
//! step schedule for each process (gaps in `[c1, c2]`), and a scripted
//! per-packet fate plan for each channel direction (delays in `[0, d]`,
//! plus drop/duplicate for the fault-tolerant baselines). Generation and
//! mutation only ever produce values inside the legal ranges, so the
//! simulator's `AdversaryOutOfBounds` rejection is itself an oracle: if a
//! scenario trips it, the *generator* is broken, and the fuzzer reports it
//! as a model failure.

use rand::rngs::StdRng;
use rand::{Rng, RngCore};
use rstp_automata::TimeDelta;
use rstp_core::{Message, TimingParams};
use rstp_sim::{
    CorruptionSpec, PacketFate, ProtocolKind, ScriptedDelivery, ScriptedDeliveryAdversary,
    ScriptedSteps,
};

/// One fully scripted adversarial run: protocol, timing, input, step
/// schedule, and per-direction delivery plans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Protocol under test.
    pub kind: ProtocolKind,
    /// Timing parameters `(c1, c2, d)` the scripts are legal against.
    pub params: TimingParams,
    /// The input word `X`.
    pub input: Vec<Message>,
    /// Scripted transmitter step gaps (ticks, each in `[c1, c2]`).
    pub t_gaps: Vec<u64>,
    /// Scripted receiver step gaps (ticks, each in `[c1, c2]`).
    pub r_gaps: Vec<u64>,
    /// Gap used once either script runs out (in `[c1, c2]`).
    pub gap_fallback: u64,
    /// Fate plan for data packets (transmitter → receiver).
    pub data: ScriptedDelivery,
    /// Fate plan for ack packets (receiver → transmitter).
    pub ack: ScriptedDelivery,
    /// Seeded mid-run state corruption — only ever `Some` for the
    /// self-stabilizing kinds, whose convergence the oracles then check.
    pub corruption: Option<CorruptionSpec>,
}

/// Whether the protocol tolerates injected loss and duplication, so the
/// generator may script faulty fates for it.
fn tolerates_faults(kind: ProtocolKind) -> bool {
    matches!(kind, ProtocolKind::Stenning { .. })
}

/// Whether the protocol recovers from arbitrary state corruption, so the
/// generator may script a mid-run corruption for it.
fn stabilizes(kind: ProtocolKind) -> bool {
    matches!(
        kind,
        ProtocolKind::StabStenning { .. } | ProtocolKind::StabBeta { .. }
    )
}

fn random_fate(rng: &mut StdRng, d: u64, faults: bool) -> PacketFate {
    if faults && rng.gen_bool(0.12) {
        return PacketFate::Drop;
    }
    if faults && rng.gen_bool(0.12) {
        return PacketFate::Duplicate(rng.gen_range(0..=d), rng.gen_range(0..=d));
    }
    PacketFate::Deliver(rng.gen_range(0..=d))
}

impl Scenario {
    /// Draws a fresh random scenario for `kind`. All scripted values are
    /// legal for `params`; faults are only scripted for protocols that
    /// tolerate them.
    pub fn generate(
        kind: ProtocolKind,
        params: TimingParams,
        rng: &mut StdRng,
        max_input: usize,
    ) -> Scenario {
        let c1 = params.c1().ticks();
        let c2 = params.c2().ticks();
        let d = params.d().ticks();
        let faults = tolerates_faults(kind);

        let n = rng.gen_range(1..=max_input.max(1));
        let input: Vec<Message> = (0..n).map(|_| rng.gen_bool(0.5)).collect();

        let t_len = rng.gen_range(0..=4 * n);
        let r_len = rng.gen_range(0..=4 * n);
        let t_gaps: Vec<u64> = (0..t_len).map(|_| rng.gen_range(c1..=c2)).collect();
        let r_gaps: Vec<u64> = (0..r_len).map(|_| rng.gen_range(c1..=c2)).collect();
        let gap_fallback = rng.gen_range(c1..=c2);

        let data_len = rng.gen_range(0..=6 * n);
        let ack_len = rng.gen_range(0..=6 * n);
        let data_fates: Vec<PacketFate> =
            (0..data_len).map(|_| random_fate(rng, d, faults)).collect();
        let ack_fates: Vec<PacketFate> =
            (0..ack_len).map(|_| random_fate(rng, d, faults)).collect();

        let corruption = if stabilizes(kind) && rng.gen_bool(0.7) {
            Some(CorruptionSpec {
                at_event: rng.gen_range(0..=(20 * n as u64)),
                seed: rng.next_u64(),
            })
        } else {
            None
        };

        Scenario {
            kind,
            params,
            input,
            t_gaps,
            r_gaps,
            gap_fallback,
            data: ScriptedDelivery::new(data_fates, rng.gen_range(0..=d)),
            ack: ScriptedDelivery::new(ack_fates, rng.gen_range(0..=d)),
            corruption,
        }
    }

    /// Produces a mutated copy: 1–3 small edits (input bits, gap entries,
    /// fates, fallbacks), each keeping the scenario legal.
    #[must_use]
    pub fn mutate(&self, rng: &mut StdRng) -> Scenario {
        let c1 = self.params.c1().ticks();
        let c2 = self.params.c2().ticks();
        let d = self.params.d().ticks();
        let faults = tolerates_faults(self.kind);
        let mut s = self.clone();
        let edits = rng.gen_range(1..=3u32);
        for _ in 0..edits {
            let arms = if stabilizes(self.kind) { 9u32 } else { 8u32 };
            match rng.gen_range(0..arms) {
                0 => {
                    let i = rng.gen_range(0..s.input.len());
                    s.input[i] = !s.input[i];
                }
                1 => {
                    if s.input.len() > 1 && rng.gen_bool(0.5) {
                        s.input.pop();
                    } else {
                        s.input.push(rng.gen_bool(0.5));
                    }
                }
                2 => mutate_script(&mut s.t_gaps, rng, |r| r.gen_range(c1..=c2)),
                3 => mutate_script(&mut s.r_gaps, rng, |r| r.gen_range(c1..=c2)),
                4 => s.gap_fallback = rng.gen_range(c1..=c2),
                5 => mutate_script(s.data.fates_mut(), rng, |r| random_fate(r, d, faults)),
                6 => mutate_script(s.ack.fates_mut(), rng, |r| random_fate(r, d, faults)),
                7 => {
                    if rng.gen_bool(0.5) {
                        s.data.set_fallback(rng.gen_range(0..=d));
                    } else {
                        s.ack.set_fallback(rng.gen_range(0..=d));
                    }
                }
                _ => {
                    // Corruption edit (stabilizing kinds only): move the
                    // strike point, reroll the seed, or toggle it off/on.
                    s.corruption = match (s.corruption, rng.gen_range(0..3u32)) {
                        (Some(c), 0) => Some(CorruptionSpec {
                            at_event: rng.gen_range(0..=(20 * s.input.len() as u64)),
                            ..c
                        }),
                        (Some(c), 1) => Some(CorruptionSpec {
                            seed: rng.next_u64(),
                            ..c
                        }),
                        (Some(_), _) => None,
                        (None, _) => Some(CorruptionSpec {
                            at_event: rng.gen_range(0..=(20 * s.input.len() as u64)),
                            seed: rng.next_u64(),
                        }),
                    };
                }
            }
        }
        s
    }

    /// The scripted step adversary for this scenario.
    #[must_use]
    pub fn step_adversary(&self) -> ScriptedSteps {
        let delta = |ticks: &[u64]| ticks.iter().copied().map(TimeDelta::from_ticks).collect();
        ScriptedSteps::new(
            delta(&self.t_gaps),
            delta(&self.r_gaps),
            TimeDelta::from_ticks(self.gap_fallback),
        )
    }

    /// The scripted per-direction delivery adversary for this scenario.
    #[must_use]
    pub fn delivery_adversary(&self) -> ScriptedDeliveryAdversary {
        ScriptedDeliveryAdversary::new(self.data.clone(), self.ack.clone())
    }

    /// `true` when neither fate plan scripts a drop or a duplication.
    #[must_use]
    pub fn is_fault_free(&self) -> bool {
        self.data.is_fault_free() && self.ack.is_fault_free()
    }

    /// Total number of scripted entries across all four scripts — the
    /// secondary size metric used by the shrinker.
    #[must_use]
    pub fn script_len(&self) -> usize {
        self.t_gaps.len() + self.r_gaps.len() + self.data.fates().len() + self.ack.fates().len()
    }
}

/// Mutates one script in place: tweak a random entry, push a fresh one, or
/// pop the tail.
fn mutate_script<T>(
    script: &mut Vec<T>,
    rng: &mut StdRng,
    mut fresh: impl FnMut(&mut StdRng) -> T,
) {
    if script.is_empty() {
        script.push(fresh(rng));
        return;
    }
    match rng.gen_range(0..3u32) {
        0 => {
            let i = rng.gen_range(0..script.len());
            script[i] = fresh(rng);
        }
        1 => script.push(fresh(rng)),
        _ => {
            script.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn params() -> TimingParams {
        TimingParams::from_ticks(1, 3, 7).unwrap()
    }

    #[test]
    fn generated_scenarios_are_legal() {
        let p = params();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let s = Scenario::generate(
                ProtocolKind::Stenning {
                    timeout_steps: None,
                },
                p,
                &mut rng,
                16,
            );
            assert!(!s.input.is_empty());
            for &g in s.t_gaps.iter().chain(&s.r_gaps) {
                assert!((1..=3).contains(&g));
            }
            assert!((1..=3).contains(&s.gap_fallback));
            assert!(s.data.max_delay() <= 7 && s.ack.max_delay() <= 7);
        }
    }

    #[test]
    fn faults_are_only_generated_for_tolerant_protocols() {
        let p = params();
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..100 {
            let s = Scenario::generate(ProtocolKind::Gamma { k: 4 }, p, &mut rng, 16);
            let s = s.mutate(&mut rng).mutate(&mut rng);
            assert!(s.is_fault_free());
        }
    }

    #[test]
    fn corruption_is_only_scripted_for_stabilizing_kinds() {
        let p = params();
        let mut rng = StdRng::seed_from_u64(13);
        let mut saw_corruption = false;
        for _ in 0..50 {
            let clean = Scenario::generate(ProtocolKind::Gamma { k: 4 }, p, &mut rng, 16);
            assert!(clean.mutate(&mut rng).corruption.is_none());
            let stab = Scenario::generate(
                ProtocolKind::StabStenning {
                    timeout_steps: None,
                },
                p,
                &mut rng,
                16,
            );
            saw_corruption |= stab.corruption.is_some();
            // Stabilizing scenarios stay fault-free: convergence oracles
            // assume every packet is delivered (possibly corrupted) once.
            assert!(stab.is_fault_free());
        }
        assert!(saw_corruption, "generator never scripted a corruption");
    }

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let p = params();
        let make = || {
            let mut rng = StdRng::seed_from_u64(99);
            let s = Scenario::generate(ProtocolKind::Beta { k: 4 }, p, &mut rng, 12);
            s.mutate(&mut rng)
        };
        assert_eq!(make(), make());
    }
}
