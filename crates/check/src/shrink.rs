//! Delta-debugging shrinker for failing scenarios.
//!
//! Given a scenario the oracle rejects, the shrinker greedily tries
//! structurally smaller candidates — truncating the input word, clearing or
//! halving the gap and fate scripts, normalizing gaps toward `c2` and
//! delays toward `d` — and keeps any candidate the caller confirms *still
//! fails the same way*. It iterates to a fixpoint or an attempt budget,
//! whichever comes first, and returns the smallest confirmed reproducer.

use rstp_sim::PacketFate;

use crate::scenario::Scenario;

/// Ordering key for candidates: fewer input bits beats fewer scripted
/// entries beats fewer trace events.
fn weight(s: &Scenario, events: u64) -> (usize, usize, u64) {
    (s.input.len(), s.script_len(), events)
}

/// Shrinks `origin` (which fails with `origin_events` trace events) using
/// `still_fails`, which re-runs a candidate and returns `Some(events)` iff
/// it fails with the *same* [`crate::FailureKind`]. At most `budget`
/// candidates are evaluated. Returns the minimal scenario found and its
/// event count.
pub fn shrink(
    origin: &Scenario,
    origin_events: u64,
    mut still_fails: impl FnMut(&Scenario) -> Option<u64>,
    budget: u32,
) -> (Scenario, u64) {
    let mut best = origin.clone();
    let mut best_events = origin_events;
    let mut attempts = 0u32;

    loop {
        let mut improved = false;
        for candidate in candidates(&best) {
            if attempts >= budget {
                return (best, best_events);
            }
            if candidate == best {
                continue;
            }
            attempts += 1;
            if let Some(events) = still_fails(&candidate) {
                if weight(&candidate, events) < weight(&best, best_events) {
                    best = candidate;
                    best_events = events;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            return (best, best_events);
        }
    }
}

/// Structurally smaller (or normalized) variants of `s`, most aggressive
/// first so a single confirmation skips many rounds.
fn candidates(s: &Scenario) -> Vec<Scenario> {
    let c2 = s.params.c2().ticks();
    let d = s.params.d().ticks();
    let mut out = Vec::new();

    // Input truncation: half, three-quarters, minus one.
    for keep in [
        s.input.len() / 2,
        (s.input.len() * 3) / 4,
        s.input.len().saturating_sub(1),
    ] {
        if keep >= 1 && keep < s.input.len() {
            let mut c = s.clone();
            c.input.truncate(keep);
            out.push(c);
        }
    }

    // Script reduction: clear, halve, drop the tail entry.
    let gap_edits: [fn(&mut Vec<u64>); 3] = [
        |v| v.clear(),
        |v| {
            let half = v.len() / 2;
            v.truncate(half);
        },
        |v| {
            v.pop();
        },
    ];
    for edit in gap_edits {
        for which in 0..2 {
            let mut c = s.clone();
            let script = if which == 0 {
                &mut c.t_gaps
            } else {
                &mut c.r_gaps
            };
            if script.is_empty() {
                continue;
            }
            edit(script);
            out.push(c);
        }
    }
    let fate_edits: [fn(&mut Vec<PacketFate>); 3] = [
        |v| v.clear(),
        |v| {
            let half = v.len() / 2;
            v.truncate(half);
        },
        |v| {
            v.pop();
        },
    ];
    for edit in fate_edits {
        for which in 0..2 {
            let mut c = s.clone();
            let plan = if which == 0 { &mut c.data } else { &mut c.ack };
            if plan.fates().is_empty() {
                continue;
            }
            edit(plan.fates_mut());
            out.push(c);
        }
    }

    // Corruption reduction: strike earlier (halve, decrement) so the
    // pre-fault prefix shrinks, or drop the fault entirely — kept only
    // when the failure does not need it. The seed never changes: the
    // schedule must replay byte-for-byte.
    if let Some(c) = s.corruption {
        for at_event in [c.at_event / 2, c.at_event.saturating_sub(1)] {
            if at_event != c.at_event {
                let mut cand = s.clone();
                cand.corruption = Some(rstp_sim::CorruptionSpec { at_event, ..c });
                out.push(cand);
            }
        }
        let mut cand = s.clone();
        cand.corruption = None;
        out.push(cand);
    }

    // Normalization toward the canonical worst case: gaps at c2, delays at
    // the deadline d. These do not reduce the weight on their own, so pair
    // each with a tail pop to stay strictly decreasing.
    if s.gap_fallback != c2 {
        let mut c = s.clone();
        c.gap_fallback = c2;
        shed_one_entry(&mut c);
        out.push(c);
    }
    if s.data.fallback() != d || s.ack.fallback() != d {
        let mut c = s.clone();
        c.data.set_fallback(d);
        c.ack.set_fallback(d);
        shed_one_entry(&mut c);
        out.push(c);
    }

    out
}

/// Drops one scripted entry from the longest script, so normalization
/// candidates still shrink the weight.
fn shed_one_entry(s: &mut Scenario) {
    let lens = [
        s.t_gaps.len(),
        s.r_gaps.len(),
        s.data.fates().len(),
        s.ack.fates().len(),
    ];
    let Some((which, _)) = lens.iter().enumerate().max_by_key(|&(_, &len)| len) else {
        return;
    };
    match which {
        0 => {
            s.t_gaps.pop();
        }
        1 => {
            s.r_gaps.pop();
        }
        2 => {
            s.data.fates_mut().pop();
        }
        _ => {
            s.ack.fates_mut().pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rstp_core::TimingParams;
    use rstp_sim::ProtocolKind;

    /// A synthetic failure predicate: "fails" whenever the input still
    /// contains at least 3 `true` bits. The shrinker should strip
    /// everything else away.
    #[test]
    fn shrinks_to_the_predicate_core() {
        let params = TimingParams::from_ticks(1, 2, 6).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let mut origin = Scenario::generate(ProtocolKind::Beta { k: 4 }, params, &mut rng, 20);
        origin.input = vec![true; 9];
        origin.t_gaps = vec![1; 30];
        origin.data = rstp_sim::ScriptedDelivery::deliver_all(&[3; 25], 0);

        let fails = |s: &Scenario| {
            let trues = s.input.iter().filter(|&&b| b).count();
            (trues >= 3).then_some(s.input.len() as u64 * 10)
        };
        assert!(fails(&origin).is_some());
        let (min, _) = shrink(&origin, 90, fails, 10_000);
        assert_eq!(min.input.len(), 3, "input must shrink to the 3-bit core");
        assert_eq!(min.script_len(), 0, "all scripts must be cleared");
    }

    #[test]
    fn shrink_respects_the_attempt_budget() {
        let params = TimingParams::from_ticks(1, 2, 6).unwrap();
        let mut rng = StdRng::seed_from_u64(22);
        let origin = Scenario::generate(ProtocolKind::Alpha, params, &mut rng, 20);
        let mut calls = 0u32;
        let _ = shrink(
            &origin,
            100,
            |_| {
                calls += 1;
                Some(100)
            },
            5,
        );
        assert!(calls <= 5);
    }
}
