//! Text serialization of repro scenarios.
//!
//! A repro is one scenario plus an expectation, stored as a small
//! line-oriented text file (committed under `tests/corpus/*.repro`) that
//! replays byte-for-byte: the format contains every input the simulator
//! consumes, so parsing and re-running a file reproduces the original run
//! exactly.
//!
//! ```text
//! rstp-check repro v1
//! protocol = gamma k=4
//! params = 1 2 6
//! expect = pass
//! reason = reverse-burst delivery at the deadline
//! input = 0110
//! t_gaps = 2 2 1
//! r_gaps =
//! gap_fallback = 2
//! data_fates = 6 0 drop dup:1,3
//! ack_fates = 0
//! data_fallback = 0
//! ack_fallback = 6
//! ```
//!
//! Fate tokens: a bare integer delivers after that many ticks, `drop`
//! loses the packet, `dup:a,b` delivers two copies after `a` and `b`.
//!
//! Scenarios for the self-stabilizing protocols may carry one extra,
//! optional line scripting the seeded mid-run state corruption:
//!
//! ```text
//! corruption = at=37 seed=12345
//! ```
//!
//! Files without it (everything predating the stabilizing family) parse
//! unchanged.

use std::fmt;

use rstp_core::TimingParams;
use rstp_sim::{CorruptionSpec, PacketFate, ProtocolKind, ScriptedDelivery};

use crate::scenario::Scenario;

/// What replaying the scenario is expected to produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// Every oracle passes.
    Pass,
    /// At least one oracle rejects the run.
    Violation,
}

/// A committed reproducer: scenario, expectation, and provenance note.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Repro {
    /// The scenario to replay.
    pub scenario: Scenario,
    /// Expected verdict.
    pub expect: Expectation,
    /// Free-text provenance (what the scenario stresses, or which failure
    /// it reproduced).
    pub reason: String,
}

/// A parse failure, with the 1-based line it occurred on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReproError {
    /// 1-based line number (0 for whole-file problems).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ReproError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ReproError {}

const HEADER: &str = "rstp-check repro v1";

fn kind_token(kind: ProtocolKind) -> String {
    match kind {
        ProtocolKind::Alpha => "alpha".into(),
        ProtocolKind::Beta { k } => format!("beta k={k}"),
        ProtocolKind::Gamma { k } => format!("gamma k={k}"),
        ProtocolKind::AltBit { timeout_steps } => match timeout_steps {
            Some(t) => format!("altbit timeout={t}"),
            None => "altbit timeout=none".into(),
        },
        ProtocolKind::Framed { k } => format!("framed k={k}"),
        ProtocolKind::BetaWindow { k } => format!("beta-window k={k}"),
        ProtocolKind::Stenning { timeout_steps } => match timeout_steps {
            Some(t) => format!("stenning timeout={t}"),
            None => "stenning timeout=none".into(),
        },
        ProtocolKind::Pipelined { k, window } => format!("pipelined k={k} w={window}"),
        ProtocolKind::StabStenning { timeout_steps } => match timeout_steps {
            Some(t) => format!("stab-stenning timeout={t}"),
            None => "stab-stenning timeout=none".into(),
        },
        ProtocolKind::StabBeta { k } => format!("stab-beta k={k}"),
    }
}

fn fate_token(fate: PacketFate) -> String {
    match fate {
        PacketFate::Deliver(t) => t.to_string(),
        PacketFate::Drop => "drop".into(),
        PacketFate::Duplicate(a, b) => format!("dup:{a},{b}"),
    }
}

/// Renders a repro to its canonical text form.
#[must_use]
pub fn render_repro(repro: &Repro) -> String {
    let s = &repro.scenario;
    // List-valued lines render as `key =` when empty — no trailing space —
    // so files are a fixpoint of parse ∘ render.
    let join = |items: Vec<String>| {
        if items.is_empty() {
            String::new()
        } else {
            format!(" {}", items.join(" "))
        }
    };
    let ticks = |v: &[u64]| join(v.iter().map(u64::to_string).collect());
    let fates = |p: &ScriptedDelivery| join(p.fates().iter().map(|&f| fate_token(f)).collect());
    let input: String = s.input.iter().map(|&b| if b { '1' } else { '0' }).collect();
    // The corruption line is optional (absent = no fault), so pre-Issue-7
    // corpus files parse unchanged.
    let corruption = s.corruption.map_or(String::new(), |c| {
        format!("corruption = at={} seed={}\n", c.at_event, c.seed)
    });
    format!(
        "{HEADER}\n\
         protocol = {}\n\
         params = {} {} {}\n\
         expect = {}\n\
         reason = {}\n\
         input = {input}\n\
         t_gaps ={}\n\
         r_gaps ={}\n\
         gap_fallback = {}\n\
         data_fates ={}\n\
         ack_fates ={}\n\
         data_fallback = {}\n\
         ack_fallback = {}\n\
         {corruption}",
        kind_token(s.kind),
        s.params.c1().ticks(),
        s.params.c2().ticks(),
        s.params.d().ticks(),
        match repro.expect {
            Expectation::Pass => "pass",
            Expectation::Violation => "violation",
        },
        repro.reason,
        ticks(&s.t_gaps),
        ticks(&s.r_gaps),
        s.gap_fallback,
        fates(&s.data),
        fates(&s.ack),
        s.data.fallback(),
        s.ack.fallback(),
    )
}

struct Fields<'a> {
    entries: Vec<(usize, &'a str, &'a str)>,
}

impl<'a> Fields<'a> {
    fn get(&self, key: &str) -> Result<(usize, &'a str), ReproError> {
        self.get_opt(key).ok_or_else(|| ReproError {
            line: 0,
            message: format!("missing field `{key}`"),
        })
    }

    /// Optional fields (like `corruption`) are simply absent in older files.
    fn get_opt(&self, key: &str) -> Option<(usize, &'a str)> {
        self.entries
            .iter()
            .find(|(_, k, _)| *k == key)
            .map(|&(line, _, v)| (line, v))
    }
}

fn parse_u64(line: usize, what: &str, token: &str) -> Result<u64, ReproError> {
    token.parse().map_err(|_| ReproError {
        line,
        message: format!("{what}: expected an integer, got `{token}`"),
    })
}

fn parse_kind(line: usize, value: &str) -> Result<ProtocolKind, ReproError> {
    let mut words = value.split_whitespace();
    let name = words.next().unwrap_or("");
    let mut k = None;
    let mut window = None;
    let mut timeout: Option<Option<u64>> = None;
    for word in words {
        let (key, v) = word.split_once('=').ok_or_else(|| ReproError {
            line,
            message: format!("protocol argument `{word}` is not key=value"),
        })?;
        match key {
            "k" => k = Some(parse_u64(line, "protocol k", v)?),
            "w" => window = Some(parse_u64(line, "protocol w", v)?),
            "timeout" => {
                timeout = Some(if v == "none" {
                    None
                } else {
                    Some(parse_u64(line, "protocol timeout", v)?)
                })
            }
            _ => {
                return Err(ReproError {
                    line,
                    message: format!("unknown protocol argument `{key}`"),
                })
            }
        }
    }
    let need_k = || {
        k.ok_or(ReproError {
            line,
            message: format!("protocol `{name}` needs k=<n>"),
        })
    };
    match name {
        "alpha" => Ok(ProtocolKind::Alpha),
        "beta" => Ok(ProtocolKind::Beta { k: need_k()? }),
        "gamma" => Ok(ProtocolKind::Gamma { k: need_k()? }),
        "framed" => Ok(ProtocolKind::Framed { k: need_k()? }),
        "beta-window" => Ok(ProtocolKind::BetaWindow { k: need_k()? }),
        "altbit" => Ok(ProtocolKind::AltBit {
            timeout_steps: timeout.unwrap_or(None),
        }),
        "stenning" => Ok(ProtocolKind::Stenning {
            timeout_steps: timeout.unwrap_or(None),
        }),
        "pipelined" => Ok(ProtocolKind::Pipelined {
            k: need_k()?,
            window: window.unwrap_or(2),
        }),
        "stab-stenning" => Ok(ProtocolKind::StabStenning {
            timeout_steps: timeout.unwrap_or(None),
        }),
        "stab-beta" => Ok(ProtocolKind::StabBeta { k: need_k()? }),
        other => Err(ReproError {
            line,
            message: format!("unknown protocol `{other}`"),
        }),
    }
}

fn parse_fates(line: usize, value: &str) -> Result<Vec<PacketFate>, ReproError> {
    value
        .split_whitespace()
        .map(|token| {
            if token == "drop" {
                return Ok(PacketFate::Drop);
            }
            if let Some(rest) = token.strip_prefix("dup:") {
                let (a, b) = rest.split_once(',').ok_or_else(|| ReproError {
                    line,
                    message: format!("duplicate fate `{token}` is not dup:a,b"),
                })?;
                return Ok(PacketFate::Duplicate(
                    parse_u64(line, "dup delay", a)?,
                    parse_u64(line, "dup delay", b)?,
                ));
            }
            Ok(PacketFate::Deliver(parse_u64(
                line,
                "delivery delay",
                token,
            )?))
        })
        .collect()
}

/// Parses the canonical text form back into a [`Repro`].
pub fn parse_repro(text: &str) -> Result<Repro, ReproError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(ReproError {
        line: 0,
        message: "empty file".into(),
    })?;
    if header.trim() != HEADER {
        return Err(ReproError {
            line: 1,
            message: format!("bad header `{header}` (expected `{HEADER}`)"),
        });
    }

    let mut entries = Vec::new();
    for (idx, raw) in lines {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let (key, value) = trimmed.split_once('=').ok_or_else(|| ReproError {
            line,
            message: format!("`{trimmed}` is not key = value"),
        })?;
        entries.push((line, key.trim(), value.trim()));
    }
    let fields = Fields { entries };

    let (line, value) = fields.get("protocol")?;
    let kind = parse_kind(line, value)?;

    let (line, value) = fields.get("params")?;
    let nums: Vec<&str> = value.split_whitespace().collect();
    if nums.len() != 3 {
        return Err(ReproError {
            line,
            message: format!("params needs `c1 c2 d`, got `{value}`"),
        });
    }
    let params = TimingParams::from_ticks(
        parse_u64(line, "c1", nums[0])?,
        parse_u64(line, "c2", nums[1])?,
        parse_u64(line, "d", nums[2])?,
    )
    .map_err(|e| ReproError {
        line,
        message: format!("invalid params: {e}"),
    })?;

    let (line, value) = fields.get("expect")?;
    let expect = match value {
        "pass" => Expectation::Pass,
        "violation" => Expectation::Violation,
        other => {
            return Err(ReproError {
                line,
                message: format!("expect must be pass|violation, got `{other}`"),
            })
        }
    };

    let reason = fields.get("reason")?.1.to_string();

    let (line, value) = fields.get("input")?;
    let input = value
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(ReproError {
                line,
                message: format!("input bit must be 0 or 1, got `{other}`"),
            }),
        })
        .collect::<Result<Vec<bool>, _>>()?;

    let gaps = |key: &str| -> Result<Vec<u64>, ReproError> {
        let (line, value) = fields.get(key)?;
        value
            .split_whitespace()
            .map(|t| parse_u64(line, key, t))
            .collect()
    };
    let t_gaps = gaps("t_gaps")?;
    let r_gaps = gaps("r_gaps")?;
    let (line, value) = fields.get("gap_fallback")?;
    let gap_fallback = parse_u64(line, "gap_fallback", value)?;

    let (line, value) = fields.get("data_fates")?;
    let data_fates = parse_fates(line, value)?;
    let (line, value) = fields.get("ack_fates")?;
    let ack_fates = parse_fates(line, value)?;
    let (line, value) = fields.get("data_fallback")?;
    let data_fallback = parse_u64(line, "data_fallback", value)?;
    let (line, value) = fields.get("ack_fallback")?;
    let ack_fallback = parse_u64(line, "ack_fallback", value)?;

    let corruption = match fields.get_opt("corruption") {
        None => None,
        Some((line, value)) => Some(parse_corruption(line, value)?),
    };

    Ok(Repro {
        scenario: Scenario {
            kind,
            params,
            input,
            t_gaps,
            r_gaps,
            gap_fallback,
            data: ScriptedDelivery::new(data_fates, data_fallback),
            ack: ScriptedDelivery::new(ack_fates, ack_fallback),
            corruption,
        },
        expect,
        reason,
    })
}

fn parse_corruption(line: usize, value: &str) -> Result<CorruptionSpec, ReproError> {
    let mut at_event = None;
    let mut seed = None;
    for word in value.split_whitespace() {
        let (key, v) = word.split_once('=').ok_or_else(|| ReproError {
            line,
            message: format!("corruption argument `{word}` is not key=value"),
        })?;
        match key {
            "at" => at_event = Some(parse_u64(line, "corruption at", v)?),
            "seed" => seed = Some(parse_u64(line, "corruption seed", v)?),
            _ => {
                return Err(ReproError {
                    line,
                    message: format!("unknown corruption argument `{key}`"),
                })
            }
        }
    }
    match (at_event, seed) {
        (Some(at_event), Some(seed)) => Ok(CorruptionSpec { at_event, seed }),
        _ => Err(ReproError {
            line,
            message: "corruption needs both at=<n> and seed=<n>".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_trips_every_protocol_kind() {
        let params = TimingParams::from_ticks(1, 2, 6).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let kinds = [
            ProtocolKind::Alpha,
            ProtocolKind::Beta { k: 4 },
            ProtocolKind::Gamma { k: 3 },
            ProtocolKind::AltBit {
                timeout_steps: Some(20),
            },
            ProtocolKind::AltBit {
                timeout_steps: None,
            },
            ProtocolKind::Framed { k: 4 },
            ProtocolKind::BetaWindow { k: 4 },
            ProtocolKind::Stenning {
                timeout_steps: None,
            },
            ProtocolKind::Pipelined { k: 4, window: 3 },
            ProtocolKind::StabStenning {
                timeout_steps: Some(9),
            },
            ProtocolKind::StabStenning {
                timeout_steps: None,
            },
            ProtocolKind::StabBeta { k: 4 },
        ];
        for kind in kinds {
            let repro = Repro {
                scenario: Scenario::generate(kind, params, &mut rng, 10),
                expect: Expectation::Pass,
                reason: "round-trip test".into(),
            };
            let text = render_repro(&repro);
            let back = parse_repro(&text).unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            assert_eq!(back, repro, "{}", kind.name());
            // Canonical form is a fixpoint.
            assert_eq!(render_repro(&back), text);
        }
    }

    #[test]
    fn corruption_line_round_trips_and_stays_optional() {
        let params = TimingParams::from_ticks(1, 2, 6).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        // Draw until the generator scripts a corruption (p = 0.7 per draw).
        let scenario = std::iter::repeat_with(|| {
            Scenario::generate(ProtocolKind::StabBeta { k: 3 }, params, &mut rng, 8)
        })
        .find(|s| s.corruption.is_some())
        .unwrap();
        let repro = Repro {
            scenario,
            expect: Expectation::Violation,
            reason: "corruption round-trip".into(),
        };
        let text = render_repro(&repro);
        assert!(text.contains("corruption = at="), "{text}");
        let back = parse_repro(&text).unwrap();
        assert_eq!(back, repro);
        assert_eq!(render_repro(&back), text);

        // Dropping the line parses to the same scenario without a fault.
        let without: String = text
            .lines()
            .filter(|l| !l.starts_with("corruption"))
            .map(|l| format!("{l}\n"))
            .collect();
        let clean = parse_repro(&without).unwrap();
        assert_eq!(clean.scenario.corruption, None);

        // A half-specified line is a parse error, not a silent default.
        let bad = without + "corruption = at=3\n";
        assert!(parse_repro(&bad).is_err());
    }

    #[test]
    fn fate_tokens_round_trip() {
        let text = "rstp-check repro v1\n\
                    protocol = stenning timeout=12\n\
                    params = 1 2 4\n\
                    expect = violation\n\
                    reason = crafted\n\
                    input = 10\n\
                    t_gaps = 1 2\n\
                    r_gaps =\n\
                    gap_fallback = 2\n\
                    data_fates = 3 drop dup:0,4\n\
                    ack_fates =\n\
                    data_fallback = 0\n\
                    ack_fallback = 4\n";
        let repro = parse_repro(text).unwrap();
        assert_eq!(
            repro.scenario.data.fates(),
            [
                PacketFate::Deliver(3),
                PacketFate::Drop,
                PacketFate::Duplicate(0, 4)
            ]
        );
        assert!(!repro.scenario.is_fault_free());
        assert_eq!(render_repro(&repro), text);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "rstp-check repro v1\nprotocol = beta\n";
        let err = parse_repro(bad).unwrap_err();
        assert_eq!(err.line, 2);

        let err = parse_repro("nope\n").unwrap_err();
        assert_eq!(err.line, 1);
    }
}
