//! The recording → scenario bridge behind `rstp replay`.
//!
//! A flight recording (`rstp-record`) is a wall-clock artifact: wire
//! bytes with microsecond stamps, wheel pops, and a final verdict per
//! session. This module folds one recorded session back into the
//! discrete-time [`Scenario`] language the fuzzer already speaks:
//!
//! - the session's wheel pops become the *receiver step script* (gap
//!   deltas in ticks, clamped into `[c1, c2]`),
//! - each applied data frame becomes a scripted [`PacketFate`] whose
//!   delay is the frame's measured flight time in ticks (clamped into
//!   `[0, d]`), indexed by the transmitter's monotone `seq` — so the
//!   *relative delivery order* the server observed, including any
//!   reordering the fabric produced, is replayed exactly,
//! - a `seq` with no recorded arrival becomes [`PacketFate::Drop`].
//!
//! The reconstructed scenario is legal by construction, so the entire
//! oracle stack applies: [`run_scenario`] gives a deterministic
//! sim↔recording differential ([`replay_session`]), and a failing
//! session feeds straight into the delta-debug shrinker
//! ([`shrink_from_recording`]) to produce a committable repro.

use crate::oracle::{run_scenario, Failure, FailureKind, ScenarioRun};
use crate::scenario::Scenario;
use crate::shrink::shrink;
use rstp_core::{Message, TimingParams};
use rstp_net::decode_any;
use rstp_record::{SessionHistory, SessionIndex};
use rstp_sim::harness::random_input;
use rstp_sim::{PacketFate, ScriptedDelivery};
use std::fmt;

/// Event budget for bridged replays — matches the fuzzer's ceiling.
pub const REPLAY_MAX_EVENTS: u64 = 500_000;

/// Why a recorded session could not be bridged into a scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BridgeError {
    /// What was missing or malformed.
    pub what: String,
}

impl fmt::Display for BridgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bridge: {}", self.what)
    }
}

impl std::error::Error for BridgeError {}

fn err(what: impl Into<String>) -> BridgeError {
    BridgeError { what: what.into() }
}

/// One recorded session lifted into scenario form, plus the recorded
/// ground truth to differentiate against.
#[derive(Clone, Debug)]
pub struct BridgedSession {
    /// Raw session id.
    pub session: u32,
    /// The reconstructed scenario.
    pub scenario: Scenario,
    /// The receiver output `Y` the recording's verdict carries, if the
    /// session got that far.
    pub recorded_written: Option<Vec<Message>>,
    /// Whether the recorded session completed.
    pub recorded_completed: Option<bool>,
}

/// The sim↔recording differential for one session.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Raw session id.
    pub session: u32,
    /// What the simulator wrote when replaying the bridged scenario.
    pub sim_written: Vec<Message>,
    /// First oracle rejection of the bridged scenario, if any.
    pub sim_failure: Option<Failure>,
    /// Trace events the replay took.
    pub events: u64,
    /// The recorded `Y`, when the verdict was captured.
    pub recorded_written: Option<Vec<Message>>,
    /// `true` when a recorded verdict exists and the simulator's output
    /// differs from it — the recording and the model disagree, which is
    /// exactly what a postmortem needs to know first.
    pub divergent: bool,
}

/// Reconstructs a [`Scenario`] from one session's history.
///
/// `tick_micros` converts recorded wall-clock stamps into ticks;
/// `input` is the session's transmitted word `X` (the scenario replays
/// it through the simulated transmitter).
///
/// # Errors
///
/// [`BridgeError`] when the history lacks an admit record or a frame
/// fails strict wire decoding.
pub fn scenario_from_history(
    h: &SessionHistory,
    params: TimingParams,
    tick_micros: u64,
    input: Vec<Message>,
) -> Result<Scenario, BridgeError> {
    let kind = h
        .kind
        .ok_or_else(|| err(format!("session {} has no admit record", h.session)))?;
    let c1 = params.c1().ticks();
    let c2 = params.c2().ticks();
    let d = params.d().ticks();
    let tick = tick_micros.max(1);

    // Receiver step script: recorded pop-to-pop deltas, clamped legal.
    let r_gaps: Vec<u64> = h
        .pops
        .windows(2)
        .map(|w| (w[1].1.saturating_sub(w[0].1)).clamp(c1, c2))
        .collect();

    // Data fates by transmitter seq: measured flight time in ticks,
    // rounded to nearest, clamped into the legal window. Unseen seqs
    // below the highest observed one were lost in flight.
    let mut arrivals: Vec<Option<u64>> = Vec::new();
    for (at_micros, wire) in &h.rx {
        let frame = decode_any(wire).map_err(|e| {
            err(format!(
                "session {}: recorded frame does not decode: {e}",
                h.session
            ))
        })?;
        if !frame.packet.is_data() {
            continue;
        }
        let Ok(seq) = usize::try_from(frame.seq) else {
            continue;
        };
        if arrivals.len() <= seq {
            arrivals.resize(seq + 1, None);
        }
        let flight = at_micros.saturating_sub(frame.sent_at_micros);
        let delay = ((flight + tick / 2) / tick).min(d);
        // First arrival wins; the strict server applies each frame once.
        arrivals[seq].get_or_insert(delay);
    }
    let data_fates: Vec<PacketFate> = arrivals
        .into_iter()
        .map(|a| a.map_or(PacketFate::Drop, PacketFate::Deliver))
        .collect();

    Ok(Scenario {
        kind,
        params,
        input,
        // The transmitter side was a driver thread the recording never
        // saw; the scenario paces it at the legal fallback.
        t_gaps: Vec::new(),
        r_gaps,
        gap_fallback: c2,
        data: ScriptedDelivery::new(data_fates, 0),
        // Acks flowed server → client, outside the recorded window;
        // immediate delivery is the legal default.
        ack: ScriptedDelivery::new(Vec::new(), 0),
        // Recorded live sessions never include a state-corruption fault.
        corruption: None,
    })
}

/// Bridges `session` out of a run index. The input `X` is taken from
/// `input_override`, or regenerated from the recorded swarm seed using
/// the swarm's own derivation (`seed + (id − 1)`).
///
/// # Errors
///
/// [`BridgeError`] when the session, run metadata, or input source is
/// missing, or the history is malformed.
pub fn bridge_session(
    index: &SessionIndex,
    session: u32,
    input_override: Option<Vec<Message>>,
) -> Result<BridgedSession, BridgeError> {
    let h = index
        .get(session)
        .ok_or_else(|| err(format!("session {session} not in recording")))?;
    let (c1, c2, d) = index
        .params
        .ok_or_else(|| err("recording has no run metadata"))?;
    let params = TimingParams::from_ticks(c1, c2, d)
        .map_err(|e| err(format!("recorded params are invalid: {e}")))?;
    let tick_micros = index
        .tick_micros
        .ok_or_else(|| err("recording has no tick length"))?;
    let input = match input_override {
        Some(x) => x,
        None => {
            let n =
                h.n.ok_or_else(|| err(format!("session {session} has no admit record")))?;
            let seed = index
                .seed
                .ok_or_else(|| err("recording carries no input seed; pass the input explicitly"))?;
            random_input(
                n as usize,
                seed.wrapping_add(u64::from(session).wrapping_sub(1)),
            )
        }
    };
    let scenario = scenario_from_history(h, params, tick_micros, input)?;
    Ok(BridgedSession {
        session,
        scenario,
        recorded_written: h.verdict.as_ref().map(|(_, _, w)| w.clone()),
        recorded_completed: h.verdict.as_ref().map(|(_, c, _)| *c),
    })
}

/// Runs the deterministic sim↔recording differential for one bridged
/// session: the scenario replays through the full oracle stack, and the
/// simulator's output is compared against the recorded verdict.
#[must_use]
pub fn replay_session(bridged: &BridgedSession) -> ReplayReport {
    let run: ScenarioRun = run_scenario(&bridged.scenario, REPLAY_MAX_EVENTS);
    let sim_written = run.trace.written();
    let divergent = bridged
        .recorded_written
        .as_ref()
        .is_some_and(|rec| *rec != sim_written);
    ReplayReport {
        session: bridged.session,
        sim_written,
        sim_failure: run.failure,
        events: run.events,
        recorded_written: bridged.recorded_written.clone(),
        divergent,
    }
}

/// The no-acknowledged-loss oracle: every `Write` event a recording
/// carries was acknowledged to the client as durable, so the session's
/// final verdict must still contain it — same position, same bit — no
/// matter how many crashes, restarts, or handovers happened in between.
///
/// Fires [`FailureKind::AckLoss`] when
///
/// - the cumulative write counter regresses (two incarnations wrote the
///   same position — a double-active session),
/// - acknowledged writes exist but the recording has no verdict at all
///   (the session died and recovery never brought it back),
/// - the verdict's `Y` is shorter than the acknowledged floor, or
/// - an acknowledged bit differs from the verdict's bit at that
///   position (recovery resurrected the wrong state).
///
/// Ring shedding can drop `Write` events — that only *lowers* the
/// floor, so holes never cause a false alarm here; a shed *verdict* can,
/// which is why callers soften the missing-verdict case for shards that
/// reported drops.
#[must_use]
pub fn ack_loss_failure(h: &SessionHistory) -> Option<Failure> {
    let fail = |detail: String| {
        Some(Failure {
            kind: FailureKind::AckLoss,
            detail,
        })
    };
    let mut floor = 0u64;
    for &(at, count, _) in &h.writes {
        if count <= floor {
            return fail(format!(
                "session {}: acknowledged count regressed from {floor} to {count} at {at} us",
                h.session
            ));
        }
        floor = count;
    }
    if floor == 0 {
        return None;
    }
    let Some((_, _, written)) = &h.verdict else {
        return fail(format!(
            "session {}: {floor} acknowledged write(s) but no final verdict — \
             the acknowledged prefix is lost",
            h.session
        ));
    };
    if (written.len() as u64) < floor {
        return fail(format!(
            "session {}: verdict carries {} write(s), acknowledged floor is {floor}",
            h.session,
            written.len()
        ));
    }
    for &(at, count, bit) in &h.writes {
        let have = written[(count - 1) as usize];
        if have != bit {
            return fail(format!(
                "session {}: write #{count} was acknowledged as {bit} at {at} us, \
                 the verdict has {have}",
                h.session
            ));
        }
    }
    None
}

/// The acknowledged prefix of a history as `(0-based position, bit)`
/// pairs, ready for [`shrink_ack_loss`]. Positions may have holes when
/// the ring shed events.
#[must_use]
pub fn acked_prefix(h: &SessionHistory) -> Vec<(usize, bool)> {
    h.writes
        .iter()
        .filter(|&&(_, c, _)| c > 0)
        .map(|&(_, c, b)| ((c - 1) as usize, b))
        .collect()
}

/// First acknowledged position the replay's output contradicts, if any.
/// Positions beyond `input_len` are ignored so input truncation during
/// shrinking cannot fabricate a violation.
fn acked_violation(
    written: &[Message],
    input_len: usize,
    acked: &[(usize, bool)],
) -> Option<String> {
    for &(pos, bit) in acked {
        if pos >= input_len {
            continue;
        }
        match written.get(pos) {
            None => {
                return Some(format!(
                    "acknowledged position {pos} ({bit}) never written in replay"
                ))
            }
            Some(&have) if have != bit => {
                return Some(format!(
                    "acknowledged position {pos} replayed as {have}, recording acknowledged {bit}"
                ))
            }
            _ => {}
        }
    }
    None
}

/// Shrinks a bridged session whose replay violates the recorded
/// acknowledged prefix, preserving the ack-loss predicate: a candidate
/// only counts as "still failing" while its sim output contradicts one
/// of the `acked` positions (clamped to the candidate's input length).
/// Returns `None` when the origin replay already honors every
/// acknowledged write — the loss lives in the recording, not in the
/// reconstructed schedule, and there is nothing to shrink.
#[must_use]
pub fn shrink_ack_loss(
    bridged: &BridgedSession,
    acked: &[(usize, bool)],
    budget: u32,
) -> Option<(Scenario, u64, Failure)> {
    let origin = run_scenario(&bridged.scenario, REPLAY_MAX_EVENTS);
    let detail = acked_violation(&origin.trace.written(), bridged.scenario.input.len(), acked)?;
    let failure = Failure {
        kind: FailureKind::AckLoss,
        detail,
    };
    let (min, events) = shrink(
        &bridged.scenario,
        origin.events,
        |candidate| {
            let run = run_scenario(candidate, REPLAY_MAX_EVENTS);
            acked_violation(&run.trace.written(), candidate.input.len(), acked).map(|_| run.events)
        },
        budget,
    );
    Some((min, events, failure))
}

/// Shrinks a failing bridged session to a minimal scenario, preserving
/// the failure kind. Returns `None` when the bridged scenario passes
/// every oracle (nothing to shrink).
#[must_use]
pub fn shrink_from_recording(
    bridged: &BridgedSession,
    budget: u32,
) -> Option<(Scenario, u64, Failure)> {
    let origin = run_scenario(&bridged.scenario, REPLAY_MAX_EVENTS);
    let failure = origin.failure?;
    let kind = failure.kind;
    let (min, events) = shrink(
        &bridged.scenario,
        origin.events,
        |candidate| {
            let run = run_scenario(candidate, REPLAY_MAX_EVENTS);
            (run.failure.as_ref().map(|f| f.kind) == Some(kind)).then_some(run.events)
        },
        budget,
    );
    Some((min, events, failure))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rstp_core::SessionId;
    use rstp_net::codec_for;
    use rstp_sim::ProtocolKind;

    fn params() -> TimingParams {
        TimingParams::from_ticks(1, 2, 4).unwrap()
    }

    /// Wire bytes for one data frame the way a swarm client sends them.
    fn data_frame(kind: ProtocolKind, session: u32, sym: u64, seq: u64, sent: u64) -> Vec<u8> {
        codec_for(kind)
            .unwrap()
            .encode_with_session(
                rstp_core::Packet::Data(sym),
                seq,
                sent,
                SessionId::new(session),
            )
            .to_vec()
    }

    /// A hand-built history: three in-order frames, one tick of flight
    /// each, pops every c2 ticks.
    fn history(kind: ProtocolKind, session: u32, n: u32) -> SessionHistory {
        let tick = 200u64;
        SessionHistory {
            session,
            shard: 0,
            kind: Some(kind),
            n: Some(n),
            rx: (0..3)
                .map(|i| {
                    let sent = 1_000 + i * 2 * tick;
                    (sent + tick, data_frame(kind, session, i % 2, i, sent))
                })
                .collect(),
            tx: Vec::new(),
            pops: (0..4)
                .map(|i| (1_000 + i * 2 * tick, 5 + i * 2, false))
                .collect(),
            misses: Vec::new(),
            writes: Vec::new(),
            snapshots: Vec::new(),
            verdict: None,
        }
    }

    #[test]
    fn reconstruction_maps_pops_and_flight_times() {
        let kind = ProtocolKind::Beta { k: 4 };
        let h = history(kind, 7, 4);
        let s = scenario_from_history(&h, params(), 200, vec![true, false, true, false]).unwrap();
        assert_eq!(s.kind, kind);
        assert!(s.t_gaps.is_empty());
        assert_eq!(s.r_gaps, vec![2, 2, 2]);
        assert_eq!(s.gap_fallback, 2);
        assert_eq!(
            s.data.fates(),
            &[
                PacketFate::Deliver(1),
                PacketFate::Deliver(1),
                PacketFate::Deliver(1)
            ]
        );
        assert!(s.ack.fates().is_empty());
        assert!(s.is_fault_free());
    }

    #[test]
    fn missing_seqs_become_drops_and_delays_clamp_to_d() {
        let kind = ProtocolKind::Beta { k: 4 };
        let mut h = history(kind, 7, 4);
        // Keep seqs 0 and 2; make seq 2 arrive absurdly late.
        h.rx.remove(1);
        h.rx[1].0 += 100_000;
        let s = scenario_from_history(&h, params(), 200, vec![true]).unwrap();
        assert_eq!(
            s.data.fates(),
            &[
                PacketFate::Deliver(1),
                PacketFate::Drop,
                PacketFate::Deliver(4)
            ]
        );
    }

    #[test]
    fn bridge_errors_name_what_is_missing() {
        let ix = SessionIndex::default();
        let e = bridge_session(&ix, 3, None).unwrap_err();
        assert!(e.to_string().contains("not in recording"), "{e}");

        let mut h = history(ProtocolKind::Beta { k: 4 }, 7, 4);
        h.kind = None;
        let e = scenario_from_history(&h, params(), 200, vec![true]).unwrap_err();
        assert!(e.to_string().contains("no admit record"), "{e}");

        let mut h = history(ProtocolKind::Beta { k: 4 }, 7, 4);
        h.rx[0].1 = vec![0xFF; 8];
        let e = scenario_from_history(&h, params(), 200, vec![true]).unwrap_err();
        assert!(e.to_string().contains("does not decode"), "{e}");
    }

    /// Every way the no-acknowledged-loss oracle can fire, and the clean
    /// shapes where it must not.
    #[test]
    fn ack_loss_oracle_checks_writes_against_the_verdict() {
        let kind = ProtocolKind::Stenning {
            timeout_steps: None,
        };
        let mut h = history(kind, 5, 4);
        // No writes at all: nothing was acknowledged, nothing to lose.
        assert!(ack_loss_failure(&h).is_none());

        // Consistent writes + verdict: clean.
        h.writes = vec![(10, 1, true), (20, 2, false), (30, 3, true)];
        h.verdict = Some((40, true, vec![true, false, true, false]));
        assert!(ack_loss_failure(&h).is_none());

        // Holes from ring shedding only lower the floor: still clean.
        h.writes = vec![(10, 1, true), (30, 3, true)];
        assert!(ack_loss_failure(&h).is_none());

        // Verdict shorter than the acknowledged floor.
        h.writes = vec![(10, 1, true), (20, 2, false), (30, 3, true)];
        h.verdict = Some((40, false, vec![true, false]));
        let f = ack_loss_failure(&h).expect("floor violated");
        assert_eq!(f.kind, FailureKind::AckLoss);
        assert!(f.detail.contains("floor is 3"), "{f}");
        assert_eq!(f.to_string().split(':').next(), Some("ack-loss"));

        // Acknowledged bit differs from the verdict's.
        h.verdict = Some((40, true, vec![true, true, true, false]));
        let f = ack_loss_failure(&h).expect("bit diverged");
        assert!(f.detail.contains("write #2"), "{f}");

        // Writes but no verdict: the session died unrecovered.
        h.verdict = None;
        let f = ack_loss_failure(&h).expect("verdict missing");
        assert!(f.detail.contains("no final verdict"), "{f}");

        // Regressing counter: two incarnations wrote the same position.
        h.writes = vec![(10, 2, true), (20, 1, false)];
        h.verdict = Some((40, true, vec![false, true]));
        let f = ack_loss_failure(&h).expect("counter regressed");
        assert!(f.detail.contains("regressed from 2 to 1"), "{f}");
    }

    #[test]
    fn acked_prefix_maps_counts_to_positions() {
        let mut h = history(
            ProtocolKind::Stenning {
                timeout_steps: None,
            },
            5,
            4,
        );
        h.writes = vec![(10, 1, true), (30, 3, false), (31, 0, true)];
        assert_eq!(acked_prefix(&h), vec![(0, true), (2, false)]);
    }

    /// A replay that contradicts the acknowledged prefix shrinks to a
    /// minimal scenario while staying an ack-loss repro; a replay that
    /// honors it has nothing to shrink.
    #[test]
    fn shrink_ack_loss_preserves_the_violated_position() {
        // β(k=2) with both copies of the first symbol dropped: the
        // open-loop receiver misframes and writes input[1] at position
        // 0 — exactly the shape of a resurrected-wrong-state recording.
        let kind = ProtocolKind::Beta { k: 2 };
        let input = vec![true, false, true, false];
        let scenario = Scenario {
            kind,
            params: params(),
            input: input.clone(),
            t_gaps: Vec::new(),
            r_gaps: Vec::new(),
            gap_fallback: 2,
            data: ScriptedDelivery::new(vec![PacketFate::Drop, PacketFate::Drop], 0),
            ack: ScriptedDelivery::new(Vec::new(), 0),
            corruption: None,
        };
        let bridged = BridgedSession {
            session: 3,
            scenario,
            recorded_written: Some(input.clone()),
            recorded_completed: Some(true),
        };
        let acked: Vec<(usize, bool)> = input.iter().copied().enumerate().collect();
        let (min, _, failure) =
            shrink_ack_loss(&bridged, &acked, 2_000).expect("origin violates the prefix");
        assert_eq!(failure.kind, FailureKind::AckLoss);
        assert!(failure.detail.contains("position"), "{failure}");
        assert!(
            min.input.len() < input.len(),
            "shrinks below the origin: {min:?}"
        );
        let run = run_scenario(&min, REPLAY_MAX_EVENTS);
        assert!(
            acked_violation(&run.trace.written(), min.input.len(), &acked).is_some(),
            "minimized scenario still violates an acknowledged position"
        );

        // Deliver everything: the replay honors the prefix, no shrink.
        let mut honest = bridged.clone();
        honest.scenario.data = ScriptedDelivery::new(Vec::new(), 0);
        assert!(shrink_ack_loss(&honest, &acked, 100).is_none());
    }

    // The healthy-path differential only holds in a normal build: under
    // the injected-bug cfg the sim's gamma transmitter is broken too.
    #[cfg(not(rstp_check_inject_ack_bug))]
    #[test]
    fn faithful_recordings_replay_clean() {
        // A recording whose delivery plan mirrors an untampered run must
        // pass every oracle and agree with its own verdict.
        let kind = ProtocolKind::Gamma { k: 4 };
        let input = random_input(4, 9);
        let mut h = history(kind, 1, 4);
        // Enough in-order unit-delay frames for a full gamma transfer;
        // the sim ignores surplus fates via the fallback.
        h.rx = (0..16)
            .map(|i| {
                let sent = 1_000 + i * 2 * 200;
                (sent + 200, data_frame(kind, 1, 0, i, sent))
            })
            .collect();
        h.verdict = Some((0, true, input.clone()));
        let s = scenario_from_history(&h, params(), 200, input.clone()).unwrap();
        let bridged = BridgedSession {
            session: 1,
            scenario: s,
            recorded_written: Some(input.clone()),
            recorded_completed: Some(true),
        };
        let report = replay_session(&bridged);
        assert!(report.sim_failure.is_none(), "{:?}", report.sim_failure);
        assert_eq!(report.sim_written, input);
        assert!(!report.divergent);
        assert!(shrink_from_recording(&bridged, 50).is_none());
    }
}
