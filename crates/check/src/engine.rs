//! The coverage-guided fuzzing loop.
//!
//! Each iteration either generates a fresh scenario or mutates a member of
//! the coverage-novel pool, runs it through every simulation-side oracle,
//! and absorbs its coverage keys; scenarios that reached new coverage join
//! the pool, so mutation pressure concentrates on behaviors the campaign
//! has not seen before. Every `differential_every`-th iteration the
//! scenario is additionally re-run in wall-clock time over `MemTransport`
//! with the same scripted delivery plan.
//!
//! The whole loop is deterministic: one `StdRng` seeded from
//! `seed ^ fnv(protocol name)` drives generation and mutation, the
//! differential cadence is positional, and coverage lives in ordered sets —
//! so two runs with the same configuration produce identical reports.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rstp_core::TimingParams;
use rstp_sim::ProtocolKind;

use crate::coverage::{coverage_keys, Coverage, CoverageStats};
use crate::oracle::{differential_failure, run_scenario, Failure, FailureKind};
use crate::scenario::Scenario;
use crate::shrink::shrink;

/// How many coverage-novel scenarios the mutation pool retains.
const POOL_CAP: usize = 64;

/// One fuzzing campaign's configuration.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Protocol under test.
    pub kind: ProtocolKind,
    /// Timing parameters for every scenario.
    pub params: TimingParams,
    /// Campaign seed — same seed, same campaign.
    pub seed: u64,
    /// Number of scenarios to run.
    pub iters: u64,
    /// Largest input word to generate.
    pub max_input: usize,
    /// Per-run event budget (exceeding it is a termination failure).
    pub max_events: u64,
    /// Run the sim↔net differential every Nth iteration (0 disables it).
    pub differential_every: u64,
    /// Tick length for differential runs.
    pub differential_tick: Duration,
    /// Wall-clock cap for each differential run.
    pub differential_wall: Duration,
    /// Shrink attempt budget per failure.
    pub shrink_budget: u32,
    /// Stop after this many failures.
    pub max_failures: usize,
}

impl FuzzConfig {
    /// Defaults: 500 iterations, seed 0, inputs up to 24 bits, a
    /// differential check every 250th iteration.
    #[must_use]
    pub fn new(kind: ProtocolKind, params: TimingParams) -> Self {
        FuzzConfig {
            kind,
            params,
            seed: 0,
            iters: 500,
            max_input: 24,
            max_events: 500_000,
            differential_every: 250,
            differential_tick: Duration::from_micros(400),
            differential_wall: Duration::from_secs(20),
            shrink_budget: 600,
            max_failures: 3,
        }
    }
}

/// One oracle rejection found by a campaign, minimized.
#[derive(Clone, Debug)]
pub struct FoundFailure {
    /// The oracle that fired.
    pub failure: Failure,
    /// 0-based iteration the failure surfaced at.
    pub iteration: u64,
    /// Trace events of the originally failing scenario.
    pub original_events: u64,
    /// Trace events of the minimized scenario.
    pub events: u64,
    /// The minimized reproducer.
    pub scenario: Scenario,
}

/// A finished campaign.
#[derive(Clone, Debug)]
pub struct FuzzReport {
    /// `kind.name()` of the protocol fuzzed.
    pub protocol: String,
    /// Iterations actually executed (less than configured when
    /// `max_failures` stopped the campaign early).
    pub iterations: u64,
    /// Final coverage counters.
    pub coverage: CoverageStats,
    /// Final mutation-pool size.
    pub pool: usize,
    /// Minimized failures, in discovery order.
    pub failures: Vec<FoundFailure>,
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Runs one deterministic fuzzing campaign.
#[must_use]
pub fn fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ fnv64(cfg.kind.name().as_bytes()));
    let mut coverage = Coverage::default();
    let mut pool: Vec<Scenario> = Vec::new();
    let mut failures = Vec::new();
    let mut iterations = 0;

    for iter in 0..cfg.iters {
        iterations = iter + 1;
        let scenario = if pool.is_empty() || rng.gen_bool(0.25) {
            Scenario::generate(cfg.kind, cfg.params, &mut rng, cfg.max_input)
        } else {
            let pick = rng.gen_range(0..pool.len());
            pool[pick].mutate(&mut rng)
        };

        let run = run_scenario(&scenario, cfg.max_events);
        let keys = coverage_keys(
            &run.trace,
            cfg.params,
            if run.quiescent {
                rstp_sim::Outcome::Quiescent
            } else {
                rstp_sim::Outcome::BudgetExhausted
            },
        );
        if coverage.absorb(&keys) > 0 {
            if pool.len() < POOL_CAP {
                pool.push(scenario.clone());
            } else {
                let victim = rng.gen_range(0..pool.len());
                pool[victim] = scenario.clone();
            }
        }

        let mut failure = run.failure.clone();
        if failure.is_none()
            && cfg.differential_every > 0
            && (iter + 1) % cfg.differential_every == 0
        {
            failure = differential_failure(&scenario, cfg.differential_tick, cfg.differential_wall);
        }

        if let Some(failure) = failure {
            failures.push(minimize(cfg, &scenario, run.events, failure, iter));
            if failures.len() >= cfg.max_failures {
                break;
            }
        }
    }

    FuzzReport {
        protocol: cfg.kind.name(),
        iterations,
        coverage: coverage.stats(),
        pool: pool.len(),
        failures,
    }
}

/// Shrinks a failing scenario, re-running the simulation oracles and
/// keeping only candidates that fail with the same kind. Differential
/// failures are not shrunk (each candidate would cost a wall-clock run);
/// the original scenario is reported as-is.
fn minimize(
    cfg: &FuzzConfig,
    scenario: &Scenario,
    original_events: u64,
    failure: Failure,
    iteration: u64,
) -> FoundFailure {
    if failure.kind == FailureKind::Differential {
        return FoundFailure {
            failure,
            iteration,
            original_events,
            events: original_events,
            scenario: scenario.clone(),
        };
    }
    let kind = failure.kind;
    let (minimized, events) = shrink(
        scenario,
        original_events,
        |candidate| {
            let run = run_scenario(candidate, cfg.max_events);
            match run.failure {
                Some(f) if f.kind == kind => Some(run.events),
                _ => None,
            }
        },
        cfg.shrink_budget,
    );
    // Re-run once so the reported detail matches the minimized scenario.
    let failure = run_scenario(&minimized, cfg.max_events)
        .failure
        .unwrap_or(failure);
    FoundFailure {
        failure,
        iteration,
        original_events,
        events,
        scenario: minimized,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TimingParams {
        TimingParams::from_ticks(1, 2, 6).unwrap()
    }

    fn quick(kind: ProtocolKind, iters: u64) -> FuzzConfig {
        let mut cfg = FuzzConfig::new(kind, params());
        cfg.iters = iters;
        // Keep unit tests fast: the differential has its own test.
        cfg.differential_every = 0;
        cfg
    }

    #[test]
    fn campaigns_are_deterministic_per_seed() {
        let cfg = quick(ProtocolKind::Gamma { k: 4 }, 60);
        let a = fuzz(&cfg);
        let b = fuzz(&cfg);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.pool, b.pool);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.failures.len(), b.failures.len());
    }

    // Gamma is deliberately broken under the injected-bug cfg; the
    // acceptance test below covers that build instead.
    #[cfg(not(rstp_check_inject_ack_bug))]
    #[test]
    fn healthy_protocols_survive_a_short_campaign() {
        for kind in [
            ProtocolKind::Alpha,
            ProtocolKind::Beta { k: 4 },
            ProtocolKind::Gamma { k: 4 },
        ] {
            let report = fuzz(&quick(kind, 40));
            assert!(
                report.failures.is_empty(),
                "{}: {}",
                report.protocol,
                report.failures[0].failure
            );
            assert_eq!(report.iterations, 40);
            assert!(report.coverage.total > 0);
            assert!(report.pool > 0);
        }
    }

    // The stabilizing family is deliberately broken under the injected
    // stab-bug cfg; its acceptance test below covers that build.
    #[cfg(not(rstp_check_inject_stab_bug))]
    #[test]
    fn stabilizing_protocols_survive_a_corruption_campaign() {
        for kind in [
            ProtocolKind::StabStenning {
                timeout_steps: None,
            },
            ProtocolKind::StabBeta { k: 4 },
        ] {
            let report = fuzz(&quick(kind, 40));
            assert!(
                report.failures.is_empty(),
                "{}: {}",
                report.protocol,
                report.failures[0].failure
            );
            assert_eq!(report.iterations, 40);
            assert!(report.coverage.total > 0);
        }
    }

    /// The corruption-adversary acceptance run: compiled with
    /// `RUSTFLAGS="--cfg rstp_check_inject_stab_bug"`, the stabilizing
    /// Stenning receiver negates every bit written after it accepted a
    /// sync — a convergence bug only reachable through a corrupted run
    /// that enters the recovery ladder. The fuzzer must find it via the
    /// convergence oracle and shrink it to a replayable corpus repro that
    /// keeps its corruption line.
    #[cfg(rstp_check_inject_stab_bug)]
    #[test]
    fn injected_stab_bug_is_caught_and_shrunk() {
        let params = TimingParams::from_ticks(1, 2, 4).unwrap();
        let mut cfg = FuzzConfig::new(
            ProtocolKind::StabStenning {
                timeout_steps: None,
            },
            params,
        );
        cfg.iters = 2_000;
        cfg.differential_every = 0;
        cfg.max_failures = 1;
        let report = fuzz(&cfg);
        assert!(
            !report.failures.is_empty(),
            "the injected stab bug must be found within {} iterations",
            cfg.iters
        );
        let found = &report.failures[0];
        assert_eq!(
            found.failure.kind,
            FailureKind::Convergence,
            "expected a convergence failure, got {}",
            found.failure
        );
        assert!(
            found.scenario.corruption.is_some(),
            "the shrunk repro must keep its corruption — the bug is unreachable without it"
        );
        // The repro replays byte-for-byte through the corpus format,
        // corruption line included.
        let text = crate::corpus::render_repro(&crate::corpus::Repro {
            scenario: found.scenario.clone(),
            expect: crate::corpus::Expectation::Violation,
            reason: found.failure.to_string(),
        });
        assert!(text.contains("corruption = at="), "{text}");
        let back = crate::corpus::parse_repro(&text).unwrap();
        let replayed = crate::oracle::run_scenario(&back.scenario, cfg.max_events);
        assert_eq!(
            replayed.failure.map(|f| f.kind),
            Some(FailureKind::Convergence),
            "committed repro must reproduce the same failure"
        );
    }

    /// The acceptance run for the whole tentpole: compiled with
    /// `RUSTFLAGS="--cfg rstp_check_inject_ack_bug"`, `A^γ`'s transmitter
    /// advances one ack early, which corrupts the receiver's multiset
    /// decode only under burst-overlapping delivery schedules. The fuzzer
    /// must find it and shrink it to a small replayable repro.
    #[cfg(rstp_check_inject_ack_bug)]
    #[test]
    fn injected_ack_bug_is_caught_and_shrunk() {
        let params = TimingParams::from_ticks(1, 2, 4).unwrap();
        let mut cfg = FuzzConfig::new(ProtocolKind::Gamma { k: 2 }, params);
        cfg.iters = 2_000;
        cfg.differential_every = 0;
        cfg.max_failures = 1;
        let report = fuzz(&cfg);
        assert!(
            !report.failures.is_empty(),
            "the injected ack bug must be found within {} iterations",
            cfg.iters
        );
        let found = &report.failures[0];
        assert!(
            found.events <= 20,
            "repro must shrink to ≤ 20 events, got {} ({})",
            found.events,
            found.failure
        );
        // The repro replays byte-for-byte through the corpus format.
        let text = crate::corpus::render_repro(&crate::corpus::Repro {
            scenario: found.scenario.clone(),
            expect: crate::corpus::Expectation::Violation,
            reason: found.failure.to_string(),
        });
        let back = crate::corpus::parse_repro(&text).unwrap();
        let replayed = crate::oracle::run_scenario(&back.scenario, cfg.max_events);
        assert_eq!(
            replayed.failure.map(|f| f.kind),
            Some(found.failure.kind),
            "committed repro must reproduce the same failure"
        );
    }
}
