//! Invariant oracles: everything a scenario's run is checked against.
//!
//! A scenario fails when *any* of the following is violated, in this order:
//!
//! 1. **Model** — the runner itself rejects the run (nondeterminism,
//!    adversary out of bounds, automaton refusing an applicable action).
//!    Legal-by-construction scenarios should never trip this; when one
//!    does, either the generator or the model is broken.
//! 2. **Termination** — the event budget runs out before quiescence.
//! 3. **Violation** — the `good(A)` trace checker finds a safety/liveness
//!    breach (prefix property, step spacing, delivery window, bijection).
//! 4. **Output** — the receiver wrote something other than `X`.
//! 5. **Effort** — measured effort exceeds the paper's closed-form
//!    worst-case bound (§4 for `A^α`/`A^β`, §6 for `A^γ`).
//! 6. **Replay** — the trace does not replay through the composed formal
//!    automaton.
//! 7. **Differential** — the same scenario, run in wall-clock time over
//!    `rstp-net`'s in-memory transport with the *same* scripted delivery
//!    plan, produces a different output (checked periodically by the
//!    engine, not on every iteration).

use std::fmt;
use std::time::Duration;

use rstp_core::bounds;
use rstp_core::protocols::{
    AlphaReceiver, AlphaTransmitter, AltBitReceiver, AltBitTransmitter, BetaReceiver,
    BetaTransmitter, FramedReceiver, FramedTransmitter, GammaReceiver, GammaTransmitter,
    PipelinedReceiver, PipelinedTransmitter, StenningReceiver, StenningTransmitter,
};
use rstp_net::{run_transfer_mem_scripted, DriverOutcome, Pace, TransferConfig};
use rstp_sim::checker::{check_trace, CheckConfig};
use rstp_sim::harness::RunConfig;
use rstp_sim::replay::replay_trace;
use rstp_sim::{run_with_adversaries, Outcome, ProtocolKind, SimTrace};

use crate::scenario::Scenario;

/// Which oracle rejected the scenario. Shrinking preserves the kind: a
/// candidate only counts as "still failing" when it fails the same way.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The runner rejected the run — a model or generator bug.
    Model,
    /// The run did not quiesce within the event budget.
    Termination,
    /// The `good(A)` trace checker found a violation.
    Violation,
    /// The receiver's output differs from the input.
    Output,
    /// Measured effort exceeds the closed-form worst-case bound.
    Effort,
    /// The trace does not replay through the composed formal automaton.
    Replay,
    /// Simulated and wall-clock runs of the same scenario disagree.
    Differential,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FailureKind::Model => "model",
            FailureKind::Termination => "termination",
            FailureKind::Violation => "violation",
            FailureKind::Output => "output",
            FailureKind::Effort => "effort",
            FailureKind::Replay => "replay",
            FailureKind::Differential => "differential",
        };
        f.write_str(name)
    }
}

/// One concrete oracle rejection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Failure {
    /// Which oracle fired.
    pub kind: FailureKind,
    /// Human-readable evidence.
    pub detail: String,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

/// The outcome of running every simulation-side oracle on one scenario.
#[derive(Clone, Debug)]
pub struct ScenarioRun {
    /// The recorded trace (empty when the runner rejected the scenario).
    pub trace: SimTrace,
    /// Whether the run quiesced (false also covers runner rejection).
    pub quiescent: bool,
    /// Number of trace events.
    pub events: u64,
    /// The first oracle rejection, if any.
    pub failure: Option<Failure>,
}

/// Runs `scenario` through the simulator and all simulation-side oracles
/// (1–6 above). The differential oracle is separate — see
/// [`differential_failure`].
#[must_use]
pub fn run_scenario(scenario: &Scenario, max_events: u64) -> ScenarioRun {
    let cfg = RunConfig {
        kind: scenario.kind,
        params: scenario.params,
        d_lo_ticks: 0,
        max_events,
        record_trace: true,
        ..RunConfig::default()
    };
    let mut step = scenario.step_adversary();
    let mut delivery = scenario.delivery_adversary();
    let run = match run_with_adversaries(&cfg, &scenario.input, &mut step, &mut delivery) {
        Ok(run) => run,
        Err(e) => {
            return ScenarioRun {
                trace: SimTrace::default(),
                quiescent: false,
                events: 0,
                failure: Some(Failure {
                    kind: FailureKind::Model,
                    detail: e.to_string(),
                }),
            }
        }
    };
    let quiescent = run.outcome == Outcome::Quiescent;
    let events = run.trace.events().len() as u64;
    let failure = first_failure(scenario, &run.trace, quiescent, &run.metrics);
    ScenarioRun {
        trace: run.trace,
        quiescent,
        events,
        failure,
    }
}

fn first_failure(
    scenario: &Scenario,
    trace: &SimTrace,
    quiescent: bool,
    metrics: &rstp_sim::RunMetrics,
) -> Option<Failure> {
    if !quiescent {
        return Some(Failure {
            kind: FailureKind::Termination,
            detail: format!(
                "event budget exhausted after {} events without quiescence",
                trace.events().len()
            ),
        });
    }

    let faulty = !scenario.is_fault_free();
    let mut check = CheckConfig::from_params(scenario.params);
    check.expect_complete = !faulty;
    check.expect_bijection = !faulty;
    if faulty {
        // Under injected drops the checker's per-value FIFO matching pairs
        // a delivery against a dropped earlier send, so the Δ upper bound
        // would false-alarm; the prefix, liveness, and Σ checks stay on.
        check.d_hi = rstp_automata::TimeDelta::from_ticks(u64::MAX / 4);
    }
    let report = check_trace(trace, &check);
    if let Some(v) = report.violations.first() {
        return Some(Failure {
            kind: FailureKind::Violation,
            detail: v.to_string(),
        });
    }

    if trace.written() != scenario.input {
        return Some(Failure {
            kind: FailureKind::Output,
            detail: format!(
                "receiver wrote {} bits, input had {} (first divergence at {:?})",
                trace.written().len(),
                scenario.input.len(),
                scenario
                    .input
                    .iter()
                    .zip(trace.written())
                    .position(|(a, b)| *a != b)
            ),
        });
    }

    if let Some(f) = effort_failure(scenario, metrics) {
        return Some(f);
    }
    replay_failure(scenario, trace)
}

/// Compares measured effort against the protocol's universal worst-case
/// bound. Only `A^α`/`A^β`/`A^γ` have closed forms; other kinds pass.
fn effort_failure(scenario: &Scenario, metrics: &rstp_sim::RunMetrics) -> Option<Failure> {
    let n = scenario.input.len();
    let effort = metrics.effort(n)?;
    let bound = match scenario.kind {
        ProtocolKind::Alpha => bounds::alpha_effort(scenario.params),
        ProtocolKind::Beta { k } => bounds::passive_upper_finite(scenario.params, k, n),
        ProtocolKind::Gamma { k } => bounds::active_upper_finite(scenario.params, k, n),
        _ => return None,
    };
    // Small epsilon so f64 rounding in the closed forms never false-alarms.
    if effort > bound + 1e-9 {
        return Some(Failure {
            kind: FailureKind::Effort,
            detail: format!("measured effort {effort:.4} exceeds worst-case bound {bound:.4}"),
        });
    }
    None
}

/// Replays the trace through the composed formal automaton, mirroring the
/// constructions of `tests/replay_all.rs`.
fn replay_failure(scenario: &Scenario, trace: &SimTrace) -> Option<Failure> {
    // The composed automaton's channel is a pure delay: injected drops and
    // duplicates have no formal counterpart, so faulty traces cannot replay.
    if !scenario.is_fault_free() {
        return None;
    }
    let p = scenario.params;
    let input = scenario.input.clone();
    let result = match scenario.kind {
        ProtocolKind::Alpha => {
            replay_trace(AlphaTransmitter::new(p, input), AlphaReceiver::new(), trace)
                .map(|_| ())
                .map_err(|e| e.to_string())
        }
        ProtocolKind::Beta { k } => build_and_replay(trace, || {
            Ok((
                BetaTransmitter::new(p, k, &input)?,
                BetaReceiver::new(p, k, input.len())?,
            ))
        }),
        ProtocolKind::Gamma { k } => build_and_replay(trace, || {
            Ok((
                GammaTransmitter::new(p, k, &input)?,
                GammaReceiver::new(p, k, input.len())?,
            ))
        }),
        ProtocolKind::AltBit { timeout_steps } => replay_trace(
            AltBitTransmitter::new(p, input, timeout_steps),
            AltBitReceiver::new(),
            trace,
        )
        .map(|_| ())
        .map_err(|e| e.to_string()),
        ProtocolKind::Framed { k } => build_and_replay(trace, || {
            Ok((
                FramedTransmitter::new(p, k, &input)?,
                FramedReceiver::new(p, k)?,
            ))
        }),
        ProtocolKind::Stenning { timeout_steps } => replay_trace(
            StenningTransmitter::new(p, input, timeout_steps),
            StenningReceiver::new(),
            trace,
        )
        .map(|_| ())
        .map_err(|e| e.to_string()),
        ProtocolKind::Pipelined { k, window } => build_and_replay(trace, || {
            Ok((
                PipelinedTransmitter::with_window(p, k, window, &input)?,
                PipelinedReceiver::with_window(p, k, window, input.len())?,
            ))
        }),
        // BetaWindow needs a d_lo > 0 regime the fuzzer does not target.
        ProtocolKind::BetaWindow { .. } => Ok(()),
    };
    result.err().map(|detail| Failure {
        kind: FailureKind::Replay,
        detail,
    })
}

fn build_and_replay<T, R>(
    trace: &SimTrace,
    build: impl FnOnce() -> Result<(T, R), rstp_core::ProtocolError>,
) -> Result<(), String>
where
    T: rstp_automata::Automaton<Action = rstp_core::RstpAction>,
    R: rstp_automata::Automaton<Action = rstp_core::RstpAction>,
{
    let (t, r) = build().map_err(|e| e.to_string())?;
    replay_trace(t, r, trace)
        .map(|_| ())
        .map_err(|e| e.to_string())
}

/// Runs the scenario a second time in wall-clock over `MemTransport` with
/// the same scripted delivery plan and compares outputs. Only meaningful
/// for fault-free scenarios of wire-supported protocols; others return
/// `None` immediately.
#[must_use]
pub fn differential_failure(
    scenario: &Scenario,
    tick: Duration,
    max_wall: Duration,
) -> Option<Failure> {
    if !scenario.is_fault_free() || matches!(scenario.kind, ProtocolKind::BetaWindow { .. }) {
        return None;
    }
    let mut config = TransferConfig::new(scenario.params, tick, 0).with_pace(Pace::Slow);
    config.max_wall = max_wall;
    let report = match run_transfer_mem_scripted(
        scenario.kind,
        &scenario.input,
        &config,
        scenario.data.clone(),
        scenario.ack.clone(),
    ) {
        Ok(report) => report,
        Err(e) => {
            return Some(Failure {
                kind: FailureKind::Differential,
                detail: format!("net run failed where sim succeeded: {e}"),
            })
        }
    };
    if report.receiver.outcome != DriverOutcome::Completed {
        return Some(Failure {
            kind: FailureKind::Differential,
            detail: "net receiver timed out where sim quiesced".into(),
        });
    }
    if report.output() != scenario.input {
        return Some(Failure {
            kind: FailureKind::Differential,
            detail: format!(
                "net wrote {} bits, sim wrote {}",
                report.output().len(),
                scenario.input.len()
            ),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rstp_core::TimingParams;

    fn params() -> TimingParams {
        TimingParams::from_ticks(1, 2, 6).unwrap()
    }

    // Gamma is deliberately broken under the injected-bug cfg, so the
    // healthy-protocol oracles only hold in a normal build.
    #[cfg(not(rstp_check_inject_ack_bug))]
    #[test]
    fn random_legal_scenarios_pass_every_oracle() {
        let mut rng = StdRng::seed_from_u64(7);
        for kind in [
            ProtocolKind::Alpha,
            ProtocolKind::Beta { k: 4 },
            ProtocolKind::Gamma { k: 4 },
            ProtocolKind::Stenning {
                timeout_steps: None,
            },
        ] {
            for _ in 0..25 {
                let s = Scenario::generate(kind, params(), &mut rng, 12);
                let run = run_scenario(&s, 500_000);
                assert!(
                    run.failure.is_none(),
                    "{}: {}",
                    kind.name(),
                    run.failure.unwrap()
                );
                assert!(run.quiescent);
            }
        }
    }

    #[cfg(not(rstp_check_inject_ack_bug))]
    #[test]
    fn differential_agrees_on_a_scripted_gamma_run() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = Scenario::generate(ProtocolKind::Gamma { k: 4 }, params(), &mut rng, 8);
        assert!(run_scenario(&s, 500_000).failure.is_none());
        let failure = differential_failure(&s, Duration::from_micros(400), Duration::from_secs(20));
        assert!(failure.is_none(), "{}", failure.unwrap());
    }
}
