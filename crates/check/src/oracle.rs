//! Invariant oracles: everything a scenario's run is checked against.
//!
//! A scenario fails when *any* of the following is violated, in this order:
//!
//! 1. **Model** — the runner itself rejects the run (nondeterminism,
//!    adversary out of bounds, automaton refusing an applicable action).
//!    Legal-by-construction scenarios should never trip this; when one
//!    does, either the generator or the model is broken.
//! 2. **Termination** — the event budget runs out before quiescence.
//! 3. **Violation** — the `good(A)` trace checker finds a safety/liveness
//!    breach (prefix property, step spacing, delivery window, bijection).
//! 4. **Output** — the receiver wrote something other than `X`.
//! 5. **Effort** — measured effort exceeds the paper's closed-form
//!    worst-case bound (§4 for `A^α`/`A^β`, §6 for `A^γ`).
//! 6. **Replay** — the trace does not replay through the composed formal
//!    automaton.
//! 7. **Differential** — the same scenario, run in wall-clock time over
//!    `rstp-net`'s in-memory transport with the *same* scripted delivery
//!    plan, produces a different output (checked periodically by the
//!    engine, not on every iteration).

use std::fmt;
use std::time::Duration;

use rstp_core::bounds;
use rstp_core::protocols::{
    stab_beta_transmitter, AlphaReceiver, AlphaTransmitter, AltBitReceiver, AltBitTransmitter,
    BetaReceiver, BetaTransmitter, FramedReceiver, FramedTransmitter, GammaReceiver,
    GammaTransmitter, PipelinedReceiver, PipelinedTransmitter, StabBetaReceiver,
    StabStenningReceiver, StabStenningTransmitter, StenningReceiver, StenningTransmitter,
};
use rstp_net::{run_transfer_mem_scripted, DriverOutcome, Pace, TransferConfig};
use rstp_sim::checker::{check_trace, CheckConfig};
use rstp_sim::harness::RunConfig;
use rstp_sim::replay::replay_trace;
use rstp_sim::{run_corrupted, run_with_adversaries, Outcome, ProtocolKind, SimTrace};

use crate::scenario::Scenario;

/// Which oracle rejected the scenario. Shrinking preserves the kind: a
/// candidate only counts as "still failing" when it fails the same way.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The runner rejected the run — a model or generator bug.
    Model,
    /// The run did not quiesce within the event budget.
    Termination,
    /// The `good(A)` trace checker found a violation.
    Violation,
    /// The receiver's output differs from the input.
    Output,
    /// Measured effort exceeds the closed-form worst-case bound.
    Effort,
    /// The trace does not replay through the composed formal automaton.
    Replay,
    /// Simulated and wall-clock runs of the same scenario disagree.
    Differential,
    /// After a scripted state corruption, the written suffix never
    /// converged back to the input (stabilizing protocols only).
    Convergence,
    /// The run converged, but later than the documented stabilization-time
    /// bound allows.
    StabilizationTime,
    /// A recorded run acknowledged a write the final verdict does not
    /// carry — crash recovery or handover lost durable output.
    AckLoss,
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FailureKind::Model => "model",
            FailureKind::Termination => "termination",
            FailureKind::Violation => "violation",
            FailureKind::Output => "output",
            FailureKind::Effort => "effort",
            FailureKind::Replay => "replay",
            FailureKind::Differential => "differential",
            FailureKind::Convergence => "convergence",
            FailureKind::StabilizationTime => "stab-time",
            FailureKind::AckLoss => "ack-loss",
        };
        f.write_str(name)
    }
}

/// One concrete oracle rejection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Failure {
    /// Which oracle fired.
    pub kind: FailureKind,
    /// Human-readable evidence.
    pub detail: String,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

/// The outcome of running every simulation-side oracle on one scenario.
#[derive(Clone, Debug)]
pub struct ScenarioRun {
    /// The recorded trace (empty when the runner rejected the scenario).
    pub trace: SimTrace,
    /// Whether the run quiesced (false also covers runner rejection).
    pub quiescent: bool,
    /// Number of trace events.
    pub events: u64,
    /// The first oracle rejection, if any.
    pub failure: Option<Failure>,
}

/// Runs `scenario` through the simulator and all simulation-side oracles
/// (1–6 above). The differential oracle is separate — see
/// [`differential_failure`].
///
/// Scenarios scripting a state corruption run under [`run_corrupted`] and
/// are judged by the convergence and stabilization-time oracles instead of
/// the clean-run ones: a corrupted run legitimately writes garbage during
/// its stabilization window, so the prefix/output/effort/replay oracles do
/// not apply to it.
#[must_use]
pub fn run_scenario(scenario: &Scenario, max_events: u64) -> ScenarioRun {
    let cfg = RunConfig {
        kind: scenario.kind,
        params: scenario.params,
        d_lo_ticks: 0,
        max_events,
        record_trace: true,
        ..RunConfig::default()
    };
    let mut step = scenario.step_adversary();
    let mut delivery = scenario.delivery_adversary();

    let model_failure = |e: String| ScenarioRun {
        trace: SimTrace::default(),
        quiescent: false,
        events: 0,
        failure: Some(Failure {
            kind: FailureKind::Model,
            detail: e,
        }),
    };

    if let Some(spec) = scenario.corruption {
        let (run, report) =
            match run_corrupted(&cfg, &scenario.input, &mut step, &mut delivery, spec) {
                Ok(pair) => pair,
                Err(e) => return model_failure(e.to_string()),
            };
        let quiescent = run.outcome == Outcome::Quiescent;
        let events = run.trace.events().len() as u64;
        let failure = if report.applied() {
            corruption_failure(scenario, &run.trace, quiescent, &report)
        } else {
            // The run finished before the fault fired: an ordinary clean
            // run, judged by the clean-run oracles.
            first_failure(scenario, &run.trace, quiescent, &run.metrics)
        };
        return ScenarioRun {
            trace: run.trace,
            quiescent,
            events,
            failure,
        };
    }

    let run = match run_with_adversaries(&cfg, &scenario.input, &mut step, &mut delivery) {
        Ok(run) => run,
        Err(e) => return model_failure(e.to_string()),
    };
    let quiescent = run.outcome == Outcome::Quiescent;
    let events = run.trace.events().len() as u64;
    let failure = first_failure(scenario, &run.trace, quiescent, &run.metrics);
    ScenarioRun {
        trace: run.trace,
        quiescent,
        events,
        failure,
    }
}

/// The corrupted-run oracles: **convergence** (the written suffix must
/// settle back onto `X`, up to a completeness floor derived from where the
/// corruption landed) and **stabilization time** (the last divergent write
/// must fall within the documented bound after the fault struck).
fn corruption_failure(
    scenario: &Scenario,
    trace: &SimTrace,
    quiescent: bool,
    report: &rstp_sim::CorruptionReport,
) -> Option<Failure> {
    use rstp_core::protocols::stabilizing::{
        stab_beta_bits_per_block, stab_beta_bound, stab_stenning_ack_alphabet, stab_stenning_bound,
        REG_BETA_R_PENDING_LEN, REG_BETA_T_BLOCK, REG_STAB_R_PENDING_ACK, REG_STAB_T_NEXT,
    };

    if !quiescent {
        return Some(Failure {
            kind: FailureKind::Termination,
            detail: format!(
                "corrupted run never quiesced within the budget ({} events; {report})",
                trace.events().len()
            ),
        });
    }

    let input = &scenario.input;
    let n = input.len();
    let written = trace.written();

    // Per-kind: the completeness floor (how many final messages of `X`
    // must provably survive the fault), the matched tail length, the
    // number of stabilization-window garbage writes *preceding* that
    // tail, and the stabilization-time bound in ticks.
    let (floor, matched, garbage_writes, bound) = match scenario.kind {
        ProtocolKind::StabStenning { timeout_steps } => {
            // Every message from the corrupted `next` on must be delivered,
            // minus one slot per in-flight packet (a stale or rewritten ack
            // can fake one advance each), one slot if the corrupted receiver
            // was loaded with a pending ack (it is sent on its next step and
            // can tag-alias into a fake advance exactly like a stale one),
            // and a two-message allowance for the seam itself (one tag-alias
            // re-ack, one boundary loss).
            let next_c = report.t_regs[REG_STAB_T_NEXT] as usize;
            let pending =
                usize::from(report.r_regs[REG_STAB_R_PENDING_ACK] != stab_stenning_ack_alphabet());
            let floor = n.saturating_sub(next_c + report.in_flight as usize + pending + 2);
            let matched = longest_end_aligned_suffix(&written, input);
            (
                floor,
                matched,
                written.len() - matched,
                stab_stenning_bound(scenario.params, timeout_steps),
            )
        }
        ProtocolKind::StabBeta { k } => {
            // The transmitter resumes at block `j0`; its first block may
            // straddle the corrupted partial burst, stale in-flight symbols
            // shift the framing, and the receiver's decoded cap can
            // truncate the tail by the injected garbage — hence the wider
            // slack. The surviving tail of `X` is contiguous in `written`
            // but not necessarily at its end: the receiver may flush
            // bounded leftovers (misframed cap overrun, end-of-run pending
            // bits) *after* it, so the tail is searched anywhere in the
            // written word and only the writes before it count as
            // stabilization-window garbage.
            let b = stab_beta_bits_per_block(scenario.params, k) as usize;
            let j0 = report.t_regs[REG_BETA_T_BLOCK] as usize;
            let pending = report.r_regs[REG_BETA_R_PENDING_LEN] as usize;
            let floor =
                n.saturating_sub((j0 + 1) * b + pending + report.in_flight as usize + 2 * b);
            let (matched, tail_start) = longest_input_tail_occurrence(&written, input);
            (
                floor,
                matched,
                tail_start,
                stab_beta_bound(scenario.params, k),
            )
        }
        // `run_corrupted` already rejected every other kind as a model
        // failure before this oracle runs.
        _ => return None,
    };

    if matched < floor {
        return Some(Failure {
            kind: FailureKind::Convergence,
            detail: format!(
                "converged tail has {matched} messages, completeness floor is {floor} \
                 (wrote {} of {n}; {report})",
                written.len()
            ),
        });
    }

    // Everything written before the converged tail is stabilization-window
    // garbage; the last such write must land within the bound.
    let applied_at = report
        .applied_at
        .expect("oracle runs only on applied faults");
    let deadline = applied_at + rstp_automata::TimeDelta::from_ticks(bound);
    if garbage_writes > 0 {
        let last_garbage = trace
            .events()
            .iter()
            .filter(|e| matches!(e.action, rstp_core::RstpAction::Write(_)))
            .nth(garbage_writes - 1)
            .expect("trace contains every counted write");
        if last_garbage.time > deadline {
            return Some(Failure {
                kind: FailureKind::StabilizationTime,
                detail: format!(
                    "last divergent write at {}, bound allows {} ticks after the fault at {} \
                     ({report})",
                    last_garbage.time, bound, applied_at
                ),
            });
        }
    }
    None
}

/// Length of the longest suffix of `written` that is an *end-aligned*
/// suffix of `input`.
fn longest_end_aligned_suffix(written: &[bool], input: &[bool]) -> usize {
    let max = written.len().min(input.len());
    (0..=max)
        .rev()
        .find(|&l| written[written.len() - l..] == input[input.len() - l..])
        .unwrap_or(0)
}

/// The longest tail of `input` appearing as a contiguous substring
/// anywhere in `written`, with the earliest start index of that
/// occurrence. `(0, 0)` when no tail occurs at all.
fn longest_input_tail_occurrence(written: &[bool], input: &[bool]) -> (usize, usize) {
    let max = written.len().min(input.len());
    for l in (1..=max).rev() {
        let tail = &input[input.len() - l..];
        if let Some(start) = written.windows(l).position(|w| w == tail) {
            return (l, start);
        }
    }
    (0, 0)
}

fn first_failure(
    scenario: &Scenario,
    trace: &SimTrace,
    quiescent: bool,
    metrics: &rstp_sim::RunMetrics,
) -> Option<Failure> {
    if !quiescent {
        return Some(Failure {
            kind: FailureKind::Termination,
            detail: format!(
                "event budget exhausted after {} events without quiescence",
                trace.events().len()
            ),
        });
    }

    let faulty = !scenario.is_fault_free();
    let mut check = CheckConfig::from_params(scenario.params);
    check.expect_complete = !faulty;
    check.expect_bijection = !faulty;
    if faulty {
        // Under injected drops the checker's per-value FIFO matching pairs
        // a delivery against a dropped earlier send, so the Δ upper bound
        // would false-alarm; the prefix, liveness, and Σ checks stay on.
        check.d_hi = rstp_automata::TimeDelta::from_ticks(u64::MAX / 4);
    }
    let report = check_trace(trace, &check);
    if let Some(v) = report.violations.first() {
        return Some(Failure {
            kind: FailureKind::Violation,
            detail: v.to_string(),
        });
    }

    if trace.written() != scenario.input {
        return Some(Failure {
            kind: FailureKind::Output,
            detail: format!(
                "receiver wrote {} bits, input had {} (first divergence at {:?})",
                trace.written().len(),
                scenario.input.len(),
                scenario
                    .input
                    .iter()
                    .zip(trace.written())
                    .position(|(a, b)| *a != b)
            ),
        });
    }

    if let Some(f) = effort_failure(scenario, metrics) {
        return Some(f);
    }
    replay_failure(scenario, trace)
}

/// Compares measured effort against the protocol's universal worst-case
/// bound. Only `A^α`/`A^β`/`A^γ` have closed forms; other kinds pass.
fn effort_failure(scenario: &Scenario, metrics: &rstp_sim::RunMetrics) -> Option<Failure> {
    let n = scenario.input.len();
    let effort = metrics.effort(n)?;
    let bound = match scenario.kind {
        ProtocolKind::Alpha => bounds::alpha_effort(scenario.params),
        ProtocolKind::Beta { k } => bounds::passive_upper_finite(scenario.params, k, n),
        ProtocolKind::Gamma { k } => bounds::active_upper_finite(scenario.params, k, n),
        _ => return None,
    };
    // Small epsilon so f64 rounding in the closed forms never false-alarms.
    if effort > bound + 1e-9 {
        return Some(Failure {
            kind: FailureKind::Effort,
            detail: format!("measured effort {effort:.4} exceeds worst-case bound {bound:.4}"),
        });
    }
    None
}

/// Replays the trace through the composed formal automaton, mirroring the
/// constructions of `tests/replay_all.rs`.
fn replay_failure(scenario: &Scenario, trace: &SimTrace) -> Option<Failure> {
    // The composed automaton's channel is a pure delay: injected drops and
    // duplicates have no formal counterpart, so faulty traces cannot replay.
    if !scenario.is_fault_free() {
        return None;
    }
    let p = scenario.params;
    let input = scenario.input.clone();
    let result = match scenario.kind {
        ProtocolKind::Alpha => {
            replay_trace(AlphaTransmitter::new(p, input), AlphaReceiver::new(), trace)
                .map(|_| ())
                .map_err(|e| e.to_string())
        }
        ProtocolKind::Beta { k } => build_and_replay(trace, || {
            Ok((
                BetaTransmitter::new(p, k, &input)?,
                BetaReceiver::new(p, k, input.len())?,
            ))
        }),
        ProtocolKind::Gamma { k } => build_and_replay(trace, || {
            Ok((
                GammaTransmitter::new(p, k, &input)?,
                GammaReceiver::new(p, k, input.len())?,
            ))
        }),
        ProtocolKind::AltBit { timeout_steps } => replay_trace(
            AltBitTransmitter::new(p, input, timeout_steps),
            AltBitReceiver::new(),
            trace,
        )
        .map(|_| ())
        .map_err(|e| e.to_string()),
        ProtocolKind::Framed { k } => build_and_replay(trace, || {
            Ok((
                FramedTransmitter::new(p, k, &input)?,
                FramedReceiver::new(p, k)?,
            ))
        }),
        ProtocolKind::Stenning { timeout_steps } => replay_trace(
            StenningTransmitter::new(p, input, timeout_steps),
            StenningReceiver::new(),
            trace,
        )
        .map(|_| ())
        .map_err(|e| e.to_string()),
        ProtocolKind::Pipelined { k, window } => build_and_replay(trace, || {
            Ok((
                PipelinedTransmitter::with_window(p, k, window, &input)?,
                PipelinedReceiver::with_window(p, k, window, input.len())?,
            ))
        }),
        ProtocolKind::StabStenning { timeout_steps } => replay_trace(
            StabStenningTransmitter::new(p, input, timeout_steps),
            StabStenningReceiver::new(),
            trace,
        )
        .map(|_| ())
        .map_err(|e| e.to_string()),
        ProtocolKind::StabBeta { k } => build_and_replay(trace, || {
            Ok((
                stab_beta_transmitter(p, k, &input)?,
                StabBetaReceiver::new(p, k, input.len())?,
            ))
        }),
        // BetaWindow needs a d_lo > 0 regime the fuzzer does not target.
        ProtocolKind::BetaWindow { .. } => Ok(()),
    };
    result.err().map(|detail| Failure {
        kind: FailureKind::Replay,
        detail,
    })
}

fn build_and_replay<T, R>(
    trace: &SimTrace,
    build: impl FnOnce() -> Result<(T, R), rstp_core::ProtocolError>,
) -> Result<(), String>
where
    T: rstp_automata::Automaton<Action = rstp_core::RstpAction>,
    R: rstp_automata::Automaton<Action = rstp_core::RstpAction>,
{
    let (t, r) = build().map_err(|e| e.to_string())?;
    replay_trace(t, r, trace)
        .map(|_| ())
        .map_err(|e| e.to_string())
}

/// Runs the scenario a second time in wall-clock over `MemTransport` with
/// the same scripted delivery plan and compares outputs. Only meaningful
/// for fault-free scenarios of wire-supported protocols; others return
/// `None` immediately.
#[must_use]
pub fn differential_failure(
    scenario: &Scenario,
    tick: Duration,
    max_wall: Duration,
) -> Option<Failure> {
    // Corrupted runs have no wall-clock counterpart: the net transport
    // cannot script a mid-run register overwrite.
    if !scenario.is_fault_free()
        || scenario.corruption.is_some()
        || matches!(scenario.kind, ProtocolKind::BetaWindow { .. })
    {
        return None;
    }
    let mut config = TransferConfig::new(scenario.params, tick, 0).with_pace(Pace::Slow);
    config.max_wall = max_wall;
    let report = match run_transfer_mem_scripted(
        scenario.kind,
        &scenario.input,
        &config,
        scenario.data.clone(),
        scenario.ack.clone(),
    ) {
        Ok(report) => report,
        Err(e) => {
            return Some(Failure {
                kind: FailureKind::Differential,
                detail: format!("net run failed where sim succeeded: {e}"),
            })
        }
    };
    if report.receiver.outcome != DriverOutcome::Completed {
        return Some(Failure {
            kind: FailureKind::Differential,
            detail: "net receiver timed out where sim quiesced".into(),
        });
    }
    if report.output() != scenario.input {
        return Some(Failure {
            kind: FailureKind::Differential,
            detail: format!(
                "net wrote {} bits, sim wrote {}",
                report.output().len(),
                scenario.input.len()
            ),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rstp_core::TimingParams;

    fn params() -> TimingParams {
        TimingParams::from_ticks(1, 2, 6).unwrap()
    }

    // Gamma is deliberately broken under the injected-bug cfg, so the
    // healthy-protocol oracles only hold in a normal build.
    #[cfg(not(rstp_check_inject_ack_bug))]
    #[test]
    fn random_legal_scenarios_pass_every_oracle() {
        let mut rng = StdRng::seed_from_u64(7);
        for kind in [
            ProtocolKind::Alpha,
            ProtocolKind::Beta { k: 4 },
            ProtocolKind::Gamma { k: 4 },
            ProtocolKind::Stenning {
                timeout_steps: None,
            },
        ] {
            for _ in 0..25 {
                let s = Scenario::generate(kind, params(), &mut rng, 12);
                let run = run_scenario(&s, 500_000);
                assert!(
                    run.failure.is_none(),
                    "{}: {}",
                    kind.name(),
                    run.failure.unwrap()
                );
                assert!(run.quiescent);
            }
        }
    }

    // The stabilizing family is deliberately broken under the injected
    // stab-bug cfg; the engine's acceptance test covers that build.
    #[cfg(not(rstp_check_inject_stab_bug))]
    #[test]
    fn stabilizing_scenarios_pass_every_oracle_clean_and_corrupted() {
        let mut rng = StdRng::seed_from_u64(23);
        for kind in [
            ProtocolKind::StabStenning {
                timeout_steps: None,
            },
            ProtocolKind::StabBeta { k: 4 },
        ] {
            let mut corrupted = 0;
            for _ in 0..30 {
                let s = Scenario::generate(kind, params(), &mut rng, 12);
                corrupted += usize::from(s.corruption.is_some());
                let run = run_scenario(&s, 500_000);
                assert!(
                    run.failure.is_none(),
                    "{}: {}",
                    kind.name(),
                    run.failure.unwrap()
                );
                assert!(run.quiescent);
            }
            assert!(
                corrupted > 0,
                "{}: no corrupted scenarios drawn",
                kind.name()
            );
        }
    }

    #[test]
    fn suffix_matchers_measure_what_the_floors_need() {
        let x = [true, false, false, true, true, false];
        // End-aligned: garbage prefix, converged tail.
        let w = [true, false, true, true, false];
        assert_eq!(longest_end_aligned_suffix(&w, &x), 4);
        // Occurrence: one garbage write before X's 4-long tail, and the
        // receiver's end-of-run flush appends garbage after it — the tail
        // is still found, anchored at write index 1.
        let w = [true, false, true, true, false, false];
        assert_eq!(longest_input_tail_occurrence(&w, &x), (4, 1));
        assert_eq!(longest_end_aligned_suffix(&[], &x), 0);
        assert_eq!(longest_input_tail_occurrence(&[], &x), (0, 0));
    }

    #[cfg(not(rstp_check_inject_ack_bug))]
    #[test]
    fn differential_agrees_on_a_scripted_gamma_run() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = Scenario::generate(ProtocolKind::Gamma { k: 4 }, params(), &mut rng, 8);
        assert!(run_scenario(&s, 500_000).failure.is_none());
        let failure = differential_failure(&s, Duration::from_micros(400), Duration::from_secs(20));
        assert!(failure.is_none(), "{}", failure.unwrap());
    }
}
