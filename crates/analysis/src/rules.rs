//! The invariant lint rules: repo-specific, deny-by-default.
//!
//! Each rule protects a paper-level guarantee (see `docs/ANALYSIS.md`
//! for the catalog). Rules scan the token stream of non-test code; a
//! match is a [`Finding`], suppressible only through the checked-in
//! baseline file with a per-entry justification.

use crate::source::{matches_seq, Pat, SourceFile};

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (kebab-case, stable).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the specific violation.
    pub message: String,
}

/// Catalog metadata for one rule.
pub struct RuleInfo {
    /// Stable identifier.
    pub id: &'static str,
    /// The paper-level invariant the rule protects.
    pub invariant: &'static str,
    /// What the rule matches.
    pub description: &'static str,
}

/// The full rule catalog (token lints, the workspace-level wire-const
/// rule, and the engine-level lock-order / baseline hygiene rules).
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "wall-clock-outside-driver",
        invariant: "pacing within [c1,c2]: time flows only through the driver/timer-wheel clock",
        description: "Instant::now / SystemTime::now outside net's clock+driver and serve's \
                      shard pacer",
    },
    RuleInfo {
        id: "unbounded-channel",
        invariant: "bounded queues absorb load as backpressure, never as unbounded memory",
        description: "std::sync::mpsc::channel() in net/serve; bounded sync_channel only",
    },
    RuleInfo {
        id: "panic-in-protocol-path",
        invariant: "Y is always a prefix of X: protocol crates never panic mid-transfer",
        description: "unwrap/expect/panic!/unreachable!/todo!/unimplemented! in non-test code \
                      of core/automata/codec/sim",
    },
    RuleInfo {
        id: "sleep-outside-pacer",
        invariant: "delivery within d: blocking sleeps live only in the pacer clock",
        description: "thread::sleep outside net's TickClock in net/serve/cli non-test code",
    },
    RuleInfo {
        id: "wire-const-drift",
        invariant: "wire compatibility: frame-size prose matches the declared consts (v1/v2)",
        description: "a `N-byte` frame mention in code docs or markdown disagrees with \
                      FRAME_LEN / FRAME_LEN_V2",
    },
    RuleInfo {
        id: "lock-order-cycle",
        invariant: "progress under load: the serve lock acquisition graph stays acyclic",
        description: "a cycle in the static Mutex/RwLock acquisition graph of crates/serve",
    },
    RuleInfo {
        id: "lock-order-drift",
        invariant: "lock-order regressions diff loudly",
        description: "analysis/lock-order.toml no longer matches the extracted graph",
    },
    RuleInfo {
        id: "panic-reachable",
        invariant: "Y is always a prefix of X: no protocol entry point reaches a panic",
        description: "an unwrap/expect/panic!/variable-index sink reachable from \
                      Automaton::step/output, codec encode/decode, the serve shard tick, or \
                      the record append path — reported with the full call chain",
    },
    RuleInfo {
        id: "blocking-in-nonblocking",
        invariant: "the record ring and serve per-frame loops are strictly nonblocking",
        description: "a lock()/recv()/bounded send()/sleep/join sink reachable from \
                      RingProducer::push, ShardRecorder::record, EgressSink::send_batch, \
                      ServeTransport::recv_batch, or SessionEndpoint::step/apply_recv",
    },
    RuleInfo {
        id: "alloc-in-steady-state",
        invariant: "allocation-free steady state (ROADMAP 1/4): the per-frame path never \
                    allocates",
        description: "a to_vec/to_owned/format!/vec!/Box::new/container-ctor sink reachable \
                      from the per-frame entry points",
    },
    RuleInfo {
        id: "stale-baseline",
        invariant: "the baseline shrinks monotonically: fixed findings leave the baseline",
        description: "a baseline entry that no current finding matches",
    },
    RuleInfo {
        id: "baseline-parse",
        invariant: "every suppression carries a justification",
        description: "analysis/baseline.toml is malformed or missing a reason",
    },
];

/// Paths (workspace-relative prefixes) where wall-clock reads are the
/// point: the tick clock itself, the single-session driver, and the
/// shard step loop that mirrors the driver's accounting deadline by
/// deadline.
const WALL_CLOCK_ALLOWED: &[&str] = &[
    "crates/net/src/clock.rs",
    "crates/net/src/driver.rs",
    "crates/serve/src/shard.rs",
];

/// The one blocking-sleep site that *is* the pacer.
const SLEEP_ALLOWED: &[&str] = &["crates/net/src/clock.rs"];

/// Crates whose non-test code must never panic (the protocol path).
const PANIC_SCOPE: &[&str] = &[
    "crates/core/src/",
    "crates/automata/src/",
    "crates/codec/src/",
    "crates/sim/src/",
    "crates/record/src/",
];

/// Crates where channels must be bounded and sleeps scrutinised.
const CHANNEL_SCOPE: &[&str] = &["crates/net/src/", "crates/serve/src/", "crates/record/src/"];
const SLEEP_SCOPE: &[&str] = &["crates/net/src/", "crates/serve/src/", "crates/cli/src/"];

/// Everything the wall-clock rule patrols: all first-party crate
/// sources plus the facade crate.
const WALL_CLOCK_SCOPE: &[&str] = &["crates/", "src/"];

fn in_scope(path: &str, scope: &[&str]) -> bool {
    scope.iter().any(|p| path.starts_with(p))
}

/// Runs every token-level rule against one file.
#[must_use]
pub fn run_token_rules(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    wall_clock_rule(file, &mut findings);
    unbounded_channel_rule(file, &mut findings);
    panic_rule(file, &mut findings);
    sleep_rule(file, &mut findings);
    findings
}

fn wall_clock_rule(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(&file.path, WALL_CLOCK_SCOPE) || in_scope(&file.path, WALL_CLOCK_ALLOWED) {
        return;
    }
    use Pat::{Id, P};
    for (i, t) in file.code_tokens() {
        for src in ["Instant", "SystemTime"] {
            if matches_seq(&file.tokens, i, &[Id(src), P(':'), P(':'), Id("now")]) {
                out.push(Finding {
                    rule: "wall-clock-outside-driver",
                    path: file.path.clone(),
                    line: t.line,
                    message: format!(
                        "{src}::now() outside the driver clock — route timing through \
                         TickClock so [c1,c2] accounting sees every read"
                    ),
                });
            }
        }
    }
}

fn unbounded_channel_rule(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(&file.path, CHANNEL_SCOPE) {
        return;
    }
    use Pat::{Id, P};
    // `use ...::mpsc::channel;` style imports make later bare
    // `channel(...)` calls unbounded too.
    let imported_bare = file.tokens.windows(5).any(|w| {
        w[0].is_ident("mpsc")
            && w[1].is_punct(':')
            && w[2].is_punct(':')
            && w[3].is_ident("channel")
            && !w[4].is_punct('(')
    });
    // True when token `i` opens a call: `(` directly, or a turbofish
    // `::<...>` followed by `(`.
    let calls_at = |i: usize| {
        if matches_seq(&file.tokens, i, &[P('(')]) {
            return true;
        }
        if !matches_seq(&file.tokens, i, &[P(':'), P(':'), P('<')]) {
            return false;
        }
        let mut depth = 0usize;
        let mut j = i + 2;
        while let Some(t) = file.tokens.get(j) {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    return matches_seq(&file.tokens, j + 1, &[P('(')]);
                }
            }
            j += 1;
        }
        false
    };
    for (i, t) in file.code_tokens() {
        let qualified = matches_seq(
            &file.tokens,
            i,
            &[Id("mpsc"), P(':'), P(':'), Id("channel")],
        ) && calls_at(i + 4);
        let bare = imported_bare
            && t.is_ident("channel")
            && calls_at(i + 1)
            && !file
                .tokens
                .get(i.wrapping_sub(1))
                .is_some_and(|p| p.is_punct(':') || p.is_punct('.') || p.is_ident("fn"));
        if qualified || bare {
            out.push(Finding {
                rule: "unbounded-channel",
                path: file.path.clone(),
                line: t.line,
                message: "mpsc::channel() is unbounded — use sync_channel(cap) so overload \
                          becomes backpressure, not memory growth"
                    .to_string(),
            });
        }
    }
}

fn panic_rule(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(&file.path, PANIC_SCOPE) {
        return;
    }
    use Pat::{Id, P};
    for (i, t) in file.code_tokens() {
        for method in ["unwrap", "expect"] {
            if matches_seq(&file.tokens, i, &[P('.'), Id(method), P('(')]) {
                // The checked-guard idiom (`a.checked_add(b).expect(...)`)
                // is machine-verified safe intent, not an unvalidated
                // panic; the call graph's sink scanner shares the check.
                if crate::callgraph::checked_guard_before(&file.tokens, i) {
                    continue;
                }
                let line = file.tokens[i + 1].line;
                out.push(Finding {
                    rule: "panic-in-protocol-path",
                    path: file.path.clone(),
                    line,
                    message: format!(
                        ".{method}() can panic mid-transfer — return a typed error or make \
                         the invariant unrepresentable"
                    ),
                });
            }
        }
        for mac in ["panic", "unreachable", "todo", "unimplemented"] {
            if t.is_ident(mac) && matches_seq(&file.tokens, i + 1, &[P('!')]) {
                out.push(Finding {
                    rule: "panic-in-protocol-path",
                    path: file.path.clone(),
                    line: t.line,
                    message: format!("{mac}! aborts the protocol path"),
                });
            }
        }
    }
}

fn sleep_rule(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_scope(&file.path, SLEEP_SCOPE) || in_scope(&file.path, SLEEP_ALLOWED) {
        return;
    }
    use Pat::{Id, P};
    for (i, t) in file.code_tokens() {
        if matches_seq(
            &file.tokens,
            i,
            &[Id("thread"), P(':'), P(':'), Id("sleep"), P('(')],
        ) {
            out.push(Finding {
                rule: "sleep-outside-pacer",
                path: file.path.clone(),
                line: t.line,
                message: "thread::sleep outside TickClock::sleep_until — an unaccounted stall \
                          can silently breach the c2 window"
                    .to_string(),
            });
        }
    }
}

/// The workspace-level wire-const rule: extracts `FRAME_LEN` /
/// `FRAME_LEN_V2` from `crates/net/src/wire.rs` and checks every
/// `N-byte` frame mention in first-party sources and docs against them.
///
/// `texts` is `(workspace-relative path, raw file text)` for every file
/// the rule should patrol — the engine passes net/serve sources plus
/// `README.md` and `docs/*.md`.
#[must_use]
pub fn wire_const_rule(texts: &[(String, String)]) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some((wire_path, wire_text)) = texts
        .iter()
        .find(|(p, _)| p.ends_with("crates/net/src/wire.rs") || p == "crates/net/src/wire.rs")
    else {
        return out;
    };
    let wire = SourceFile::new(wire_path, wire_text);
    let v1 = const_value(&wire, "FRAME_LEN", None);
    let v2 = const_value(&wire, "FRAME_LEN_V2", v1);
    let (Some(v1), Some(v2)) = (v1, v2) else {
        out.push(Finding {
            rule: "wire-const-drift",
            path: wire_path.clone(),
            line: 1,
            message: "cannot locate FRAME_LEN / FRAME_LEN_V2 declarations".to_string(),
        });
        return out;
    };
    for (path, text) in texts {
        for (lineno, line) in text.lines().enumerate() {
            let lower = line.to_ascii_lowercase();
            if !lower.contains("frame") {
                continue;
            }
            for n in byte_mentions(line) {
                if n != v1 && n != v2 {
                    out.push(Finding {
                        rule: "wire-const-drift",
                        path: path.clone(),
                        line: u32::try_from(lineno + 1).unwrap_or(u32::MAX),
                        message: format!(
                            "\"{n}-byte\" frame mention disagrees with wire.rs \
                             (v1 = {v1}, v2 = {v2})"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Evaluates `const NAME: usize = <int>;` or `= FRAME_LEN + <int>;`
/// (`base` supplies the referenced const's value).
fn const_value(file: &SourceFile, name: &str, base: Option<u64>) -> Option<u64> {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if !(toks[i].is_ident("const") && toks.get(i + 1).is_some_and(|t| t.is_ident(name))) {
            continue;
        }
        // Scan the initializer between `=` and `;`.
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct('=') {
            j += 1;
        }
        let mut value: Option<u64> = None;
        while j < toks.len() && !toks[j].is_punct(';') {
            let t = &toks[j];
            if let Some(n) = parse_int(&t.text) {
                value = Some(value.unwrap_or(0) + n);
            } else if t.is_ident("FRAME_LEN") && name != "FRAME_LEN" {
                value = Some(value.unwrap_or(0) + base?);
            }
            j += 1;
        }
        return value;
    }
    None
}

fn parse_int(text: &str) -> Option<u64> {
    let digits: String = text.chars().take_while(char::is_ascii_digit).collect();
    if digits.is_empty() || digits.len() != text.len() && !text.starts_with(&digits) {
        return None;
    }
    // Reject idents like `u32` (starts non-digit) — handled by emptiness.
    let rest = &text[digits.len()..];
    if !rest.is_empty() && !rest.chars().all(|c| c.is_ascii_alphabetic() || c == '_') {
        return None;
    }
    digits.parse().ok()
}

/// Finds every `N-byte` mention in a raw line and yields `N`.
fn byte_mentions(line: &str) -> Vec<u64> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if line[i..].starts_with("-byte") {
                if let Ok(n) = line[start..i].parse() {
                    out.push(n);
                }
            }
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::new(path, src)
    }

    #[test]
    fn wall_clock_flagged_outside_allowed_modules() {
        let f = file(
            "crates/serve/src/swarm.rs",
            "fn f() { let t = Instant::now(); }",
        );
        let got = run_token_rules(&f);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].rule, "wall-clock-outside-driver");
    }

    #[test]
    fn wall_clock_allowed_in_driver_and_test_code() {
        let driver = file(
            "crates/net/src/driver.rs",
            "fn f() { let t = Instant::now(); }",
        );
        assert!(run_token_rules(&driver).is_empty());
        let test = file(
            "crates/serve/src/swarm.rs",
            "#[cfg(test)] mod t { fn f() { let t = Instant::now(); } }",
        );
        assert!(run_token_rules(&test).is_empty());
    }

    #[test]
    fn unbounded_channel_flagged_qualified_and_bare() {
        let f = file(
            "crates/net/src/mem.rs",
            "use std::sync::mpsc::channel;\nfn f() { let (tx, rx) = channel(); }",
        );
        let got = run_token_rules(&f);
        assert_eq!(got.len(), 1, "{got:?}");
        let f = file(
            "crates/net/src/mem.rs",
            "fn f() { let (tx, rx) = mpsc::channel(); }",
        );
        assert_eq!(run_token_rules(&f).len(), 1);
        // A turbofish does not hide the call.
        let f = file(
            "crates/net/src/mem.rs",
            "fn f() { let (tx, rx) = mpsc::channel::<(Instant, Vec<u8>)>(); }",
        );
        assert_eq!(run_token_rules(&f).len(), 1);
        let ok = file(
            "crates/net/src/mem.rs",
            "fn f() { let (tx, rx) = mpsc::sync_channel(64); }",
        );
        assert!(run_token_rules(&ok).is_empty());
    }

    #[test]
    fn panic_rule_catches_all_forms_in_scope_only() {
        let f = file(
            "crates/core/src/protocols/beta.rs",
            "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"n\"); unreachable!(); }",
        );
        assert_eq!(run_token_rules(&f).len(), 4);
        // Same text outside the protocol scope: quiet.
        let f = file(
            "crates/cli/src/commands.rs",
            "fn f() { x.unwrap(); panic!(\"n\"); }",
        );
        assert!(run_token_rules(&f).is_empty());
        // unwrap_or_else is not unwrap.
        let f = file(
            "crates/core/src/lib.rs",
            "fn f() { x.unwrap_or_else(|| 3); }",
        );
        assert!(run_token_rules(&f).is_empty());
    }

    #[test]
    fn sleep_rule_spares_the_pacer() {
        let f = file("crates/serve/src/server.rs", "fn f() { thread::sleep(d); }");
        assert_eq!(run_token_rules(&f).len(), 1);
        let pacer = file("crates/net/src/clock.rs", "fn f() { thread::sleep(d); }");
        assert!(run_token_rules(&pacer).is_empty());
    }

    #[test]
    fn wire_const_rule_checks_docs_against_declared_consts() {
        let wire = (
            "crates/net/src/wire.rs".to_string(),
            "pub const FRAME_LEN: usize = 36;\npub const FRAME_LEN_V2: usize = FRAME_LEN + 4;"
                .to_string(),
        );
        let good = (
            "docs/NET.md".to_string(),
            "The 36-byte v1 frame and the 40-byte v2 session frame.".to_string(),
        );
        let bad = (
            "docs/SERVE.md".to_string(),
            "Each 44-byte frame carries a session id.".to_string(),
        );
        let texts = vec![wire, good, bad];
        let got = wire_const_rule(&texts);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].path, "docs/SERVE.md");
        assert!(got[0].message.contains("44-byte"));
    }

    #[test]
    fn wire_const_rule_ignores_non_frame_byte_mentions() {
        let texts = vec![
            (
                "crates/net/src/wire.rs".to_string(),
                "pub const FRAME_LEN: usize = 36;\npub const FRAME_LEN_V2: usize = FRAME_LEN + 4;"
                    .to_string(),
            ),
            (
                "docs/NET.md".to_string(),
                "A 64-byte cache line is not a frame size... wait, it mentions frame.\n\
                 A 64-byte cache line alignment note."
                    .to_string(),
            ),
        ];
        // First line contains "frame" → flagged; second does not → quiet.
        assert_eq!(wire_const_rule(&texts).len(), 1);
    }
}
