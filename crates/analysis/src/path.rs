//! Path scanning over the token stream: the shared machinery that lets
//! call resolution see through turbofish (`Foo::<T>::bar`) and
//! fully-qualified (`<T as Trait>::method`) call syntax instead of
//! mis-tokenizing them as comparison soup.
//!
//! The lexer stays character-level — `::<` is three punct tokens — so
//! everything path-shaped is reassembled here, with the same robustness
//! contract: any token sequence yields `Some`/`None`, never a panic.

use crate::lexer::{Token, TokenKind};

/// A parsed path expression starting at some token index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedPath {
    /// The path's identifier segments in order (`Foo::<T>::bar` →
    /// `["Foo", "bar"]`; turbofish arguments are skipped, not kept).
    pub segments: Vec<String>,
    /// Index of the first token *after* the path (exclusive end).
    pub end: usize,
    /// True when any segment carried a turbofish (`::<...>`).
    pub turbofish: bool,
}

/// Parses a path starting at token `i`, which must be an identifier
/// (`Foo`, `crate`, `self`, ...). Consumes `seg (:: turbofish)? (::
/// seg)*` greedily. Returns `None` when `i` is not an identifier.
#[must_use]
pub fn parse_path_at(tokens: &[Token], i: usize) -> Option<ParsedPath> {
    let first = tokens.get(i)?;
    if first.kind != TokenKind::Ident {
        return None;
    }
    let mut segments = vec![first.text.clone()];
    let mut j = i + 1;
    let mut turbofish = false;
    loop {
        // A `::` separator?
        if !(is_punct(tokens, j, ':') && is_punct(tokens, j + 1, ':')) {
            break;
        }
        let after = j + 2;
        if is_punct(tokens, after, '<') {
            // Turbofish: skip the balanced angle span, then expect either
            // `::ident` (more path) or the end of the path.
            let Some(close) = skip_angles(tokens, after) else {
                break;
            };
            turbofish = true;
            j = close + 1;
            continue;
        }
        match tokens.get(after) {
            Some(t) if t.kind == TokenKind::Ident => {
                segments.push(t.text.clone());
                j = after + 1;
            }
            _ => break,
        }
    }
    Some(ParsedPath {
        segments,
        end: j,
        turbofish,
    })
}

/// A fully-qualified call prefix `<Type as Trait>::`, parsed backward
/// from the `::` that precedes the method name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QualifiedSelf {
    /// Last segment of the `Type` path (`<wire::Frame as Encode>` →
    /// `Frame`), when present.
    pub type_name: Option<String>,
    /// Last segment of the `Trait` path.
    pub trait_name: String,
}

/// Given the index of a method-name identifier whose two preceding
/// tokens are `::`, checks whether the path qualifier is a
/// `<Type as Trait>` span and parses it. `name_idx` is the token index
/// of the method name.
#[must_use]
pub fn qualified_self_before(tokens: &[Token], name_idx: usize) -> Option<QualifiedSelf> {
    // ... `>` `::` `::` name — the `>` sits at name_idx - 3.
    if name_idx < 4 {
        return None;
    }
    if !(is_punct(tokens, name_idx - 1, ':') && is_punct(tokens, name_idx - 2, ':')) {
        return None;
    }
    let close = name_idx - 3;
    if !is_punct(tokens, close, '>') {
        return None;
    }
    // Walk back to the matching `<`, tracking nesting.
    let mut depth = 0usize;
    let mut open = None;
    let mut k = close;
    loop {
        let t = tokens.get(k)?;
        if t.is_punct('>') {
            depth += 1;
        } else if t.is_punct('<') {
            depth -= 1;
            if depth == 0 {
                open = Some(k);
                break;
            }
        }
        if k == 0 {
            break;
        }
        k -= 1;
        // A `<` this far back is not a qualifier; cap the scan.
        if close - k > 64 {
            break;
        }
    }
    let open = open?;
    // Find the top-level `as` inside the span.
    let mut depth = 0usize;
    let mut as_idx = None;
    for (idx, t) in tokens.iter().enumerate().take(close).skip(open + 1) {
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && t.is_ident("as") {
            as_idx = Some(idx);
        }
    }
    let as_idx = as_idx?;
    // Trait path: last identifier at angle-depth 0 before the `>`.
    let trait_name = last_ident_in(tokens, as_idx + 1, close)?;
    // Type path: last identifier before `as` (None for `&[u8]`-shaped
    // types with no identifier of their own is fine).
    let type_name = last_ident_in(tokens, open + 1, as_idx);
    Some(QualifiedSelf {
        type_name,
        trait_name,
    })
}

/// Index just past a balanced `<...>` span opening at `open`, or `None`
/// when unbalanced. Ignores `->`/`=>` arrows so `Fn() -> T` inside
/// angles cannot desync the depth count.
#[must_use]
pub fn skip_angles(tokens: &[Token], open: usize) -> Option<usize> {
    if !is_punct(tokens, open, '<') {
        return None;
    }
    let mut depth = 0usize;
    let mut j = open;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            // `->` / `=>`: the `>` belongs to an arrow, not the angles.
            let arrow = j > 0 && (tokens[j - 1].is_punct('-') || tokens[j - 1].is_punct('='));
            if !arrow {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(j);
                }
            }
        }
        j += 1;
        if j > open + 256 {
            return None; // refuse pathological spans
        }
    }
    None
}

fn last_ident_in(tokens: &[Token], from: usize, to: usize) -> Option<String> {
    let mut depth = 0usize;
    let mut last = None;
    for t in tokens.iter().take(to.min(tokens.len())).skip(from) {
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && t.kind == TokenKind::Ident && t.text != "dyn" {
            last = Some(t.text.clone());
        }
    }
    last
}

fn is_punct(tokens: &[Token], i: usize, c: char) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn path(src: &str) -> ParsedPath {
        parse_path_at(&lex(src), 0).expect("path")
    }

    #[test]
    fn plain_paths_collect_segments() {
        let p = path("alpha::beta::gamma(x)");
        assert_eq!(p.segments, vec!["alpha", "beta", "gamma"]);
        assert!(!p.turbofish);
    }

    #[test]
    fn turbofish_is_skipped_not_split() {
        let p = path("Foo::<T, U>::bar(1)");
        assert_eq!(p.segments, vec!["Foo", "bar"]);
        assert!(p.turbofish);
        // Nested generics inside the turbofish.
        let p = path("Wheel::<Vec<Option<u8>>>::advance()");
        assert_eq!(p.segments, vec!["Wheel", "advance"]);
    }

    #[test]
    fn trailing_turbofish_belongs_to_the_path() {
        let p = path("collect::<Vec<_>>()");
        assert_eq!(p.segments, vec!["collect"]);
        assert!(p.turbofish);
        // `end` points at the `(`.
        let toks = lex("collect::<Vec<_>>()");
        assert!(toks[p.end].is_punct('('));
    }

    #[test]
    fn comparison_is_not_a_turbofish() {
        // `a :: b < c` — parse stops at the `<`, which is not after `::`.
        let p = path("a::b < c");
        assert_eq!(p.segments, vec!["a", "b"]);
        assert!(!p.turbofish);
    }

    #[test]
    fn qualified_self_parses_type_and_trait() {
        let toks = lex("<Frame as Encode>::encode(x)");
        // Find the `encode` ident.
        let idx = toks
            .iter()
            .position(|t| t.is_ident("encode"))
            .expect("encode");
        let q = qualified_self_before(&toks, idx).expect("qualified");
        assert_eq!(q.type_name.as_deref(), Some("Frame"));
        assert_eq!(q.trait_name, "Encode");
    }

    #[test]
    fn qualified_self_with_generic_type() {
        let toks = lex("<Wheel<u64> as Pop>::next(w)");
        let idx = toks.iter().position(|t| t.is_ident("next")).expect("next");
        let q = qualified_self_before(&toks, idx).expect("qualified");
        assert_eq!(q.type_name.as_deref(), Some("Wheel"));
        assert_eq!(q.trait_name, "Pop");
    }

    #[test]
    fn ordinary_method_calls_are_not_qualified() {
        let toks = lex("x.encode(y)");
        let idx = toks
            .iter()
            .position(|t| t.is_ident("encode"))
            .expect("encode");
        assert_eq!(qualified_self_before(&toks, idx), None);
    }

    #[test]
    fn unbalanced_angles_never_panic() {
        for src in ["<<<<::m(", "Foo::<(", "<a as (", ">::m(", "::<>::("] {
            let toks = lex(src);
            for i in 0..toks.len() {
                let _ = parse_path_at(&toks, i);
                let _ = qualified_self_before(&toks, i);
                let _ = skip_angles(&toks, i);
            }
        }
    }
}
