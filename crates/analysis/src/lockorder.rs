//! Static waits-for extraction and cycle detection for the blocking
//! crates (`crates/serve`, `crates/record`, `crates/net`).
//!
//! The model: every `.lock()` (and, in files that mention `RwLock`,
//! `.read()` / `.write()`) acquisition is named by the receiver field or
//! binding it is called on (`self.clients.lock()` → `clients`),
//! qualified by crate and file (`serve/hub::clients`) so same-named
//! files in different crates cannot alias. A guard's *hold span* is
//! approximated lexically:
//!
//! * a `let`-bound guard is held to the end of its enclosing block;
//! * a temporary guard (`x.lock()?.push(..)` in one statement) is held
//!   to the end of that statement.
//!
//! Locks are not the only way to wait. In files that mention `mpsc` /
//! `sync_channel`, a blocking channel endpoint operation (`.recv()`,
//! `.recv_timeout()`, `.send()` — but not `try_send`) becomes a
//! **channel-wait node** (`net/mem::ingress.chan`). A channel wait
//! holds nothing afterwards, so it only ever appears as the *target*
//! of an edge; what it adds to the graph is the deadlock shape "parked
//! on a channel while holding a lock".
//!
//! An edge `A → B` means "the thread waited on B while A was
//! (statically) still held" — either directly inside A's hold span, or
//! through a same-file call to a function that (transitively) waits on
//! B. A cycle in the edge set is a potential deadlock; the acyclic
//! order is emitted as TOML so any regression shows up as a diff of a
//! checked-in file.

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// One nested acquisition: `to` taken while `from` was held.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockEdge {
    /// The lock already held (`file::name`).
    pub from: String,
    /// The lock acquired under it (`file::name`).
    pub to: String,
    /// `path:function:line` of the inner acquisition or call site.
    pub site: String,
}

/// The extracted acquisition graph.
#[derive(Clone, Debug, Default)]
pub struct LockGraph {
    /// Every lock observed, sorted (`file::name`).
    pub nodes: Vec<String>,
    /// Nested-acquisition edges, deduplicated and sorted by (from, to).
    pub edges: Vec<LockEdge>,
    /// A topological order of `nodes` (valid only when `cycles` is empty).
    pub order: Vec<String>,
    /// Each detected cycle as a closed node path `[a, b, .., a]`.
    pub cycles: Vec<Vec<String>>,
}

/// One wait point inside a function: a lock acquisition (which holds a
/// guard for a span) or a blocking channel operation (which holds
/// nothing once it returns — `holds` is false).
struct Acq {
    name: String,
    pos: usize,
    hold_end: usize,
    line: u32,
    holds: bool,
}

/// A call to a same-file function.
struct Call {
    callee: String,
    pos: usize,
    line: u32,
}

struct FnInfo {
    name: String,
    acqs: Vec<Acq>,
    calls: Vec<Call>,
}

/// Extracts the lock graph from the given files.
#[must_use]
pub fn extract(files: &[&SourceFile]) -> LockGraph {
    let mut nodes: BTreeSet<String> = BTreeSet::new();
    let mut edges: BTreeMap<(String, String), String> = BTreeMap::new();

    for file in files {
        let scope = file_scope(&file.path);
        let stem = scope.as_str();
        let track_rw = file.tokens.iter().any(|t| t.is_ident("RwLock"));
        let track_chan = file
            .tokens
            .iter()
            .any(|t| t.is_ident("mpsc") || t.is_ident("sync_channel") || t.is_ident("SyncSender"));
        let fns = functions(file, track_rw, track_chan);
        // Direct lock sets per function, then the transitive closure over
        // same-file calls.
        let direct: BTreeMap<String, BTreeSet<String>> = fns
            .iter()
            .map(|f| {
                (
                    f.name.clone(),
                    f.acqs.iter().map(|a| a.name.clone()).collect(),
                )
            })
            .collect();
        let closed = close_over_calls(&fns, &direct);

        for f in &fns {
            for a in &f.acqs {
                nodes.insert(qualify(stem, &a.name));
            }
            // Direct nesting: B awaited inside A's hold span. A channel
            // wait holds nothing, so it never opens an edge.
            for a in f.acqs.iter().filter(|a| a.holds) {
                for b in &f.acqs {
                    if b.pos > a.pos && b.pos <= a.hold_end && a.name != b.name {
                        edges
                            .entry((qualify(stem, &a.name), qualify(stem, &b.name)))
                            .or_insert_with(|| site(&file.path, &f.name, b.line));
                    }
                }
                // Indirect nesting: a same-file call made under A acquires
                // whatever the callee (transitively) locks.
                for c in &f.calls {
                    if c.pos > a.pos && c.pos <= a.hold_end {
                        if let Some(callee_locks) = closed.get(&c.callee) {
                            for b in callee_locks {
                                if *b != a.name {
                                    edges
                                        .entry((qualify(stem, &a.name), qualify(stem, b)))
                                        .or_insert_with(|| site(&file.path, &f.name, c.line));
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    let nodes: Vec<String> = nodes.into_iter().collect();
    let edges: Vec<LockEdge> = edges
        .into_iter()
        .map(|((from, to), site)| LockEdge { from, to, site })
        .collect();
    let (order, cycles) = toposort(&nodes, &edges);
    LockGraph {
        nodes,
        edges,
        order,
        cycles,
    }
}

fn qualify(stem: &str, lock: &str) -> String {
    format!("{stem}::{lock}")
}

fn site(path: &str, function: &str, line: u32) -> String {
    format!("{path}:{function}:{line}")
}

/// `crates/serve/src/hub.rs` → `serve/hub`; paths outside the standard
/// layout fall back to the bare file stem.
fn file_scope(path: &str) -> String {
    let stem = path
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or(path);
    match path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
    {
        Some(krate) => format!("{krate}/{stem}"),
        None => stem.to_string(),
    }
}

/// Finds every function with a body and its wait points + call sites.
fn functions(file: &SourceFile, track_rw: bool, track_chan: bool) -> Vec<FnInfo> {
    let toks = &file.tokens;
    // Pass 1: function name set and body ranges.
    let mut ranges: Vec<(String, usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn")
            && toks.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
            && !file.in_test[i]
        {
            let name = toks[i + 1].text.clone();
            // Find the body `{` at paren depth 0, or a `;` (declaration).
            let mut j = i + 2;
            let mut paren = 0usize;
            let mut body = None;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('(') {
                    paren += 1;
                } else if t.is_punct(')') {
                    paren = paren.saturating_sub(1);
                } else if paren == 0 && t.is_punct('{') {
                    body = Some(j);
                    break;
                } else if paren == 0 && t.is_punct(';') {
                    break;
                }
                j += 1;
            }
            if let Some(open) = body {
                let close = match_brace(toks, open);
                ranges.push((name, open, close));
                i = open + 1; // nested fns attribute their locks to the outer fn too
                continue;
            }
        }
        i += 1;
    }

    ranges
        .into_iter()
        .map(|(name, open, close)| scan_function(file, name, open, close, track_rw, track_chan))
        .collect()
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

fn scan_function(
    file: &SourceFile,
    name: String,
    open: usize,
    close: usize,
    track_rw: bool,
    track_chan: bool,
) -> FnInfo {
    let toks = &file.tokens;
    // Brace depth per token (relative to the body) and enclosing-block
    // close index per token.
    let mut depth_at = vec![0usize; close + 1 - open];
    let mut stack: Vec<usize> = Vec::new();
    let mut encl_close = vec![close; close + 1 - open];
    for (j, tok) in toks.iter().enumerate().take(close + 1).skip(open) {
        let rel = j - open;
        if tok.is_punct('{') {
            depth_at[rel] = stack.len();
            stack.push(j);
        } else if tok.is_punct('}') {
            stack.pop();
            depth_at[rel] = stack.len();
        } else {
            depth_at[rel] = stack.len();
        }
    }
    // Second pass for enclosing close: map each open brace to its close.
    let mut closes: BTreeMap<usize, usize> = BTreeMap::new();
    let mut stack2: Vec<usize> = Vec::new();
    for (j, tok) in toks.iter().enumerate().take(close + 1).skip(open) {
        if tok.is_punct('{') {
            stack2.push(j);
        } else if tok.is_punct('}') {
            if let Some(o) = stack2.pop() {
                closes.insert(o, j);
            }
        }
    }
    let mut open_stack: Vec<usize> = Vec::new();
    for (j, tok) in toks.iter().enumerate().take(close + 1).skip(open) {
        let rel = j - open;
        if tok.is_punct('{') {
            open_stack.push(j);
        }
        encl_close[rel] = open_stack
            .last()
            .and_then(|o| closes.get(o).copied())
            .unwrap_or(close);
        if tok.is_punct('}') {
            open_stack.pop();
        }
    }

    let is_acquire =
        |t: &Token| t.is_ident("lock") || (track_rw && (t.is_ident("read") || t.is_ident("write")));
    // Blocking channel endpoint ops; `try_send`/`try_recv` never park
    // and are deliberately absent.
    let is_chan_wait = |t: &Token| {
        track_chan && (t.is_ident("recv") || t.is_ident("recv_timeout") || t.is_ident("send"))
    };

    let mut acqs = Vec::new();
    let mut calls = Vec::new();
    for j in open..close {
        if file.in_test[j] {
            continue;
        }
        // `.lock(` / `.read(` / `.write(` — and, in channel-bearing
        // files, `.recv(` / `.recv_timeout(` / `.send(`.
        let acquires = toks.get(j + 1).is_some_and(&is_acquire);
        let chan_waits = !acquires && toks.get(j + 1).is_some_and(&is_chan_wait);
        if toks[j].is_punct('.')
            && (acquires || chan_waits)
            && toks.get(j + 2).is_some_and(|t| t.is_punct('('))
        {
            let Some(recv) = toks
                .get(j.wrapping_sub(1))
                .filter(|t| t.kind == TokenKind::Ident && !t.text.is_empty() && t.text != "self")
            else {
                continue;
            };
            let line = toks[j + 1].line;
            let hold_end = if chan_waits {
                j // the wait returns a value, not a guard
            } else {
                hold_span_end(toks, file, open, close, j, &depth_at, &encl_close)
            };
            acqs.push(Acq {
                name: if chan_waits {
                    format!("{}.chan", recv.text)
                } else {
                    recv.text.clone()
                },
                pos: j,
                hold_end,
                line,
                holds: !chan_waits,
            });
        }
        // Same-file call site: `name(` or `self.name(`.
        if toks[j].kind == TokenKind::Ident && toks.get(j + 1).is_some_and(|t| t.is_punct('(')) {
            let prev = toks.get(j.wrapping_sub(1));
            let is_method_on_other = prev.is_some_and(|t| t.is_punct('.'))
                && !toks
                    .get(j.wrapping_sub(2))
                    .is_some_and(|t| t.is_ident("self"));
            let is_decl = prev.is_some_and(|t| t.is_ident("fn"));
            if !is_method_on_other && !is_decl {
                calls.push(Call {
                    callee: toks[j].text.clone(),
                    pos: j,
                    line: toks[j].line,
                });
            }
        }
    }
    FnInfo { name, acqs, calls }
}

/// End of the hold span for the acquisition whose `.` sits at `dot`.
fn hold_span_end(
    toks: &[Token],
    file: &SourceFile,
    open: usize,
    close: usize,
    dot: usize,
    depth_at: &[usize],
    encl_close: &[usize],
) -> usize {
    let depth = depth_at[dot - open];
    // Statement start: walk back to the nearest `;`, `{`, or `}` at the
    // same depth; the token after it opens the statement.
    let mut s = dot;
    while s > open {
        let rel = s - 1 - open;
        let t = &toks[s - 1];
        if depth_at[rel] < depth
            || (depth_at[rel] == depth && (t.is_punct(';') || t.is_punct('{') || t.is_punct('}')))
        {
            break;
        }
        s -= 1;
    }
    let let_bound = toks.get(s).is_some_and(|t| t.is_ident("let"));
    if let_bound {
        // Held to the end of the enclosing block.
        encl_close[dot - open]
    } else {
        // Held to the end of the statement.
        let mut j = dot;
        while j < close {
            let rel = j - open;
            if depth_at[rel] == depth && toks[j].is_punct(';') {
                return j;
            }
            if depth_at[rel] < depth {
                return j;
            }
            j += 1;
        }
        let _ = file;
        close
    }
}

/// Transitive closure of "locks acquired somewhere inside" over the
/// same-file call graph.
fn close_over_calls(
    fns: &[FnInfo],
    direct: &BTreeMap<String, BTreeSet<String>>,
) -> BTreeMap<String, BTreeSet<String>> {
    let mut closed = direct.clone();
    let call_map: BTreeMap<&str, Vec<&str>> = fns
        .iter()
        .map(|f| {
            (
                f.name.as_str(),
                f.calls
                    .iter()
                    .map(|c| c.callee.as_str())
                    .filter(|c| direct.contains_key(*c))
                    .collect(),
            )
        })
        .collect();
    loop {
        let mut changed = false;
        for f in fns {
            let mut add: BTreeSet<String> = BTreeSet::new();
            if let Some(callees) = call_map.get(f.name.as_str()) {
                for callee in callees {
                    if let Some(locks) = closed.get(*callee) {
                        add.extend(locks.iter().cloned());
                    }
                }
            }
            if let Some(own) = closed.get_mut(&f.name) {
                let before = own.len();
                own.extend(add);
                changed |= own.len() != before;
            }
        }
        if !changed {
            return closed;
        }
    }
}

/// Kahn topological sort; leftover nodes are walked for explicit cycles.
fn toposort(nodes: &[String], edges: &[LockEdge]) -> (Vec<String>, Vec<Vec<String>>) {
    let mut indeg: BTreeMap<&str, usize> = nodes.iter().map(|n| (n.as_str(), 0)).collect();
    let mut out: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for e in edges {
        out.entry(e.from.as_str()).or_default().push(e.to.as_str());
        if let Some(d) = indeg.get_mut(e.to.as_str()) {
            *d += 1;
        }
    }
    let mut order = Vec::new();
    let mut ready: Vec<&str> = indeg
        .iter()
        .filter(|(_, d)| **d == 0)
        .map(|(n, _)| *n)
        .collect();
    let mut indeg = indeg.clone();
    while let Some(n) = ready.pop() {
        order.push(n.to_string());
        for m in out.get(n).into_iter().flatten() {
            if let Some(d) = indeg.get_mut(m) {
                *d -= 1;
                if *d == 0 {
                    ready.push(m);
                }
            }
        }
        ready.sort_unstable();
        ready.reverse(); // pop smallest first for determinism
    }
    if order.len() == nodes.len() {
        return (order, Vec::new());
    }
    // Walk one explicit cycle among the leftovers for the report.
    let leftover: BTreeSet<&str> = nodes
        .iter()
        .map(String::as_str)
        .filter(|n| !order.iter().any(|o| o == n))
        .collect();
    let mut cycles = Vec::new();
    if let Some(&start) = leftover.iter().next() {
        let mut path = vec![start];
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        seen.insert(start);
        let mut cur = start;
        loop {
            let next = out
                .get(cur)
                .into_iter()
                .flatten()
                .find(|m| leftover.contains(**m));
            match next {
                Some(&m) if seen.contains(m) => {
                    // Close the loop at the first repeat.
                    let cut = path.iter().position(|p| *p == m).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        path[cut..].iter().map(|s| (*s).to_string()).collect();
                    cycle.push(m.to_string());
                    cycles.push(cycle);
                    break;
                }
                Some(&m) => {
                    path.push(m);
                    seen.insert(m);
                    cur = m;
                }
                None => break,
            }
        }
    }
    (order, cycles)
}

/// Renders the graph as the checked-in `analysis/lock-order.toml`.
#[must_use]
pub fn render_toml(graph: &LockGraph) -> String {
    let mut s = String::new();
    s.push_str(
        "# Waits-for order (locks + bounded-channel waits) for crates/serve, crates/record,\n\
         # and crates/net, extracted statically by rstp-analyze.\n\
         # Regenerate with: rstp analyze --emit-lock-order analysis/lock-order.toml\n\
         # A diff in this file means the blocking discipline changed — review it like an\n\
         # API change. Cycles fail `rstp analyze` outright.\n\n",
    );
    s.push_str("version = 1\n\n");
    s.push_str(&format!("nodes = {}\n", toml_array(&graph.nodes)));
    s.push_str(&format!("order = {}\n", toml_array(&graph.order)));
    for e in &graph.edges {
        s.push_str(&format!(
            "\n[[edge]]\nfrom = \"{}\"\nto = \"{}\"\nsite = \"{}\"\n",
            e.from, e.to, e.site
        ));
    }
    s
}

fn toml_array(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|i| format!("\"{i}\"")).collect();
    format!("[{}]", quoted.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(src: &str) -> LockGraph {
        let file = SourceFile::new("crates/serve/src/x.rs", src);
        extract(&[&file])
    }

    #[test]
    fn nested_let_bound_guards_make_an_edge() {
        let g = graph_of(
            "fn f(&self) {\n let a = self.alpha.lock().unwrap();\n \
             let b = self.beta.lock().unwrap();\n}",
        );
        assert_eq!(g.nodes, vec!["serve/x::alpha", "serve/x::beta"]);
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].from, "serve/x::alpha");
        assert_eq!(g.edges[0].to, "serve/x::beta");
        assert!(g.cycles.is_empty());
    }

    #[test]
    fn block_scoped_guard_released_before_second_lock_makes_no_edge() {
        // Mirrors serve::hub's egress: the map guard dies with its block
        // before the inbox lock is taken.
        let g = graph_of(
            "fn f(&self) {\n let inbox = { let map = self.clients.lock().unwrap(); \
             map.get(0).cloned() };\n inbox.lock().unwrap().push_back(1);\n}",
        );
        assert_eq!(g.nodes, vec!["serve/x::clients", "serve/x::inbox"]);
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn temporary_guard_spans_only_its_statement() {
        let g = graph_of(
            "fn f(&self) {\n self.alpha.lock().unwrap().push(1);\n \
             self.beta.lock().unwrap().push(2);\n}",
        );
        assert_eq!(g.nodes.len(), 2);
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn cycle_between_two_functions_is_detected() {
        let g = graph_of(
            "fn f(&self) { let a = self.alpha.lock().unwrap(); let b = self.beta.lock().unwrap(); }\n\
             fn g(&self) { let b = self.beta.lock().unwrap(); let a = self.alpha.lock().unwrap(); }",
        );
        assert_eq!(g.edges.len(), 2);
        assert_eq!(g.cycles.len(), 1, "{:?}", g.cycles);
        let cycle = &g.cycles[0];
        assert_eq!(cycle.first(), cycle.last());
    }

    #[test]
    fn call_graph_propagates_held_locks() {
        let g = graph_of(
            "fn helper(&self) { self.beta.lock().unwrap().push(1); }\n\
             fn f(&self) { let a = self.alpha.lock().unwrap(); self.helper(); }",
        );
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.edges[0].from, "serve/x::alpha");
        assert_eq!(g.edges[0].to, "serve/x::beta");
    }

    #[test]
    fn channel_wait_under_lock_makes_a_chan_edge() {
        let g = graph_of(
            "use std::sync::mpsc;\nfn f(&self, rx: &mpsc::Receiver<u8>) {\n \
             let a = self.alpha.lock().unwrap();\n let msg = rx.recv_timeout(t);\n}",
        );
        assert_eq!(g.nodes, vec!["serve/x::alpha", "serve/x::rx.chan"]);
        assert_eq!(g.edges.len(), 1, "{:?}", g.edges);
        assert_eq!(g.edges[0].from, "serve/x::alpha");
        assert_eq!(g.edges[0].to, "serve/x::rx.chan");
    }

    #[test]
    fn channel_wait_holds_nothing_and_try_send_is_ignored() {
        // recv before a lock: the wait has already returned, no edge.
        let g = graph_of(
            "use std::sync::mpsc;\nfn f(&self, rx: &mpsc::Receiver<u8>) {\n \
             let msg = rx.recv();\n let a = self.alpha.lock().unwrap();\n}",
        );
        assert!(g.edges.is_empty(), "{:?}", g.edges);
        // try_send under a lock never parks: not a waits-for edge.
        let g = graph_of(
            "use std::sync::mpsc;\nfn f(&self, tx: &mpsc::SyncSender<u8>) {\n \
             let a = self.alpha.lock().unwrap();\n let _ = tx.try_send(1);\n}",
        );
        assert_eq!(g.nodes, vec!["serve/x::alpha"]);
        assert!(g.edges.is_empty(), "{:?}", g.edges);
        // Without an mpsc mention, .send()/.recv() are plain I/O.
        let g = graph_of("fn f(&self) { let n = self.sock.send(buf); }");
        assert!(g.nodes.is_empty());
    }

    #[test]
    fn rwlock_read_write_tracked_only_when_rwlock_present() {
        let g = graph_of(
            "use std::sync::RwLock;\nfn f(&self) { let a = self.table.read().unwrap(); \
             self.meta.write().unwrap().push(1); }",
        );
        assert_eq!(g.nodes, vec!["serve/x::meta", "serve/x::table"]);
        assert_eq!(g.edges.len(), 1);
        // Without RwLock in the file, .read()/.write() are plain I/O.
        let g = graph_of("fn f(&self) { let n = self.sock.read().unwrap(); }");
        assert!(g.nodes.is_empty());
    }

    #[test]
    fn toml_rendering_is_deterministic() {
        let src = "fn f(&self) { let a = self.alpha.lock().unwrap(); \
                   let b = self.beta.lock().unwrap(); }";
        let a = render_toml(&graph_of(src));
        let b = render_toml(&graph_of(src));
        assert_eq!(a, b);
        assert!(a.contains("nodes = [\"serve/x::alpha\", \"serve/x::beta\"]"));
        assert!(a.contains("[[edge]]"));
    }
}
