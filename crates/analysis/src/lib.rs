//! rstp-analyze: invariant lints and a static lock-order race detector
//! for the RSTP workspace.
//!
//! The paper's guarantees are temporal — messages paced inside
//! `[c1, c2]`, delivery within `d`, received text a prefix of the sent
//! text. Code review can check an individual change against those
//! invariants; it cannot keep checking every change forever. This crate
//! turns the invariants into machine-checked rules over the workspace
//! source itself:
//!
//! * a **lint engine** ([`rules`]) that scans a lightweight token stream
//!   ([`lexer`], [`source`]) for invariant violations — wall-clock reads
//!   outside the driver clock, unbounded channels, panics on the
//!   protocol path, stray sleeps, frame-size prose drifting from the
//!   wire constants;
//! * a **lock-order detector** ([`lockorder`]) that extracts the static
//!   Mutex/RwLock acquisition graph of `crates/serve` and
//!   `crates/record` and fails on
//!   cycles, emitting the acyclic order as a checked-in TOML file so
//!   regressions surface as diffs;
//! * a **baseline** ([`baseline`]) that is the only way to suppress a
//!   finding, one justification per entry, checked for staleness.
//!
//! Everything is std-only: the analyzer must never be the reason the
//! workspace grows a dependency.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod callgraph;
pub mod lexer;
pub mod lockorder;
pub mod path;
pub mod reach;
pub mod rules;
pub mod source;

use callgraph::CallGraph;
use lockorder::LockGraph;
use reach::PassStats;
use rstp_bench::json::Json;
use rules::Finding;
use source::SourceFile;
use std::fs;
use std::path::{Path, PathBuf};

/// The full result of one workspace analysis.
pub struct Report {
    /// Findings that survived the baseline, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// How many findings the baseline suppressed.
    pub suppressed: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// The extracted waits-for graph (locks + bounded channels) over
    /// serve, record, and net.
    pub graph: LockGraph,
    /// The workspace call graph the reachability passes ran over.
    pub call_graph: CallGraph,
    /// Per-pass reachability summaries.
    pub passes: Vec<PassStats>,
}

impl Report {
    /// True when the tree is clean (nothing survived the baseline).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Relative path of the checked-in lock-order file.
pub const LOCK_ORDER_PATH: &str = "analysis/lock-order.toml";
/// Relative path of the suppression baseline.
pub const BASELINE_PATH: &str = "analysis/baseline.toml";

/// Analyzes the workspace rooted at `root`.
///
/// Scans `crates/*/src/**/*.rs` and the facade `src/`, runs every lint,
/// extracts the serve lock graph, checks it against the checked-in
/// order file, and applies the baseline. I/O problems on the root
/// itself are an `Err`; unreadable individual files are skipped (they
/// cannot hide findings — they also fail `cargo build`).
pub fn analyze_workspace(root: &Path) -> Result<Report, String> {
    let mut sources: Vec<(String, String)> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let entries =
            fs::read_dir(&crates_dir).map_err(|e| format!("read {}: {e}", crates_dir.display()))?;
        let mut members: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), root, &mut sources);
        }
    }
    collect_rs(&root.join("src"), root, &mut sources);
    if sources.is_empty() {
        return Err(format!(
            "no Rust sources under {} (expected crates/*/src or src)",
            root.display()
        ));
    }
    sources.sort();

    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(path, text)| SourceFile::new(path, text))
        .collect();

    // Token lints.
    let mut findings: Vec<Finding> = Vec::new();
    for f in &files {
        findings.extend(rules::run_token_rules(f));
    }

    // Wire-const drift: the wire-adjacent sources plus prose (README +
    // docs). Scoped to net/serve because the rule scans raw lines —
    // lexing can't help it skip test fixtures elsewhere.
    let mut texts: Vec<(String, String)> = sources
        .iter()
        .filter(|(p, _)| p.starts_with("crates/net/") || p.starts_with("crates/serve/"))
        .cloned()
        .collect();
    for doc in doc_files(root) {
        if let Ok(text) = fs::read_to_string(root.join(&doc)) {
            texts.push((doc, text));
        }
    }
    findings.extend(rules::wire_const_rule(&texts));

    // The interprocedural engine: workspace call graph + the three
    // reachability passes (panic / blocking / allocation).
    let call_graph = callgraph::build(&files);
    let (pass_findings, passes) = reach::run_passes(&call_graph);
    findings.extend(pass_findings);

    // Waits-for extraction over the lock-holding crates: serve, the
    // flight recorder it writes through, and net's channel fabric.
    let serve: Vec<&SourceFile> = files
        .iter()
        .filter(|f| {
            f.path.starts_with("crates/serve/src/")
                || f.path.starts_with("crates/record/src/")
                || f.path.starts_with("crates/net/src/")
        })
        .collect();
    let graph = lockorder::extract(&serve);
    for cycle in &graph.cycles {
        findings.push(Finding {
            rule: "lock-order-cycle",
            path: "crates/serve/src".to_string(),
            line: 1,
            message: format!("lock acquisition cycle: {}", cycle.join(" -> ")),
        });
    }

    // Drift against the checked-in order file.
    let expected = lockorder::render_toml(&graph);
    match fs::read_to_string(root.join(LOCK_ORDER_PATH)) {
        Ok(on_disk) => {
            if normalize(&on_disk) != normalize(&expected) {
                findings.push(Finding {
                    rule: "lock-order-drift",
                    path: LOCK_ORDER_PATH.to_string(),
                    line: 1,
                    message: "checked-in lock order no longer matches the extracted graph — \
                              regenerate with `rstp analyze --emit-lock-order` and review the \
                              diff"
                        .to_string(),
                });
            }
        }
        Err(_) if graph.nodes.is_empty() => {}
        Err(_) => {
            findings.push(Finding {
                rule: "lock-order-drift",
                path: LOCK_ORDER_PATH.to_string(),
                line: 1,
                message: "lock-order file is missing — generate it with \
                          `rstp analyze --emit-lock-order`"
                    .to_string(),
            });
        }
    }

    // Baseline: parse errors are findings, and an unparseable baseline
    // suppresses nothing.
    let entries = match fs::read_to_string(root.join(BASELINE_PATH)) {
        Ok(text) => match baseline::parse(&text) {
            Ok(entries) => entries,
            Err(msg) => {
                findings.push(Finding {
                    rule: "baseline-parse",
                    path: BASELINE_PATH.to_string(),
                    line: 1,
                    message: msg,
                });
                Vec::new()
            }
        },
        Err(_) => Vec::new(),
    };
    let before = findings.len();
    let (mut findings, hygiene) = baseline::apply(findings, &entries);
    let suppressed = before - findings.len();
    findings.extend(hygiene);
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));

    Ok(Report {
        findings,
        suppressed,
        files_scanned: files.len(),
        graph,
        call_graph,
        passes,
    })
}

/// Trailing-whitespace/newline-insensitive comparison for the order file.
fn normalize(s: &str) -> String {
    s.lines().map(str::trim_end).collect::<Vec<_>>().join("\n")
}

/// Recursively collects `.rs` files under `dir` as
/// `(workspace-relative path, text)`.
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, root, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            if let Ok(text) = fs::read_to_string(&p) {
                out.push((rel(&p, root), text));
            }
        }
    }
}

/// Markdown files the wire-const rule patrols.
fn doc_files(root: &Path) -> Vec<String> {
    let mut out = vec!["README.md".to_string()];
    if let Ok(entries) = fs::read_dir(root.join("docs")) {
        let mut names: Vec<String> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "md"))
            .map(|p| rel(&p, root))
            .collect();
        names.sort();
        out.extend(names);
    }
    out
}

fn rel(p: &Path, root: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Renders a report as the `rstp analyze --json` document.
///
/// Schema v2: `{tool, schema_version, files_scanned, suppressed, clean,
/// findings: [{rule, path, line, message}], lock_order: {nodes, order,
/// edges: [{from, to, site}], cycles}, call_graph: {fns, call_sites,
/// bound, external, unresolved, resolution_rate, passes: [{rule,
/// entries, reachable, findings}]}}`.
#[must_use]
pub fn report_json(report: &Report) -> String {
    let findings = report
        .findings
        .iter()
        .map(|f| {
            Json::Obj(vec![
                ("rule".into(), Json::Str(f.rule.to_string())),
                ("path".into(), Json::Str(f.path.clone())),
                ("line".into(), Json::Num(f64::from(f.line))),
                ("message".into(), Json::Str(f.message.clone())),
            ])
        })
        .collect();
    let edges = report
        .graph
        .edges
        .iter()
        .map(|e| {
            Json::Obj(vec![
                ("from".into(), Json::Str(e.from.clone())),
                ("to".into(), Json::Str(e.to.clone())),
                ("site".into(), Json::Str(e.site.clone())),
            ])
        })
        .collect();
    let strs = |v: &[String]| Json::Arr(v.iter().map(|s| Json::Str(s.clone())).collect());
    let cycles = report.graph.cycles.iter().map(|c| strs(c)).collect();
    let pass_objs = report
        .passes
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("rule".into(), Json::Str(p.rule.to_string())),
                ("entries".into(), Json::Num(p.entries as f64)),
                ("reachable".into(), Json::Num(p.reachable as f64)),
                ("findings".into(), Json::Num(p.findings as f64)),
            ])
        })
        .collect();
    let stats = report.call_graph.stats;
    let call_graph = Json::Obj(vec![
        ("fns".into(), Json::Num(report.call_graph.fns.len() as f64)),
        ("call_sites".into(), Json::Num(stats.sites as f64)),
        ("bound".into(), Json::Num(stats.bound as f64)),
        ("external".into(), Json::Num(stats.external as f64)),
        ("unresolved".into(), Json::Num(stats.unresolved as f64)),
        (
            "resolution_rate".into(),
            Json::Num((stats.resolution_rate() * 1000.0).round() / 1000.0),
        ),
        ("passes".into(), Json::Arr(pass_objs)),
    ]);
    let doc = Json::Obj(vec![
        ("tool".into(), Json::Str("rstp-analyze".to_string())),
        ("schema_version".into(), Json::Num(2.0)),
        (
            "files_scanned".into(),
            Json::Num(report.files_scanned as f64),
        ),
        ("suppressed".into(), Json::Num(report.suppressed as f64)),
        (
            "clean".into(),
            Json::Str(if report.is_clean() { "true" } else { "false" }.to_string()),
        ),
        ("findings".into(), Json::Arr(findings)),
        (
            "lock_order".into(),
            Json::Obj(vec![
                ("nodes".into(), strs(&report.graph.nodes)),
                ("order".into(), strs(&report.graph.order)),
                ("edges".into(), Json::Arr(edges)),
                ("cycles".into(), Json::Arr(cycles)),
            ]),
        ),
        ("call_graph".into(), call_graph),
    ]);
    doc.render()
}

/// Renders a report as human-readable text.
#[must_use]
pub fn report_text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.path, f.line, f.rule, f.message
        ));
    }
    if report.graph.cycles.is_empty() {
        out.push_str(&format!(
            "waits-for: {} node(s), {} edge(s), acyclic\n",
            report.graph.nodes.len(),
            report.graph.edges.len()
        ));
    }
    let stats = report.call_graph.stats;
    out.push_str(&format!(
        "call-graph: {} fn(s), {} call site(s), {:.1}% resolved\n",
        report.call_graph.fns.len(),
        stats.sites,
        stats.resolution_rate() * 100.0
    ));
    for p in &report.passes {
        out.push_str(&format!(
            "pass {}: {} entry point(s), {} reachable fn(s), {} finding(s)\n",
            p.rule, p.entries, p.reachable, p.findings
        ));
    }
    out.push_str(&format!(
        "{} file(s) scanned, {} finding(s), {} baselined\n",
        report.files_scanned,
        report.findings.len(),
        report.suppressed
    ));
    out
}
