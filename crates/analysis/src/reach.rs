//! The three interprocedural reachability passes over the workspace
//! call graph: panic-reachability from protocol entry points,
//! blocking-in-nonblocking on the record/serve per-frame paths, and
//! allocation-in-steady-state on the same per-frame paths.
//!
//! Each pass is a multi-source BFS from a fixed entry-point set.
//! Conservatism cuts one way only: the graph over-approximates calls
//! (the "all impls of that method name" fallback), so a clean pass is
//! meaningful and a finding carries a *candidate* chain that a human
//! (or the baseline) adjudicates.

use crate::callgraph::{CallGraph, FnDef, SinkKind};
use crate::rules::Finding;

/// How a pass recognizes its entry points in the symbol table.
enum Matcher {
    /// Any impl of `trait_name`; `method` narrows to one method name
    /// (`None` = every method of the trait).
    TraitImpl {
        trait_name: &'static str,
        method: Option<&'static str>,
    },
    /// The method `name` on impls of `type_name`.
    TypeMethod {
        type_name: &'static str,
        name: &'static str,
    },
    /// The fn `name` defined in a file whose path ends with `suffix`.
    FileFn {
        suffix: &'static str,
        name: &'static str,
    },
    /// Any fn in crate `krate` whose name starts with one of the
    /// prefixes (the codec crate's `encode_*`/`decode_*` family).
    NamePrefix {
        krate: &'static str,
        prefixes: &'static [&'static str],
    },
}

impl Matcher {
    fn matches(&self, f: &FnDef) -> bool {
        match self {
            Matcher::TraitImpl { trait_name, method } => {
                f.trait_name.as_deref() == Some(trait_name)
                    && f.self_type.is_some()
                    && method.map_or(true, |m| f.name == m)
            }
            Matcher::TypeMethod { type_name, name } => {
                f.self_type.as_deref() == Some(type_name) && f.name == *name
            }
            Matcher::FileFn { suffix, name } => f.file.ends_with(suffix) && f.name == *name,
            Matcher::NamePrefix { krate, prefixes } => {
                f.krate == *krate && prefixes.iter().any(|p| f.name.starts_with(p))
            }
        }
    }
}

/// Entry points for the panic pass: everything the protocol's
/// correctness argument assumes cannot abort.
const PANIC_ENTRIES: &[Matcher] = &[
    Matcher::TraitImpl {
        trait_name: "Automaton",
        method: Some("step"),
    },
    Matcher::TraitImpl {
        trait_name: "Automaton",
        method: Some("output"),
    },
    Matcher::TypeMethod {
        type_name: "WireCodec",
        name: "encode",
    },
    Matcher::TypeMethod {
        type_name: "WireCodec",
        name: "encode_with_session",
    },
    Matcher::TypeMethod {
        type_name: "WireCodec",
        name: "decode",
    },
    Matcher::FileFn {
        suffix: "net/src/wire.rs",
        name: "decode_any",
    },
    Matcher::FileFn {
        suffix: "net/src/wire.rs",
        name: "peek_session",
    },
    Matcher::NamePrefix {
        krate: "codec",
        prefixes: &["encode", "decode"],
    },
    Matcher::FileFn {
        suffix: "serve/src/shard.rs",
        name: "run_shard",
    },
    Matcher::TypeMethod {
        type_name: "RingProducer",
        name: "push",
    },
    Matcher::TypeMethod {
        type_name: "ShardRecorder",
        name: "record",
    },
];

/// Entry points for the blocking and allocation passes: the record
/// ring's append path and serve's per-frame ingress/egress loops.
/// `run_shard` itself is *not* here — its single `recv_timeout` park is
/// the designed blocking point, and its admission work (session setup)
/// may allocate; the per-frame work it dispatches to is what must stay
/// nonblocking and allocation-free. Protocol automata (`step`) are the
/// *panic* pass's concern: their error paths may format messages, which
/// is cold-path allocation, not steady state.
const STEADY_STATE_ENTRIES: &[Matcher] = &[
    Matcher::TypeMethod {
        type_name: "RingProducer",
        name: "push",
    },
    Matcher::TypeMethod {
        type_name: "ShardRecorder",
        name: "record",
    },
    Matcher::TraitImpl {
        trait_name: "EgressSink",
        method: Some("send_batch"),
    },
    Matcher::TraitImpl {
        trait_name: "ServeTransport",
        method: Some("recv_batch"),
    },
];

/// One pass's summary, surfaced in the JSON report.
#[derive(Clone, Debug)]
pub struct PassStats {
    /// The rule id the pass reports under.
    pub rule: &'static str,
    /// How many entry-point fns matched.
    pub entries: usize,
    /// How many fns the BFS reached (entries included).
    pub reachable: usize,
    /// How many findings the pass produced (pre-baseline).
    pub findings: usize,
}

/// Runs the three passes; returns findings plus per-pass stats.
#[must_use]
pub fn run_passes(graph: &CallGraph) -> (Vec<Finding>, Vec<PassStats>) {
    let mut findings = Vec::new();
    let mut stats = Vec::new();
    for (rule, kind, matchers) in [
        ("panic-reachable", SinkKind::Panic, PANIC_ENTRIES),
        (
            "blocking-in-nonblocking",
            SinkKind::Block,
            STEADY_STATE_ENTRIES,
        ),
        (
            "alloc-in-steady-state",
            SinkKind::Alloc,
            STEADY_STATE_ENTRIES,
        ),
    ] {
        let entries: Vec<usize> = graph
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| matchers.iter().any(|m| m.matches(f)))
            .map(|(i, _)| i)
            .collect();
        let (found, reachable) = run_one(graph, rule, kind, &entries);
        stats.push(PassStats {
            rule,
            entries: entries.len(),
            reachable,
            findings: found.len(),
        });
        findings.extend(found);
    }
    (findings, stats)
}

/// Multi-source BFS from `entries`; reports every `kind` sink in a
/// reached fn, with the shortest entry→sink chain in the message.
fn run_one(
    graph: &CallGraph,
    rule: &'static str,
    kind: SinkKind,
    entries: &[usize],
) -> (Vec<Finding>, usize) {
    const NONE: usize = usize::MAX;
    let n = graph.fns.len();
    let mut parent = vec![NONE; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for &e in entries {
        if !seen[e] {
            seen[e] = true;
            parent[e] = e; // self-parent marks a BFS root
            queue.push_back(e);
        }
    }
    let mut order = Vec::new();
    while let Some(f) = queue.pop_front() {
        order.push(f);
        for &callee in &graph.edges[f] {
            if !seen[callee] {
                seen[callee] = true;
                parent[callee] = f;
                queue.push_back(callee);
            }
        }
    }

    let mut findings = Vec::new();
    let mut dedupe = std::collections::BTreeSet::new();
    for &f in &order {
        for sink in &graph.sinks[f] {
            if sink.kind != kind {
                continue;
            }
            let file = &graph.fns[f].file;
            if !dedupe.insert((file.clone(), sink.line)) {
                continue;
            }
            // Walk back to the entry for the chain.
            let mut chain = vec![f];
            let mut cur = f;
            while parent[cur] != cur {
                cur = parent[cur];
                chain.push(cur);
                if chain.len() > n {
                    break; // cannot happen; belt and braces
                }
            }
            chain.reverse();
            let rendered = chain
                .iter()
                .map(|&id| graph.fns[id].display())
                .collect::<Vec<_>>()
                .join(" -> ");
            findings.push(Finding {
                rule,
                path: file.clone(),
                line: sink.line,
                message: format!("{} reachable via {rendered}", sink.what),
            });
        }
    }
    (findings, order.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build;
    use crate::source::SourceFile;

    #[test]
    fn panic_chain_crosses_files_and_reports_the_route() {
        let a = SourceFile::new(
            "crates/serve/src/shard.rs",
            "use rstp_net::W;\n\
             pub(crate) fn run_shard() { helper(); }\n\
             fn helper() { W::explode(); }",
        );
        let b = SourceFile::new(
            "crates/net/src/w.rs",
            "pub struct W;\nimpl W { pub fn explode() { panic!(\"boom\"); } }",
        );
        let g = build(&[a, b]);
        let (findings, stats) = run_passes(&g);
        let panic: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "panic-reachable")
            .collect();
        assert_eq!(panic.len(), 1, "{findings:?}");
        assert_eq!(panic[0].path, "crates/net/src/w.rs");
        assert!(
            panic[0]
                .message
                .contains("run_shard -> serve/shard::helper -> net/w::W::explode"),
            "{}",
            panic[0].message
        );
        assert!(stats
            .iter()
            .any(|s| s.rule == "panic-reachable" && s.entries == 1));
    }

    #[test]
    fn blocking_pass_flags_lock_under_send_batch_but_not_elsewhere() {
        let a = SourceFile::new(
            "crates/serve/src/hub.rs",
            "pub struct HubEgress;\n\
             impl EgressSink for HubEgress {\n\
               fn send_batch(&mut self) { self.inner(); }\n\
             }\n\
             impl HubEgress { fn inner(&self) { self.q.lock().ok(); } }\n\
             pub fn offline_tool() { std_lock().lock().ok(); }",
        );
        let g = build(std::slice::from_ref(&a));
        let (findings, _) = run_passes(&g);
        let blocking: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == "blocking-in-nonblocking")
            .collect();
        // Only the lock reachable from send_batch is flagged; the one in
        // offline_tool is not on a steady-state path.
        assert_eq!(blocking.len(), 1, "{blocking:?}");
        assert!(blocking[0].message.contains("send_batch"));
    }

    #[test]
    fn alloc_pass_flags_to_vec_on_the_frame_path() {
        let a = SourceFile::new(
            "crates/record/src/ring.rs",
            "pub struct RingProducer;\n\
             impl RingProducer {\n\
               pub fn push(&self, bytes: &[u8]) { let _ = bytes.to_vec(); }\n\
             }",
        );
        let g = build(std::slice::from_ref(&a));
        let (findings, _) = run_passes(&g);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == "alloc-in-steady-state" && f.message.contains(".to_vec()")),
            "{findings:?}"
        );
    }

    #[test]
    fn clean_steady_state_produces_no_findings() {
        let a = SourceFile::new(
            "crates/record/src/ring.rs",
            "pub struct RingProducer;\n\
             impl RingProducer {\n\
               pub fn push(&self, b: u8) -> bool {\n\
                 match self.q.try_lock() { Ok(mut g) => { g.set(b); true } Err(_) => false }\n\
               }\n\
             }",
        );
        let g = build(std::slice::from_ref(&a));
        let (findings, _) = run_passes(&g);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
