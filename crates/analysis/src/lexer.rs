//! A lightweight Rust lexer: just enough token structure for invariant
//! lints and lock-order extraction, with zero dependencies.
//!
//! The lexer's contract is *robustness before fidelity*: any byte
//! sequence — malformed UTF-8 run through a lossy decode, truncated
//! string literals, unbalanced comment markers — produces a token list
//! without panicking. Comments (line, doc, nested block) are discarded;
//! string/char literals become single opaque tokens so identifier scans
//! can never match text inside them; lifetimes are distinguished from
//! character literals the way rustc does (by looking one character
//! past the quote).

/// What kind of lexeme a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `Instant`, `unwrap`, ...).
    Ident,
    /// A lifetime such as `'a` (kept distinct so `'a` never reads as an
    /// unterminated char literal).
    Lifetime,
    /// A numeric literal (integer or float, any base, suffix included).
    Number,
    /// A string, raw-string, byte-string, or char literal (opaque).
    Literal,
    /// Any other single non-whitespace character.
    Punct(char),
}

/// One lexeme with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The kind of lexeme.
    pub kind: TokenKind,
    /// The lexeme text (empty for [`TokenKind::Literal`] bodies is fine;
    /// literals keep their text only for diagnostics).
    pub text: String,
    /// 1-based line the lexeme starts on.
    pub line: u32,
}

impl Token {
    /// True when the token is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True when the token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// Lexes `src` into tokens. Never panics, for any input.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, counting newlines.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(line),
                'r' | 'b' if self.raw_or_byte_literal(line) => {}
                '\'' => self.char_or_lifetime(line),
                _ if is_ident_start(c) => self.ident(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct(c), c.to_string(), line);
                }
            }
        }
        self.tokens
    }

    fn line_comment(&mut self) {
        while let Some(c) = self.bump() {
            if c == '\n' {
                break;
            }
        }
    }

    /// Nested block comment; an unterminated comment consumes to EOF.
    fn block_comment(&mut self) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => return,
            }
        }
    }

    /// An ordinary `"..."` string with `\` escapes; unterminated
    /// consumes to EOF.
    fn string_literal(&mut self, line: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Literal, String::new(), line);
    }

    /// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'`.
    /// Returns false (consuming nothing) when the `r`/`b` is just the
    /// start of an identifier.
    fn raw_or_byte_literal(&mut self, line: u32) -> bool {
        let mut ahead = 1; // past the leading r/b
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            ahead = 2;
        }
        if self.peek(0) == Some('b') && self.peek(ahead) == Some('\'') {
            // Byte char literal b'x'.
            self.bump(); // b
            self.char_or_lifetime(line);
            return true;
        }
        let mut hashes = 0usize;
        while self.peek(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(ahead + hashes) != Some('"') {
            return false; // an identifier like `recv` or `break_even`
        }
        if hashes > 0 || self.peek(ahead - 1) == Some('r') || ahead == 2 {
            // Raw string: consume prefix, hashes, and opening quote, then
            // scan for `"` followed by the same number of hashes.
            for _ in 0..=(ahead + hashes) {
                self.bump();
            }
            'scan: while let Some(c) = self.bump() {
                if c == '"' {
                    for h in 0..hashes {
                        if self.peek(h) != Some('#') {
                            continue 'scan;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
            self.push(TokenKind::Literal, String::new(), line);
            return true;
        }
        // b"..." — ordinary escaping rules.
        self.bump(); // b
        self.string_literal(line);
        true
    }

    /// Distinguishes `'a` (lifetime) from `'x'` / `'\n'` (char literal)
    /// by looking one character past the quote, like rustc.
    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // opening quote
        match (self.peek(0), self.peek(1)) {
            // `'a` not followed by a closing quote is a lifetime.
            (Some(c), next) if is_ident_start(c) && next != Some('\'') => {
                let mut name = String::from("'");
                while let Some(c) = self.peek(0) {
                    if is_ident_continue(c) {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokenKind::Lifetime, name, line);
            }
            // A char literal; `\` starts an escape of arbitrary length
            // (`'\u{1F600}'`), so scan to the closing quote with a cap.
            _ => {
                let mut escaped = false;
                for _ in 0..16 {
                    match self.bump() {
                        Some('\\') if !escaped => escaped = true,
                        Some('\'') if !escaped => break,
                        Some(_) => escaped = false,
                        None => break,
                    }
                }
                self.push(TokenKind::Literal, String::new(), line);
            }
        }
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line);
    }

    /// Numeric literal: digits, `_`, base prefixes, exponent letters,
    /// and type suffixes all roll into one token. `1.0` keeps its dot
    /// only when the next char is a digit (so `x.0` field access and
    /// `0..n` ranges stay punctuation).
    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let in_number = c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if in_number {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, text, line);
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_stripped() {
        let src = "a // Instant::now()\n/* unwrap() /* nested */ still comment */ b";
        assert_eq!(idents(src), vec!["a", "b"]);
    }

    #[test]
    fn strings_are_opaque() {
        let src = r#"let x = "Instant::now() unwrap()"; y"#;
        assert_eq!(idents(src), vec!["let", "x", "y"]);
    }

    #[test]
    fn raw_strings_are_opaque() {
        let src = r###"let x = r#"unwrap() " still "#; y"###;
        assert_eq!(idents(src), vec!["let", "x", "y"]);
        let src = "let z = r\"unwrap()\"; w";
        assert_eq!(idents(src), vec!["let", "z", "w"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
        let literals = toks.iter().filter(|t| t.kind == TokenKind::Literal).count();
        assert_eq!(literals, 2);
    }

    #[test]
    fn lines_are_tracked_through_comments_and_strings() {
        let src = "a\n/* two\nlines */\nb \"str\nwith newline\" c";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1); // a
        assert_eq!(toks[1].line, 4); // b
        assert_eq!(toks[3].line, 5); // c (string spans lines 4-5)
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        for src in ["\"abc", "/* abc", "r#\"abc", "'", "'\\", "b\"x", "br##\"y"] {
            let _ = lex(src);
        }
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = lex("0..36 1_000u64 1.5e3 x.0");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "36", "1_000u64", "1.5e3", "0"]);
    }

    #[test]
    fn byte_literals() {
        assert_eq!(
            idents("let x = b'q'; let y = b\"bytes\"; z"),
            vec!["let", "x", "let", "y", "z"]
        );
    }
}
