//! A lexed source file plus the classification lints need: which token
//! ranges are test code (`#[cfg(test)]` modules, `#[test]` functions),
//! so deny-by-default rules can exempt tests without a full parse.

use crate::lexer::{lex, Token, TokenKind};

/// A lexed file with its workspace-relative path and test-region map.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// `in_test[i]` is true when token `i` lies inside test-only code.
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Lexes `text` and classifies test regions.
    #[must_use]
    pub fn new(path: &str, text: &str) -> Self {
        let tokens = lex(text);
        let in_test = mark_test_regions(&tokens);
        SourceFile {
            path: path.to_string(),
            tokens,
            in_test,
        }
    }

    /// Iterator of `(index, token)` for non-test tokens.
    pub fn code_tokens(&self) -> impl Iterator<Item = (usize, &Token)> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.in_test[*i])
    }
}

/// Marks every token inside a `#[cfg(test)] mod { ... }` or a
/// `#[test]`/`#[cfg(test)]`-attributed `fn { ... }` as test code.
///
/// The approximation is brace matching from the item's opening `{`; it
/// does not understand macros that *generate* items, which is fine for
/// the lint engine's deny-by-default posture (generated test code would
/// at worst be linted, never silently exempted).
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && matches!(tokens.get(i + 1), Some(t) if t.is_punct('['))) {
            i += 1;
            continue;
        }
        // Scan the attribute's bracket span and decide whether it gates
        // test code: `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ...))]`.
        // `#[cfg(not(test))]` and `#[cfg_attr(...)]` gate *non*-test code
        // and must not mark anything.
        let attr_start = i;
        let mut depth = 0usize;
        let mut saw_test = false;
        let mut saw_not = false;
        let mut j = i + 1;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('[') || t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(']') || t.is_punct(')') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    break;
                }
            } else if t.is_ident("test") {
                saw_test = true;
            } else if t.is_ident("not") || t.is_ident("cfg_attr") {
                saw_not = true;
            }
            j += 1;
        }
        let attr_end = j; // index of the closing `]` (or EOF)
        let is_cfg_or_bare_test = tokens
            .get(attr_start + 2)
            .is_some_and(|t| t.is_ident("cfg") || t.is_ident("test"));
        let saw_test = saw_test && !saw_not && is_cfg_or_bare_test;
        if !saw_test {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut k = attr_end + 1;
        while k < tokens.len() && tokens[k].is_punct('#') {
            let mut d = 0usize;
            k += 1;
            while k < tokens.len() {
                let t = &tokens[k];
                if t.is_punct('[') {
                    d += 1;
                } else if t.is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        k += 1;
                        break;
                    }
                }
                k += 1;
            }
        }
        // The attributed item: mark from here to the end of its braced
        // body (or its `;` for `mod name;` declarations).
        let item_start = k;
        let mut brace_depth = 0usize;
        let mut entered = false;
        while k < tokens.len() {
            let t = &tokens[k];
            if t.is_punct('{') {
                brace_depth += 1;
                entered = true;
            } else if t.is_punct('}') {
                brace_depth = brace_depth.saturating_sub(1);
                if entered && brace_depth == 0 {
                    break;
                }
            } else if t.is_punct(';') && !entered {
                break;
            }
            k += 1;
        }
        for slot in in_test
            .iter_mut()
            .take((k + 1).min(tokens.len()))
            .skip(attr_start)
        {
            *slot = true;
        }
        i = k.max(item_start) + 1;
    }
    in_test
}

/// Convenience for rules: true when `tokens[i..]` starts with the exact
/// identifier/punct sequence in `pattern`, where each pattern element is
/// either an identifier string or a single punctuation char.
#[must_use]
pub fn matches_seq(tokens: &[Token], i: usize, pattern: &[Pat<'_>]) -> bool {
    pattern.iter().enumerate().all(|(off, p)| {
        tokens.get(i + off).is_some_and(|t| match p {
            Pat::Id(s) => t.is_ident(s),
            Pat::P(c) => t.is_punct(*c),
            Pat::AnyIdent => t.kind == TokenKind::Ident,
        })
    })
}

/// One element of a [`matches_seq`] pattern.
pub enum Pat<'a> {
    /// An exact identifier.
    Id(&'a str),
    /// A punctuation character.
    P(char),
    /// Any identifier at all.
    AnyIdent,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_idents(src: &str) -> (Vec<String>, Vec<String>) {
        let f = SourceFile::new("x.rs", src);
        let mut test = Vec::new();
        let mut code = Vec::new();
        for (i, t) in f.tokens.iter().enumerate() {
            if t.kind == TokenKind::Ident {
                if f.in_test[i] {
                    test.push(t.text.clone());
                } else {
                    code.push(t.text.clone());
                }
            }
        }
        (code, test)
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn inner() { x.unwrap(); }\n}\nfn after() {}";
        let (code, test) = test_idents(src);
        assert!(code.contains(&"live".to_string()));
        assert!(code.contains(&"after".to_string()));
        assert!(test.contains(&"unwrap".to_string()));
        assert!(!code.contains(&"unwrap".to_string()));
    }

    #[test]
    fn test_attribute_fn_is_marked() {
        let src = "#[test]\nfn check() { y.expect(\"boom\"); }\nfn live() {}";
        let (code, test) = test_idents(src);
        assert!(test.contains(&"expect".to_string()));
        assert!(code.contains(&"live".to_string()));
    }

    #[test]
    fn non_test_cfg_is_not_marked() {
        let src = "#[cfg(feature = \"x\")]\nfn gated() { z.unwrap(); }";
        let (code, test) = test_idents(src);
        assert!(code.contains(&"unwrap".to_string()));
        assert!(test.is_empty());
    }

    #[test]
    fn cfg_test_mod_declaration_without_body() {
        let src = "#[cfg(test)]\nmod tests;\nfn live() { a.unwrap(); }";
        let (code, _test) = test_idents(src);
        assert!(code.contains(&"unwrap".to_string()));
        assert!(code.contains(&"live".to_string()));
    }

    #[test]
    fn nested_braces_stay_inside_the_test_mod() {
        let src = "#[cfg(test)]\nmod t { fn a() { if x { y() } } fn b() {} }\nfn live() {}";
        let (code, test) = test_idents(src);
        assert!(test.contains(&"b".to_string()));
        assert!(code.contains(&"live".to_string()));
    }
}
