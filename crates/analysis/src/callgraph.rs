//! Workspace-wide symbol table and call graph, built on the hand-rolled
//! lexer — still std-only, still no `syn`.
//!
//! The table records every function definition with its impl context
//! (`impl Type`, `impl Trait for Type`, `trait Trait { fn ... }`); call
//! sites are resolved conservatively:
//!
//! * `self.m(...)` binds to every `m` on the caller's impl type when one
//!   exists, otherwise to **all** workspace methods named `m` in scope;
//! * `recv.m(...)` binds to all workspace methods named `m` in scope
//!   (the "all impls of that method name" fallback — over-approximation
//!   is the price of soundness without type inference);
//! * `Type::m(...)` binds through the impl table when `Type` is a
//!   workspace type, through free functions when `Type` names a module
//!   file, and is classified *external* when it is `Vec`, `Box`, or any
//!   other name the workspace never implements;
//! * `<T as Trait>::m(...)` binds through the trait-impl table (see
//!   [`crate::path`] for the scanning);
//! * bare `f(...)` prefers same-file free functions, then same-crate,
//!   then anything in scope.
//!
//! "Scope" is the calling file's crate plus every `rstp_*` crate the
//! file names — the dependency cone a call could actually land in.
//! Calls into `std` resolve to nothing and are classified external;
//! a call whose name the workspace defines but scoping rejects is
//! *unresolved* and counted (the self-hosting test holds the resolved
//! rate above 95%).

use crate::lexer::{Token, TokenKind};
use crate::path::{parse_path_at, qualified_self_before};
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// One function definition in the workspace.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// The function's bare name.
    pub name: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Crate short name (`serve`, `net`, ..., `rstp` for the facade).
    pub krate: String,
    /// `Some("Type")` for `impl Type` / `impl Trait for Type` methods.
    pub self_type: Option<String>,
    /// `Some("Trait")` for trait-impl methods and trait default bodies.
    pub trait_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Body token range `(open brace, close brace)` in the file.
    pub body: (usize, usize),
    /// Index into the file list the graph was built from.
    pub file_idx: usize,
}

impl FnDef {
    /// Display name for chains: `crate/file::Type::name` or
    /// `crate/file::name`.
    #[must_use]
    pub fn display(&self) -> String {
        let stem = file_stem(&self.file);
        match &self.self_type {
            Some(t) => format!("{}/{stem}::{t}::{}", self.krate, self.name),
            None => format!("{}/{stem}::{}", self.krate, self.name),
        }
    }
}

/// What a sink found in a function body can do to the hot path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SinkKind {
    /// Can abort the process (`unwrap`, `panic!`, variable indexing).
    Panic,
    /// Can block the calling thread (`lock`, `recv`, `sleep`, `join`).
    Block,
    /// Allocates on every call (`to_vec`, `format!`, fresh `Vec`).
    Alloc,
}

/// One syntactic sink inside a function body.
#[derive(Clone, Debug)]
pub struct Sink {
    /// What the sink can do.
    pub kind: SinkKind,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description (`".unwrap()"`, `"format!"`, ...).
    pub what: String,
}

/// How one call site resolved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// Bound to ≥ 1 workspace definitions.
    Bound,
    /// The name is not defined anywhere in the workspace (std or
    /// foreign) — confidently external.
    External,
    /// The workspace defines the name but scoping rejected every
    /// candidate — a blind spot, counted against the resolution rate.
    Unresolved,
}

/// Aggregate call-site accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct CallStats {
    /// Total call sites scanned (methods, qualified, bare).
    pub sites: usize,
    /// Sites bound to at least one workspace definition.
    pub bound: usize,
    /// Sites confidently classified external (std etc.).
    pub external: usize,
    /// Sites the workspace defines but scoping could not place.
    pub unresolved: usize,
}

impl CallStats {
    /// Fraction of sites that are bound or confidently external.
    #[must_use]
    pub fn resolution_rate(&self) -> f64 {
        if self.sites == 0 {
            return 1.0;
        }
        (self.bound + self.external) as f64 / self.sites as f64
    }
}

/// The workspace call graph.
pub struct CallGraph {
    /// Every non-test function definition found.
    pub fns: Vec<FnDef>,
    /// `edges[f]` = callee fn ids of `f`, deduplicated and sorted.
    pub edges: Vec<Vec<usize>>,
    /// `sinks[f]` = syntactic sinks in `f`'s body.
    pub sinks: Vec<Vec<Sink>>,
    /// Call-site accounting.
    pub stats: CallStats,
    /// Unresolved call-site names with occurrence counts — the
    /// self-hosting test prints these when the resolution rate slips.
    pub unresolved_names: BTreeMap<String, usize>,
}

impl CallGraph {
    /// Ids of fns matching `(self_type or trait, name)` — either side of
    /// the impl context may match `type_or_trait`.
    #[must_use]
    pub fn find(&self, type_or_trait: &str, name: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.name == name
                    && (f.self_type.as_deref() == Some(type_or_trait)
                        || f.trait_name.as_deref() == Some(type_or_trait))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Ids of all methods implementing `trait_name` (any method name).
    #[must_use]
    pub fn find_trait_impls(&self, trait_name: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.trait_name.as_deref() == Some(trait_name))
            .map(|(i, _)| i)
            .collect()
    }

    /// Id of the free fn `name` defined in `file`, if any.
    #[must_use]
    pub fn find_in_file(&self, file: &str, name: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == file && f.name == name)
            .map(|(i, _)| i)
            .collect()
    }
}

/// The crate short name of a workspace-relative path.
fn crate_of(path: &str) -> String {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("rstp")
        .to_string()
}

fn file_stem(path: &str) -> &str {
    path.rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or(path)
}

/// Marks tokens inside `#[...]` / `#![...]` attribute spans, so `cfg(`
/// never reads as a call and `#[derive(Clone)]` never reads as `Clone`
/// construction.
fn mark_attrs(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        let bang = tokens.get(i + 1).is_some_and(|t| t.is_punct('!'));
        let open = i + 1 + usize::from(bang);
        if tokens[i].is_punct('#') && tokens.get(open).is_some_and(|t| t.is_punct('[')) {
            let mut depth = 0usize;
            let mut j = open;
            while j < tokens.len() {
                if tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            for slot in mask.iter_mut().take((j + 1).min(tokens.len())).skip(i) {
                *slot = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// One impl/trait block context.
struct ImplCtx {
    self_type: Option<String>,
    trait_name: Option<String>,
    range: (usize, usize),
}

/// Parses `impl` and `trait` block headers in one file.
fn impl_blocks(file: &SourceFile) -> Vec<ImplCtx> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("impl") {
            // Optional generics after `impl`.
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_punct('<')) {
                j = crate::path::skip_angles(toks, j).map_or(j + 1, |c| c + 1);
            }
            // First path (the trait, or the self type).
            let Some(p1) = parse_path_at(toks, j) else {
                i += 1;
                continue;
            };
            let mut j = p1.end;
            // Skip generic args on the path head (`impl Foo<T> {`).
            if toks.get(j).is_some_and(|t| t.is_punct('<')) {
                j = crate::path::skip_angles(toks, j).map_or(j + 1, |c| c + 1);
            }
            let (self_type, trait_name, mut j) = if toks.get(j).is_some_and(|t| t.is_ident("for")) {
                match parse_path_at(toks, j + 1) {
                    Some(p2) => {
                        let mut k = p2.end;
                        if toks.get(k).is_some_and(|t| t.is_punct('<')) {
                            k = crate::path::skip_angles(toks, k).map_or(k + 1, |c| c + 1);
                        }
                        (p2.segments.last().cloned(), p1.segments.last().cloned(), k)
                    }
                    None => (None, p1.segments.last().cloned(), j + 1),
                }
            } else {
                (p1.segments.last().cloned(), None, j)
            };
            // Scan past a `where` clause to the body `{`.
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct('{')) {
                let close = match_brace(toks, j);
                out.push(ImplCtx {
                    self_type,
                    trait_name,
                    range: (j, close),
                });
                i = j + 1;
                continue;
            }
            i = j + 1;
        } else if toks[i].is_ident("trait")
            && toks.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            let name = toks[i + 1].text.clone();
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct('{')) {
                let close = match_brace(toks, j);
                out.push(ImplCtx {
                    self_type: None,
                    trait_name: Some(name),
                    range: (j, close),
                });
                i = j + 1;
                continue;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Finds every non-test fn with a body in `file`, with impl context.
fn fn_defs(file: &SourceFile, file_idx: usize, attrs: &[bool]) -> Vec<FnDef> {
    let toks = &file.tokens;
    let impls = impl_blocks(file);
    let krate = crate_of(&file.path);
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn")
            && toks.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
            && !file.in_test[i]
            && !attrs.get(i).copied().unwrap_or(false)
        {
            let name = toks[i + 1].text.clone();
            // Body `{` at paren depth 0, or `;` (a declaration).
            let mut j = i + 2;
            if toks.get(j).is_some_and(|t| t.is_punct('<')) {
                j = crate::path::skip_angles(toks, j).map_or(j + 1, |c| c + 1);
            }
            let mut paren = 0usize;
            let mut body = None;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('(') {
                    paren += 1;
                } else if t.is_punct(')') {
                    paren = paren.saturating_sub(1);
                } else if paren == 0 && t.is_punct('{') {
                    body = Some(j);
                    break;
                } else if paren == 0 && t.is_punct(';') {
                    break;
                }
                j += 1;
            }
            if let Some(open) = body {
                let close = match_brace(toks, open);
                let ctx = impls.iter().find(|c| c.range.0 < i && i < c.range.1);
                out.push(FnDef {
                    name,
                    file: file.path.clone(),
                    krate: krate.clone(),
                    self_type: ctx.and_then(|c| c.self_type.clone()),
                    trait_name: ctx.and_then(|c| c.trait_name.clone()),
                    line: toks[i].line,
                    body: (open, close),
                    file_idx,
                });
                // Nested items attribute to the outer fn.
                i = open + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// The shape of one raw call site before resolution.
enum RawCall {
    /// `recv.m(...)`; `on_self` when the receiver is literally `self`.
    Method { name: String, on_self: bool },
    /// `Path::to::m(...)` with the qualifier's last segment kept.
    Qualified { qualifier: String, name: String },
    /// `<T as Trait>::m(...)`.
    TraitQualified {
        trait_name: String,
        type_name: Option<String>,
        name: String,
    },
    /// Bare `f(...)`.
    Bare { name: String },
}

/// Scans one fn body for call sites. `attrs` masks attribute spans.
fn call_sites(file: &SourceFile, body: (usize, usize), attrs: &[bool]) -> Vec<RawCall> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    let mut j = body.0;
    while j < body.1 {
        if file.in_test[j] || attrs.get(j).copied().unwrap_or(false) {
            j += 1;
            continue;
        }
        let t = &toks[j];
        if t.kind != TokenKind::Ident {
            j += 1;
            continue;
        }
        // Where does this ident-led expression call, if anywhere? The
        // name may be followed by a turbofish before the `(`.
        let after = match parse_path_at(toks, j) {
            Some(p) if p.segments.len() == 1 => p.end,
            Some(_) | None => j + 1,
        };
        let prev = j.checked_sub(1).map(|k| &toks[k]);
        let prev_is = |c: char| prev.is_some_and(|t| t.is_punct(c));

        // A multi-segment path `a::b::c(...)`?
        if let Some(p) = parse_path_at(toks, j) {
            if p.segments.len() > 1
                && toks.get(p.end).is_some_and(|t| t.is_punct('('))
                && !prev_is(':')
                && !prev_is('.')
            {
                let name = p.segments[p.segments.len() - 1].clone();
                let qualifier = p.segments[p.segments.len() - 2].clone();
                out.push(RawCall::Qualified { qualifier, name });
                j = p.end;
                continue;
            }
        }
        // `<T as Trait>::m(...)` — the name ident preceded by `>` `::`.
        if prev_is(':') && toks.get(after).is_some_and(|t| t.is_punct('(')) {
            if let Some(q) = qualified_self_before(toks, j) {
                out.push(RawCall::TraitQualified {
                    trait_name: q.trait_name,
                    type_name: q.type_name,
                    name: t.text.clone(),
                });
                j = after;
                continue;
            }
            // Plain `path::m(` already handled by the path branch when
            // the scan started at the path head; skip the tail ident.
            j += 1;
            continue;
        }
        if !toks.get(after).is_some_and(|t| t.is_punct('(')) {
            j += 1;
            continue;
        }
        // Macro `name!(` is not a call; `fn name(` is a declaration.
        if toks.get(j + 1).is_some_and(|t| t.is_punct('!'))
            || prev.is_some_and(|t| t.is_ident("fn"))
        {
            j += 1;
            continue;
        }
        if prev_is('.') {
            let on_self = j
                .checked_sub(2)
                .and_then(|k| toks.get(k))
                .is_some_and(|t| t.is_ident("self"));
            out.push(RawCall::Method {
                name: t.text.clone(),
                on_self,
            });
            j = after;
            continue;
        }
        // Bare call — but `Some(x)`, `Ok(x)` etc. are enum constructors;
        // they resolve to nothing and classify external, which is fine.
        out.push(RawCall::Bare {
            name: t.text.clone(),
        });
        j = after;
        continue;
    }
    out
}

/// Builds the call graph over the given files.
#[must_use]
pub fn build(files: &[SourceFile]) -> CallGraph {
    let attr_masks: Vec<Vec<bool>> = files.iter().map(|f| mark_attrs(&f.tokens)).collect();

    // Pass 1: definitions.
    let mut fns: Vec<FnDef> = Vec::new();
    for (idx, file) in files.iter().enumerate() {
        fns.extend(fn_defs(file, idx, &attr_masks[idx]));
    }

    // Indexes.
    let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_type_method: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut by_trait_method: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut types_defined: BTreeSet<&str> = BTreeSet::new();
    let mut any_name: BTreeSet<&str> = BTreeSet::new();
    for (id, f) in fns.iter().enumerate() {
        any_name.insert(f.name.as_str());
        if let Some(t) = &f.self_type {
            types_defined.insert(t.as_str());
            by_type_method
                .entry((t.as_str(), f.name.as_str()))
                .or_default()
                .push(id);
        }
        if let Some(tr) = &f.trait_name {
            by_trait_method
                .entry((tr.as_str(), f.name.as_str()))
                .or_default()
                .push(id);
        }
        if f.self_type.is_some() || f.trait_name.is_some() {
            methods_by_name.entry(f.name.as_str()).or_default().push(id);
        } else {
            free_by_name.entry(f.name.as_str()).or_default().push(id);
        }
    }

    // Per-file crate scope: own crate + every `rstp_*` crate named.
    let scopes: Vec<BTreeSet<String>> = files
        .iter()
        .map(|file| {
            let mut scope = BTreeSet::new();
            scope.insert(crate_of(&file.path));
            for t in &file.tokens {
                if t.kind == TokenKind::Ident {
                    if let Some(rest) = t.text.strip_prefix("rstp_") {
                        // The one lib-name/dir-name mismatch in the tree.
                        let dir = if rest == "analyze" { "analysis" } else { rest };
                        scope.insert(dir.to_string());
                    }
                }
            }
            scope
        })
        .collect();

    // Pass 2: call sites + resolution.
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
    let mut stats = CallStats::default();
    let mut unresolved_names: BTreeMap<String, usize> = BTreeMap::new();
    for (caller_id, f) in fns.iter().enumerate() {
        let file = &files[f.file_idx];
        let scope = &scopes[f.file_idx];
        let in_scope = |ids: &[usize]| -> Vec<usize> {
            ids.iter()
                .copied()
                .filter(|&id| scope.contains(&fns[id].krate))
                .collect()
        };
        for call in call_sites(file, f.body, &attr_masks[f.file_idx]) {
            stats.sites += 1;
            // Candidates plus the confident classification for an empty
            // candidate set. Out-of-scope workspace definitions are
            // *impossible* targets — the crate graph is acyclic and the
            // caller's dependency cone is exactly its scope set — so an
            // empty set after scope filtering usually means "std", not
            // "unknown". `Unresolved` is reserved for genuine blind
            // spots: `Self::f` with no impl context, a module-qualified
            // call scoping rejected, a trait-qualified method the scope
            // cannot see.
            let (candidates, if_empty): (Vec<usize>, Resolution) = match &call {
                RawCall::Method { name, on_self } => {
                    let mut cands = Vec::new();
                    if *on_self {
                        if let Some(st) = &f.self_type {
                            cands = in_scope(
                                by_type_method
                                    .get(&(st.as_str(), name.as_str()))
                                    .map_or(&[][..], Vec::as_slice),
                            );
                        }
                    }
                    if cands.is_empty() {
                        cands = in_scope(
                            methods_by_name
                                .get(name.as_str())
                                .map_or(&[][..], Vec::as_slice),
                        );
                    }
                    // The fallback swallowed every in-scope possibility;
                    // an empty set is a std/primitive method.
                    (cands, Resolution::External)
                }
                RawCall::Qualified { qualifier, name } => {
                    if qualifier == "Self" && f.self_type.is_none() {
                        // `Self::f()` in a trait default body: the impl
                        // type is unknowable here. A blind spot when the
                        // workspace defines the name at all.
                        let blind = any_name.contains(name.as_str());
                        (
                            Vec::new(),
                            if blind {
                                Resolution::Unresolved
                            } else {
                                Resolution::External
                            },
                        )
                    } else {
                        let qual = if qualifier == "Self" {
                            f.self_type.clone().unwrap_or_default()
                        } else {
                            qualifier.clone()
                        };
                        if types_defined.contains(qual.as_str()) {
                            let cands = in_scope(
                                by_type_method
                                    .get(&(qual.as_str(), name.as_str()))
                                    .map_or(&[][..], Vec::as_slice),
                            );
                            // A workspace type: an empty candidate set is
                            // still a confident answer (derived or
                            // std-trait method).
                            (cands, Resolution::External)
                        } else {
                            // A module path (`lockorder::extract`)?
                            let module_fns: Vec<usize> = free_by_name
                                .get(name.as_str())
                                .map_or(&[][..], Vec::as_slice)
                                .iter()
                                .copied()
                                .filter(|&id| file_stem(&fns[id].file) == qual)
                                .collect();
                            if module_fns.is_empty() {
                                // `Vec::new`, `mem::swap`, `u64::from`.
                                (Vec::new(), Resolution::External)
                            } else {
                                // The module exists; scope rejecting all
                                // of it is a blind spot (re-exports).
                                (in_scope(&module_fns), Resolution::Unresolved)
                            }
                        }
                    }
                }
                RawCall::TraitQualified {
                    trait_name,
                    type_name,
                    name,
                } => {
                    let known = by_trait_method.contains_key(&(trait_name.as_str(), name.as_str()));
                    let all = in_scope(
                        by_trait_method
                            .get(&(trait_name.as_str(), name.as_str()))
                            .map_or(&[][..], Vec::as_slice),
                    );
                    let narrowed: Vec<usize> = match type_name {
                        Some(t) => {
                            let exact: Vec<usize> = all
                                .iter()
                                .copied()
                                .filter(|&id| fns[id].self_type.as_deref() == Some(t.as_str()))
                                .collect();
                            if exact.is_empty() {
                                all
                            } else {
                                exact
                            }
                        }
                        None => all,
                    };
                    // The trait implements the method somewhere but the
                    // scope hides every impl: blind spot. Never seen:
                    // a std trait (`<u32 as TryFrom>::try_from`).
                    (
                        narrowed,
                        if known {
                            Resolution::Unresolved
                        } else {
                            Resolution::External
                        },
                    )
                }
                RawCall::Bare { name } => {
                    let known = free_by_name.contains_key(name.as_str());
                    let all = free_by_name
                        .get(name.as_str())
                        .map_or(&[][..], Vec::as_slice);
                    let same_file: Vec<usize> = all
                        .iter()
                        .copied()
                        .filter(|&id| fns[id].file == f.file)
                        .collect();
                    let cands = if same_file.is_empty() {
                        let same_crate: Vec<usize> = all
                            .iter()
                            .copied()
                            .filter(|&id| fns[id].krate == f.krate)
                            .collect();
                        if same_crate.is_empty() {
                            in_scope(all)
                        } else {
                            same_crate
                        }
                    } else {
                        same_file
                    };
                    // The workspace defines this free fn but the caller
                    // cannot see it: usually an enum-variant/closure
                    // false positive, but a `use` re-export could hide a
                    // real call — count it against the rate.
                    (
                        cands,
                        if known {
                            Resolution::Unresolved
                        } else {
                            Resolution::External
                        },
                    )
                }
            };
            let resolution = if candidates.is_empty() {
                if_empty
            } else {
                Resolution::Bound
            };
            match resolution {
                Resolution::Bound => stats.bound += 1,
                Resolution::External => stats.external += 1,
                Resolution::Unresolved => {
                    stats.unresolved += 1;
                    let name = match &call {
                        RawCall::Method { name, .. }
                        | RawCall::Qualified { name, .. }
                        | RawCall::TraitQualified { name, .. }
                        | RawCall::Bare { name } => name.clone(),
                    };
                    *unresolved_names.entry(name).or_insert(0) += 1;
                }
            }
            edges[caller_id].extend(candidates);
        }
    }
    for e in &mut edges {
        e.sort_unstable();
        e.dedup();
    }

    // Pass 3: sinks.
    let sinks: Vec<Vec<Sink>> = fns
        .iter()
        .map(|f| scan_sinks(&files[f.file_idx], f.body, &attr_masks[f.file_idx]))
        .collect();

    CallGraph {
        fns,
        edges,
        sinks,
        stats,
        unresolved_names,
    }
}

/// Idents that, called with `::new`/`::with_capacity`/`::from`, create
/// a growable heap container.
const CONTAINER_TYPES: &[&str] = &[
    "Vec", "VecDeque", "String", "HashMap", "HashSet", "BTreeMap", "BTreeSet",
];

/// Scans one fn body for syntactic sinks.
fn scan_sinks(file: &SourceFile, body: (usize, usize), attrs: &[bool]) -> Vec<Sink> {
    let toks = &file.tokens;
    let has_sync_sender = toks.iter().any(|t| t.is_ident("SyncSender"));
    let mut out = Vec::new();
    for j in body.0..body.1 {
        if file.in_test[j] || attrs.get(j).copied().unwrap_or(false) {
            continue;
        }
        let t = &toks[j];
        let next_is = |off: usize, c: char| toks.get(j + off).is_some_and(|t| t.is_punct(c));
        let prev_is = |c: char| j > 0 && toks[j - 1].is_punct(c);

        if t.kind == TokenKind::Ident {
            let called = next_is(1, '(');
            let is_macro = next_is(1, '!');
            match t.text.as_str() {
                // --- panic sinks -------------------------------------
                "unwrap" | "expect"
                    if prev_is('.') && called && !checked_guard_before(toks, j - 1) =>
                {
                    out.push(Sink {
                        kind: SinkKind::Panic,
                        line: t.line,
                        what: format!(".{}()", t.text),
                    });
                }
                "panic" | "unreachable" | "todo" | "unimplemented" if is_macro => {
                    out.push(Sink {
                        kind: SinkKind::Panic,
                        line: t.line,
                        what: format!("{}!", t.text),
                    });
                }
                // --- blocking sinks ----------------------------------
                "lock" | "recv" | "recv_timeout" | "join" | "wait" | "wait_timeout"
                    if prev_is('.') && called =>
                {
                    out.push(Sink {
                        kind: SinkKind::Block,
                        line: t.line,
                        what: format!(".{}()", t.text),
                    });
                }
                "send" if prev_is('.') && called && has_sync_sender => {
                    out.push(Sink {
                        kind: SinkKind::Block,
                        line: t.line,
                        what: ".send() on a bounded channel".to_string(),
                    });
                }
                "sleep" | "park_timeout" | "park" if called && !prev_is('.') => {
                    out.push(Sink {
                        kind: SinkKind::Block,
                        line: t.line,
                        what: format!("thread::{}()", t.text),
                    });
                }
                // --- allocation sinks --------------------------------
                "to_vec" | "to_owned" | "to_string" | "clone" if prev_is('.') && called => {
                    out.push(Sink {
                        kind: SinkKind::Alloc,
                        line: t.line,
                        what: format!(".{}()", t.text),
                    });
                }
                "format" | "vec" if is_macro => {
                    out.push(Sink {
                        kind: SinkKind::Alloc,
                        line: t.line,
                        what: format!("{}!", t.text),
                    });
                }
                "Box"
                    if next_is(1, ':')
                        && next_is(2, ':')
                        && toks.get(j + 3).is_some_and(|t| t.is_ident("new"))
                        && next_is(4, '(') =>
                {
                    out.push(Sink {
                        kind: SinkKind::Alloc,
                        line: t.line,
                        what: "Box::new()".to_string(),
                    });
                }
                name if CONTAINER_TYPES.contains(&name) && next_is(1, ':') && next_is(2, ':') => {
                    if let Some(m) = toks.get(j + 3) {
                        if (m.is_ident("new") || m.is_ident("with_capacity") || m.is_ident("from"))
                            && next_is(4, '(')
                        {
                            out.push(Sink {
                                kind: SinkKind::Alloc,
                                line: t.line,
                                what: format!("{name}::{}()", m.text),
                            });
                        }
                    }
                }
                _ => {}
            }
        }
        // Variable slice indexing: `expr[...]` where the bracket holds
        // anything beyond literals / `..` / SCREAMING consts.
        if t.is_punct('[') && j > 0 {
            let prev = &toks[j - 1];
            let indexable = prev.kind == TokenKind::Ident && !is_keyword(&prev.text)
                || prev.is_punct(')')
                || prev.is_punct(']');
            if indexable && !constant_index(toks, j) {
                out.push(Sink {
                    kind: SinkKind::Panic,
                    line: t.line,
                    what: "variable slice indexing".to_string(),
                });
            }
        }
    }
    out
}

/// True when the call chain feeding `.unwrap()`/`.expect()` at the `.`
/// index ends in a `checked_*` arithmetic call: the checked-guard idiom
/// (`a.checked_add(b).expect("overflow")`) is a machine-verified
/// overflow guard, not an unvalidated panic.
#[must_use]
pub fn checked_guard_before(toks: &[Token], dot: usize) -> bool {
    if dot == 0 || !toks[dot - 1].is_punct(')') {
        return false;
    }
    // Find the matching `(` backward.
    let mut depth = 0usize;
    let mut k = dot - 1;
    loop {
        if toks[k].is_punct(')') {
            depth += 1;
        } else if toks[k].is_punct('(') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if k == 0 {
            return false;
        }
        k -= 1;
    }
    k.checked_sub(1)
        .and_then(|i| toks.get(i))
        .is_some_and(|t| t.kind == TokenKind::Ident && t.text.starts_with("checked_"))
}

/// Keywords that may directly precede `[` without forming an index
/// expression (`return [a, b]`, `break [x]`, ...).
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "return" | "break" | "in" | "as" | "else" | "match" | "let" | "mut" | "ref" | "move"
    )
}

/// True when the bracket span opening at `open` holds only numeric
/// literals, range dots, and SCREAMING_CASE constants — an index the
/// fixed layouts make statically safe (and the pinned golden-byte tests
/// check besides).
fn constant_index(toks: &[Token], open: usize) -> bool {
    let mut depth = 0usize;
    for t in toks.iter().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return true;
            }
        } else {
            match t.kind {
                TokenKind::Number => {}
                TokenKind::Ident => {
                    let screaming = !t.text.is_empty()
                        && t.text
                            .chars()
                            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_');
                    if !screaming {
                        return false;
                    }
                }
                TokenKind::Punct('.')
                | TokenKind::Punct('+')
                | TokenKind::Punct('-')
                | TokenKind::Punct('=') => {}
                _ => return false,
            }
        }
    }
    // Unterminated bracket: be conservative, call it variable.
    false
}

/// Renders the graph in DOT format (for `--emit-call-graph`): one node
/// per function that participates in an edge, plus the sink counts.
#[must_use]
pub fn render_dot(graph: &CallGraph) -> String {
    let mut s = String::new();
    s.push_str("// Workspace call graph, extracted by rstp-analyze.\n");
    s.push_str(&format!(
        "// {} fns, {} call sites, {:.1}% resolved ({} bound, {} external, {} unresolved)\n",
        graph.fns.len(),
        graph.stats.sites,
        graph.stats.resolution_rate() * 100.0,
        graph.stats.bound,
        graph.stats.external,
        graph.stats.unresolved,
    ));
    s.push_str("digraph calls {\n");
    for (from, callees) in graph.edges.iter().enumerate() {
        for &to in callees {
            s.push_str(&format!(
                "  \"{}\" -> \"{}\";\n",
                graph.fns[from].display(),
                graph.fns[to].display()
            ));
        }
    }
    for (id, sinks) in graph.sinks.iter().enumerate() {
        if !sinks.is_empty() {
            s.push_str(&format!(
                "  \"{}\" [sinks=\"{}\"];\n",
                graph.fns[id].display(),
                sinks.len()
            ));
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(src: &str) -> CallGraph {
        let file = SourceFile::new("crates/serve/src/x.rs", src);
        build(std::slice::from_ref(&file))
    }

    #[test]
    fn free_fns_and_methods_are_indexed_with_context() {
        let g = graph_of(
            "fn free() {}\n\
             struct S;\n\
             impl S { fn m(&self) {} }\n\
             trait T { fn d(&self) { self.m2(); } }\n\
             impl T for S { fn t(&self) {} }",
        );
        let names: Vec<_> = g.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["free", "m", "d", "t"]);
        assert_eq!(g.fns[1].self_type.as_deref(), Some("S"));
        assert_eq!(g.fns[2].trait_name.as_deref(), Some("T"));
        assert_eq!(g.fns[3].self_type.as_deref(), Some("S"));
        assert_eq!(g.fns[3].trait_name.as_deref(), Some("T"));
    }

    #[test]
    fn self_calls_bind_to_the_impl_type() {
        let g = graph_of(
            "struct A; struct B;\n\
             impl A { fn go(&self) { self.helper(); } fn helper(&self) {} }\n\
             impl B { fn helper(&self) {} }",
        );
        let go = g.find("A", "go")[0];
        let a_helper = g.find("A", "helper")[0];
        assert_eq!(g.edges[go], vec![a_helper]);
    }

    #[test]
    fn method_fallback_is_all_impls_of_that_name() {
        let g = graph_of(
            "struct A; struct B;\n\
             fn go(x: &A) { x.helper(); }\n\
             impl A { fn helper(&self) {} }\n\
             impl B { fn helper(&self) {} }",
        );
        let go = g.find_in_file("crates/serve/src/x.rs", "go")[0];
        assert_eq!(g.edges[go].len(), 2, "both impls are candidates");
    }

    #[test]
    fn qualified_calls_resolve_through_the_type_and_turbofish() {
        let g = graph_of(
            "struct W;\n\
             impl W { fn new() -> W { W } }\n\
             fn go() { let _ = W::new(); let _ = W::<u8>::new(); }",
        );
        let go = g.find_in_file("crates/serve/src/x.rs", "go")[0];
        let new = g.find("W", "new")[0];
        assert_eq!(g.edges[go], vec![new]);
        // Vec::new is external, not unresolved.
        let g = graph_of("fn go() { let v: Vec<u8> = Vec::new(); }");
        assert_eq!(g.stats.unresolved, 0);
    }

    #[test]
    fn fully_qualified_trait_calls_resolve() {
        let g = graph_of(
            "struct S;\n\
             trait Enc { fn enc(&self); }\n\
             impl Enc for S { fn enc(&self) {} }\n\
             fn go(s: &S) { <S as Enc>::enc(s); }",
        );
        let go = g.find_in_file("crates/serve/src/x.rs", "go")[0];
        let enc = g.find("Enc", "enc")[0];
        assert_eq!(g.edges[go], vec![enc]);
    }

    #[test]
    fn sinks_are_classified() {
        let g = graph_of(
            "fn f(v: &[u8], i: usize) {\n\
               v.get(i).unwrap();\n\
               let x = v[i];\n\
               let y = v[0];\n\
               let q = self.q.lock();\n\
               let b = v.to_vec();\n\
             }",
        );
        let sinks = &g.sinks[0];
        let panics = sinks.iter().filter(|s| s.kind == SinkKind::Panic).count();
        let blocks = sinks.iter().filter(|s| s.kind == SinkKind::Block).count();
        let allocs = sinks.iter().filter(|s| s.kind == SinkKind::Alloc).count();
        assert_eq!(panics, 2, "unwrap + v[i]; v[0] is constant: {sinks:?}");
        assert_eq!(blocks, 1);
        assert_eq!(allocs, 1);
    }

    #[test]
    fn checked_guard_expect_is_exempt() {
        let g = graph_of(
            "fn f(a: u64, b: u64) -> u64 { a.checked_add(b).expect(\"overflow\") }\n\
             fn g(a: u64) -> u64 { a.checked_mul(2).unwrap() }\n\
             fn h(o: Option<u64>) -> u64 { o.expect(\"no\") }",
        );
        assert!(g.sinks[0].is_empty(), "{:?}", g.sinks[0]);
        assert!(g.sinks[1].is_empty(), "{:?}", g.sinks[1]);
        assert_eq!(g.sinks[2].len(), 1);
    }

    #[test]
    fn screaming_const_indexing_is_not_a_sink() {
        let g = graph_of(
            "fn f(v: &[u8]) { let a = v[FRAME_LEN]; let b = v[..FRAME_LEN_V2]; let c = v[4..8]; }",
        );
        assert!(g.sinks[0].is_empty(), "{:?}", g.sinks[0]);
    }

    #[test]
    fn attributes_and_macros_are_not_calls() {
        let g = graph_of(
            "#[derive(Clone)]\nstruct S;\n#[cfg(feature = \"x\")]\nfn gated() {}\n\
             fn f() { println!(\"hi {}\", 1); }",
        );
        // `derive`, `cfg`, `println` never become call sites; println's
        // args are scanned but contain no calls.
        assert!(g.stats.sites == 0, "{:?}", g.stats);
    }

    #[test]
    fn scope_limits_cross_crate_resolution() {
        let a = SourceFile::new(
            "crates/net/src/a.rs",
            "pub fn shared() {} pub struct N; impl N { pub fn m(&self) {} }",
        );
        // serve/b.rs names rstp_net, so net is in scope.
        let b = SourceFile::new(
            "crates/serve/src/b.rs",
            "use rstp_net::N;\nfn go(n: &N) { n.m(); }",
        );
        // cli/c.rs does not name rstp_net: the method call cannot bind.
        let c = SourceFile::new("crates/cli/src/c.rs", "fn go2(n: &X) { n.m(); }");
        let g = build(&[a, b, c]);
        let go = g.find_in_file("crates/serve/src/b.rs", "go")[0];
        let m = g.find("N", "m")[0];
        assert_eq!(g.edges[go], vec![m]);
        let go2 = g.find_in_file("crates/cli/src/c.rs", "go2")[0];
        assert!(g.edges[go2].is_empty());
    }
}
