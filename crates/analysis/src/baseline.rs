//! The suppression baseline: `analysis/baseline.toml`.
//!
//! Findings are deny-by-default; the only way to silence one is a
//! checked-in `[[allow]]` entry carrying a non-empty `reason`. Entries
//! match findings by `(rule, path)` and suppress at most `count` of
//! them (default 1). An entry that matches nothing — or claims more
//! findings than exist — is itself a finding (`stale-baseline`), so the
//! baseline can only shrink as violations get fixed.
//!
//! The parser handles exactly the subset the file uses: `[[allow]]`
//! tables with `key = "string"` / `key = integer` pairs and `#`
//! comments. Anything else is a hard `baseline-parse` error; a
//! suppression file too clever to parse suppresses nothing.

use crate::rules::Finding;
use std::collections::BTreeMap;

/// One `[[allow]]` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Rule id the entry suppresses.
    pub rule: String,
    /// Workspace-relative path the entry applies to.
    pub path: String,
    /// How many findings of `(rule, path)` it covers.
    pub count: u32,
    /// Why the violation is acceptable (required, non-empty).
    pub reason: String,
    /// 1-based line of the `[[allow]]` header, for diagnostics.
    pub line: u32,
}

/// Parses baseline text. `Err` carries a message with a line number.
pub fn parse(text: &str) -> Result<Vec<Entry>, String> {
    let mut entries: Vec<Entry> = Vec::new();
    let mut open: Option<Entry> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = u32::try_from(idx + 1).unwrap_or(u32::MAX);
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(e) = open.take() {
                entries.push(finish(e)?);
            }
            open = Some(Entry {
                rule: String::new(),
                path: String::new(),
                count: 1,
                reason: String::new(),
                line: lineno,
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "line {lineno}: unexpected table `{line}` (only [[allow]] is recognised)"
            ));
        }
        let Some(e) = open.as_mut() else {
            return Err(format!("line {lineno}: key outside an [[allow]] entry"));
        };
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {lineno}: expected `key = value`"));
        };
        let (key, value) = (key.trim(), value.trim());
        match key {
            "rule" => e.rule = unquote(value, lineno)?,
            "path" => e.path = unquote(value, lineno)?,
            "reason" => e.reason = unquote(value, lineno)?,
            "count" => {
                e.count = value
                    .parse()
                    .map_err(|_| format!("line {lineno}: count must be a positive integer"))?;
                if e.count == 0 {
                    return Err(format!("line {lineno}: count must be at least 1"));
                }
            }
            other => {
                return Err(format!("line {lineno}: unknown key `{other}`"));
            }
        }
    }
    if let Some(e) = open.take() {
        entries.push(finish(e)?);
    }
    Ok(entries)
}

fn finish(e: Entry) -> Result<Entry, String> {
    if e.rule.is_empty() {
        return Err(format!(
            "line {}: [[allow]] entry is missing `rule`",
            e.line
        ));
    }
    if e.path.is_empty() {
        return Err(format!(
            "line {}: [[allow]] entry is missing `path`",
            e.line
        ));
    }
    if e.reason.trim().is_empty() {
        return Err(format!(
            "line {}: [[allow]] entry for {} at {} has no `reason` — every suppression \
             must say why",
            e.line, e.rule, e.path
        ));
    }
    Ok(e)
}

fn unquote(value: &str, lineno: u32) -> Result<String, String> {
    let v = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("line {lineno}: expected a double-quoted string"))?;
    if v.contains('"') || v.contains('\\') {
        return Err(format!(
            "line {lineno}: escapes are not supported in baseline strings"
        ));
    }
    Ok(v.to_string())
}

/// Applies the baseline: returns `(surviving findings, hygiene findings)`.
///
/// Hygiene findings (`stale-baseline`) are emitted for `(rule, path)`
/// groups whose combined `count` exceeds the live findings — including
/// entries that match nothing at all.
#[must_use]
pub fn apply(findings: Vec<Finding>, entries: &[Entry]) -> (Vec<Finding>, Vec<Finding>) {
    // Budget per (rule, path) group.
    let mut budget: BTreeMap<(String, String), u32> = BTreeMap::new();
    for e in entries {
        *budget.entry((e.rule.clone(), e.path.clone())).or_insert(0) += e.count;
    }
    let mut used: BTreeMap<(String, String), u32> = BTreeMap::new();
    let mut surviving = Vec::new();
    for f in findings {
        let key = (f.rule.to_string(), f.path.clone());
        let allowed = budget.get(&key).copied().unwrap_or(0);
        let u = used.entry(key).or_insert(0);
        if *u < allowed {
            *u += 1;
        } else {
            surviving.push(f);
        }
    }
    let mut hygiene = Vec::new();
    let mut reported: BTreeMap<(String, String), bool> = BTreeMap::new();
    for e in entries {
        let key = (e.rule.clone(), e.path.clone());
        let claimed = budget.get(&key).copied().unwrap_or(0);
        let consumed = used.get(&key).copied().unwrap_or(0);
        if consumed < claimed && !reported.contains_key(&key) {
            reported.insert(key, true);
            hygiene.push(Finding {
                rule: "stale-baseline",
                path: "analysis/baseline.toml".to_string(),
                line: e.line,
                message: format!(
                    "entry for {} at {} covers {} finding(s) but only {} exist — shrink or \
                     delete it",
                    e.rule, e.path, claimed, consumed
                ),
            });
        }
    }
    (surviving, hygiene)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# comment\n\
[[allow]]\n\
rule = \"panic-in-protocol-path\"\n\
path = \"crates/sim/src/runner.rs\"\n\
count = 2\n\
reason = \"schedule indices validated by construction\"\n\
\n\
[[allow]]\n\
rule = \"sleep-outside-pacer\"\n\
path = \"crates/serve/src/server.rs\"\n\
reason = \"idle nap bounded by tick/4\"\n";

    fn finding(rule: &'static str, path: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line: 1,
            message: String::new(),
        }
    }

    #[test]
    fn parses_entries_with_defaults() {
        let entries = parse(GOOD).expect("parses");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].count, 2);
        assert_eq!(entries[1].count, 1);
        assert_eq!(entries[1].rule, "sleep-outside-pacer");
    }

    #[test]
    fn reason_is_mandatory() {
        let bad = "[[allow]]\nrule = \"x\"\npath = \"y\"\n";
        let err = parse(bad).expect_err("must fail");
        assert!(err.contains("reason"), "{err}");
        let blank = "[[allow]]\nrule = \"x\"\npath = \"y\"\nreason = \"  \"\n";
        assert!(parse(blank).is_err());
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(parse("[allow]\n").is_err());
        assert!(parse("rule = \"x\"\n").is_err());
        assert!(parse("[[allow]]\nrule: \"x\"\n").is_err());
        assert!(parse(
            "[[allow]]\ncount = \"three\"\nrule = \"r\"\npath = \"p\"\nreason = \"z\"\n"
        )
        .is_err());
    }

    #[test]
    fn apply_suppresses_up_to_count_and_reports_stale() {
        let entries = parse(GOOD).expect("parses");
        let findings = vec![
            finding("panic-in-protocol-path", "crates/sim/src/runner.rs"),
            finding("panic-in-protocol-path", "crates/sim/src/runner.rs"),
            finding("panic-in-protocol-path", "crates/sim/src/runner.rs"),
        ];
        let (survive, hygiene) = apply(findings, &entries);
        // Two suppressed, one survives; the sleep entry matched nothing.
        assert_eq!(survive.len(), 1);
        assert_eq!(hygiene.len(), 1);
        assert_eq!(hygiene[0].rule, "stale-baseline");
        assert!(
            hygiene[0].message.contains("sleep-outside-pacer"),
            "{}",
            hygiene[0].message
        );
    }

    #[test]
    fn exact_match_is_clean() {
        let entries =
            parse("[[allow]]\nrule = \"r\"\npath = \"p\"\nreason = \"why\"\n").expect("parses");
        let (survive, hygiene) = apply(vec![finding("r", "p")], &entries);
        assert!(survive.is_empty());
        assert!(hygiene.is_empty());
    }
}
