//! Call-graph robustness properties: `callgraph::build` and the
//! reachability passes inherit the lexer's contract — *any* input
//! produces a graph and a finding list, never a panic. The analyzer
//! must survive half-written files mid-refactor.

use proptest::prelude::*;
use rstp_analyze::callgraph::build;
use rstp_analyze::reach::run_passes;
use rstp_analyze::source::SourceFile;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn build_never_panics_on_byte_soup(
        bytes in proptest::collection::vec(any::<u8>(), 0..768),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let file = SourceFile::new("crates/x/src/soup.rs", &text);
        let graph = build(std::slice::from_ref(&file));
        let _ = run_passes(&graph);
    }

    #[test]
    fn build_never_panics_on_rust_shaped_soup(
        pieces in proptest::collection::vec(0usize..16, 0..96),
    ) {
        // Not random bytes but the tokens the fn/impl scanner actually
        // dispatches on, in arbitrary order — truncated items, orphaned
        // turbofish, unbalanced impl blocks.
        const ATOMS: [&str; 16] = [
            "fn ", "impl ", "for ", "::", "<", ">", "(", ")", "{", "}",
            "self", ".", "unwrap", "run_shard", " as ", ";",
        ];
        let text: String = pieces.iter().map(|i| ATOMS[*i]).collect();
        let file = SourceFile::new("crates/serve/src/shard.rs", &text);
        let graph = build(std::slice::from_ref(&file));
        let (findings, stats) = run_passes(&graph);
        // Whatever the soup parses to, accounting stays coherent.
        prop_assert!(findings.iter().all(|f| f.path == "crates/serve/src/shard.rs"));
        for s in &stats {
            prop_assert!(s.reachable >= s.entries, "{}: {} < {}", s.rule, s.reachable, s.entries);
        }
    }
}
