//! Fixture: timing routed through the sanctioned clock; wall-clock reads
//! appear only inside test code.

pub fn deadline_check(now_micros: u64, deadline_micros: u64) -> bool {
    now_micros > deadline_micros
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_clock_reads_are_exempt() {
        let _ = std::time::Instant::now();
    }
}
