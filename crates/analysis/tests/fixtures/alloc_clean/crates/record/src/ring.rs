//! Fixture: the same append copies into a fixed inline buffer — no
//! allocation anywhere under `RingProducer::push`.

pub struct RingProducer;

impl RingProducer {
    pub fn push(&mut self, bytes: &[u8]) {
        self.store(bytes);
    }

    fn store(&mut self, bytes: &[u8]) {
        let mut len = 0;
        for (slot, b) in self.last.iter_mut().zip(bytes) {
            *slot = *b;
            len += 1;
        }
        self.last_len = len;
    }
}
