//! Fixture: the same dispatch path with the absent case handled
//! explicitly — nothing reachable from `run_shard` can abort.

pub(crate) fn run_shard(frames: &[Option<u8>]) {
    for f in frames {
        dispatch(f);
    }
}

fn dispatch(f: &Option<u8>) {
    if let Some(f) = f {
        apply(*f);
    }
}

fn apply(_f: u8) {}
