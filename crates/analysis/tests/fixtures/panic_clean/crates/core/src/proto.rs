//! Fixture: the same lookup with a typed error instead of a panic.

pub fn next_symbol(input: &[u64]) -> Result<u64, &'static str> {
    input.first().copied().ok_or("empty input")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_unwrap_is_exempt() {
        assert_eq!(super::next_symbol(&[7]).unwrap(), 7);
    }
}
