//! Fixture: no blocking sleeps; callers poll against a deadline they own.

pub fn settle(mut poll: impl FnMut() -> bool, budget: u64) -> bool {
    for _ in 0..budget {
        if poll() {
            return true;
        }
    }
    false
}
