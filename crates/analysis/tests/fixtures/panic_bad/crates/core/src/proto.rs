//! Fixture: a panic on the protocol path.

pub fn next_symbol(input: &[u64]) -> u64 {
    *input.first().unwrap()
}
