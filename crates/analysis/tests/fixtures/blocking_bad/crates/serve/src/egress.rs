//! Fixture: an `EgressSink::send_batch` impl that parks on a mutex one
//! call below the trait method — blocking on the per-frame path.

pub struct Egress;

impl EgressSink for Egress {
    fn send_batch(&mut self) {
        self.flush();
    }
}

impl Egress {
    fn flush(&self) {
        if let Ok(mut q) = self.q.lock() {
            q.emit();
        }
    }
}
