//! Fixture: the ring append path allocates per frame — a `.to_vec()`
//! hiding one call below `RingProducer::push`.

pub struct RingProducer;

impl RingProducer {
    pub fn push(&mut self, bytes: &[u8]) {
        self.store(bytes);
    }

    fn store(&mut self, bytes: &[u8]) {
        self.last = bytes.to_vec();
    }
}
