//! Fixture: a stray wall-clock read outside the driver/pacer modules.

pub fn deadline_check() -> bool {
    let started = std::time::Instant::now();
    started.elapsed().as_micros() > 10
}
