//! Fixture: both paths agree on the order table -> journal.

use std::collections::HashMap;
use std::sync::Mutex;

pub struct State {
    table: Mutex<HashMap<u32, u64>>,
    journal: Mutex<Vec<u64>>,
}

impl State {
    pub fn record(&self, id: u32, v: u64) {
        let mut table = self.table.lock().unwrap_or_else(|e| e.into_inner());
        let mut journal = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        table.insert(id, v);
        journal.push(v);
    }

    pub fn replay(&self) -> usize {
        let table = self.table.lock().unwrap_or_else(|e| e.into_inner());
        let journal = self.journal.lock().unwrap_or_else(|e| e.into_inner());
        journal.len() + table.len()
    }
}
