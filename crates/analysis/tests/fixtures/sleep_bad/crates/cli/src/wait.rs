//! Fixture: an unaccounted blocking sleep.

pub fn settle() {
    std::thread::sleep(std::time::Duration::from_millis(5));
}
