//! Fixture: an unbounded queue in a transport crate.
use std::sync::mpsc;

pub fn ingress() -> (mpsc::Sender<Vec<u8>>, mpsc::Receiver<Vec<u8>>) {
    mpsc::channel()
}
