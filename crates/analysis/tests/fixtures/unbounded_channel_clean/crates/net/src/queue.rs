//! Fixture: bounded ingress; overload becomes backpressure.
use std::sync::mpsc;

pub fn ingress(cap: usize) -> (mpsc::SyncSender<Vec<u8>>, mpsc::Receiver<Vec<u8>>) {
    mpsc::sync_channel(cap)
}
