//! Fixture: the shard dispatch path reaches a panic two calls deep.
//! serve is outside the token-level panic rule's scope, so only the
//! interprocedural pass can see this.

pub(crate) fn run_shard(frames: &[Option<u8>]) {
    for f in frames {
        dispatch(f);
    }
}

fn dispatch(f: &Option<u8>) {
    apply(f.unwrap());
}

fn apply(_f: u8) {}
