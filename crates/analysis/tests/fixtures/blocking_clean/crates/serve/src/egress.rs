//! Fixture: the same egress flush done the sanctioned way — `try_lock`
//! with the contended case dropped, UDP semantics.

pub struct Egress;

impl EgressSink for Egress {
    fn send_batch(&mut self) {
        self.flush();
    }
}

impl Egress {
    fn flush(&self) {
        match self.q.try_lock() {
            Ok(mut q) => q.emit(),
            Err(_) => {} // contended: drop the batch, never park
        }
    }
}
