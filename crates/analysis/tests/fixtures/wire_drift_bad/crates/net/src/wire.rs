//! Fixture: wire constants whose prose drifted.

/// Total length of an encoded v1 frame.
pub const FRAME_LEN: usize = 36;
/// v2 appends the 4-byte session id extension.
pub const FRAME_LEN_V2: usize = FRAME_LEN + 4;
