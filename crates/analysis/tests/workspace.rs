//! The self-hosting regression test: the analyzer runs on the very
//! workspace that ships it, and that workspace must stay clean.
//!
//! This is the test-suite twin of the CI `analyze` job: any new
//! violation (or a baseline entry gone stale) fails `cargo test` before
//! it ever reaches CI.

use rstp_analyze::{analyze_workspace, lockorder, LOCK_ORDER_PATH};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_has_no_unbaselined_findings() {
    let report = analyze_workspace(&workspace_root()).expect("workspace analyzes");
    assert!(
        report.is_clean(),
        "fix the finding or baseline it with a reason:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {}:{}: [{}] {}", f.path, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The suite must actually be scanning the tree, not an empty dir.
    assert!(report.files_scanned > 50, "{} files", report.files_scanned);
}

#[test]
fn serve_lock_graph_is_acyclic_and_checked_in() {
    let root = workspace_root();
    let report = analyze_workspace(&root).expect("workspace analyzes");
    assert!(
        report.graph.cycles.is_empty(),
        "serve lock graph has a cycle: {:?}",
        report.graph.cycles
    );
    assert!(
        !report.graph.nodes.is_empty(),
        "serve must have observable locks — did the extractor lose them?"
    );
    let on_disk = std::fs::read_to_string(root.join(LOCK_ORDER_PATH))
        .expect("analysis/lock-order.toml is checked in");
    assert_eq!(
        on_disk.trim_end(),
        lockorder::render_toml(&report.graph).trim_end(),
        "lock order drifted — regenerate with `rstp analyze --emit-lock-order {LOCK_ORDER_PATH}`"
    );
}

#[test]
fn call_graph_resolves_the_workspace_it_ships_in() {
    // The self-hosting bar for the interprocedural passes: at least 95%
    // of call sites in this workspace must resolve to a definition or a
    // recognized external. Below that, reachability claims are noise.
    let report = analyze_workspace(&workspace_root()).expect("workspace analyzes");
    let stats = &report.call_graph.stats;
    assert!(
        stats.resolution_rate() >= 0.95,
        "call-site resolution fell to {:.1}% ({} of {} sites); top unresolved names: {:?}",
        stats.resolution_rate() * 100.0,
        stats.bound + stats.external,
        stats.sites,
        report
            .call_graph
            .unresolved_names
            .iter()
            .take(20)
            .collect::<Vec<_>>()
    );
    // The graph must actually cover the tree, not a sliver of it.
    assert!(
        report.call_graph.fns.len() > 500,
        "{} fns",
        report.call_graph.fns.len()
    );
    // And each pass must find its entry points — an empty entry set
    // would make every pass vacuously clean.
    for pass in &report.passes {
        assert!(
            pass.entries > 0,
            "pass {} matched no entry points — did a Matcher go stale?",
            pass.rule
        );
    }
}

#[test]
fn hub_nesting_stays_out_of_the_edge_set() {
    // serve::hub's egress resolves a client inbox under the map lock but
    // releases the map guard (its match-arm block ends) before locking
    // the inbox. The hold-span model must see that release: an edge
    // clients -> inbox here would claim nesting that doesn't exist, and
    // the day someone *does* hold both, this test plus the drift file
    // will both move.
    let report = analyze_workspace(&workspace_root()).expect("workspace analyzes");
    assert!(
        !report
            .graph
            .edges
            .iter()
            .any(|e| e.from == "serve/hub::clients" && e.to == "serve/hub::inbox"),
        "hub map guard must drop before the inbox lock: {:?}",
        report.graph.edges
    );
}
