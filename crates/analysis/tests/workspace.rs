//! The self-hosting regression test: the analyzer runs on the very
//! workspace that ships it, and that workspace must stay clean.
//!
//! This is the test-suite twin of the CI `analyze` job: any new
//! violation (or a baseline entry gone stale) fails `cargo test` before
//! it ever reaches CI.

use rstp_analyze::{analyze_workspace, lockorder, LOCK_ORDER_PATH};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_has_no_unbaselined_findings() {
    let report = analyze_workspace(&workspace_root()).expect("workspace analyzes");
    assert!(
        report.is_clean(),
        "fix the finding or baseline it with a reason:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {}:{}: [{}] {}", f.path, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The suite must actually be scanning the tree, not an empty dir.
    assert!(report.files_scanned > 50, "{} files", report.files_scanned);
}

#[test]
fn serve_lock_graph_is_acyclic_and_checked_in() {
    let root = workspace_root();
    let report = analyze_workspace(&root).expect("workspace analyzes");
    assert!(
        report.graph.cycles.is_empty(),
        "serve lock graph has a cycle: {:?}",
        report.graph.cycles
    );
    assert!(
        !report.graph.nodes.is_empty(),
        "serve must have observable locks — did the extractor lose them?"
    );
    let on_disk = std::fs::read_to_string(root.join(LOCK_ORDER_PATH))
        .expect("analysis/lock-order.toml is checked in");
    assert_eq!(
        on_disk.trim_end(),
        lockorder::render_toml(&report.graph).trim_end(),
        "lock order drifted — regenerate with `rstp analyze --emit-lock-order {LOCK_ORDER_PATH}`"
    );
}

#[test]
fn hub_nesting_stays_out_of_the_edge_set() {
    // serve::hub's egress resolves a client inbox under the map lock but
    // releases the map guard (its match-arm block ends) before locking
    // the inbox. The hold-span model must see that release: an edge
    // clients -> inbox here would claim nesting that doesn't exist, and
    // the day someone *does* hold both, this test plus the drift file
    // will both move.
    let report = analyze_workspace(&workspace_root()).expect("workspace analyzes");
    assert!(
        !report
            .graph
            .edges
            .iter()
            .any(|e| e.from == "hub::clients" && e.to == "hub::inbox"),
        "hub map guard must drop before the inbox lock: {:?}",
        report.graph.edges
    );
}
