//! Fixture-tree tests: every lint catches its known-bad fixture and
//! stays quiet on the matching clean one.
//!
//! Each fixture under `tests/fixtures/` is a miniature workspace
//! (`crates/<member>/src/*.rs`, optionally `docs/` and `analysis/`);
//! the files are analysis *data*, never compiled. `*_bad` trees carry
//! exactly one violation of their target rule; `*_clean` trees express
//! the same intent the sanctioned way.

use rstp_analyze::analyze_workspace;
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Findings of `rule` in the named fixture tree.
fn findings_of(name: &str, rule: &str) -> Vec<String> {
    let report = analyze_workspace(&fixture(name)).expect("fixture analyzes");
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| format!("{}:{}: {}", f.path, f.line, f.message))
        .collect()
}

fn assert_caught(bad: &str, clean: &str, rule: &str) {
    let hits = findings_of(bad, rule);
    assert_eq!(
        hits.len(),
        1,
        "{bad} must trip {rule} exactly once: {hits:?}"
    );
    let quiet = findings_of(clean, rule);
    assert!(quiet.is_empty(), "{clean} must not trip {rule}: {quiet:?}");
}

#[test]
fn wall_clock_fixtures() {
    assert_caught(
        "wall_clock_bad",
        "wall_clock_clean",
        "wall-clock-outside-driver",
    );
}

#[test]
fn unbounded_channel_fixtures() {
    assert_caught(
        "unbounded_channel_bad",
        "unbounded_channel_clean",
        "unbounded-channel",
    );
}

#[test]
fn panic_fixtures() {
    assert_caught("panic_bad", "panic_clean", "panic-in-protocol-path");
}

#[test]
fn sleep_fixtures() {
    assert_caught("sleep_bad", "sleep_clean", "sleep-outside-pacer");
}

#[test]
fn wire_drift_fixtures() {
    assert_caught("wire_drift_bad", "wire_drift_clean", "wire-const-drift");
}

#[test]
fn panic_reach_fixtures() {
    // serve is outside the token-level panic rule's scope, so only the
    // interprocedural pass can flag this pair.
    assert_caught("panic_reach_bad", "panic_reach_clean", "panic-reachable");
    let hits = findings_of("panic_reach_bad", "panic-reachable");
    assert!(
        hits[0].contains("run_shard -> serve/shard::dispatch"),
        "finding must carry the entry→sink chain: {hits:?}"
    );
}

#[test]
fn blocking_fixtures() {
    assert_caught("blocking_bad", "blocking_clean", "blocking-in-nonblocking");
    let hits = findings_of("blocking_bad", "blocking-in-nonblocking");
    assert!(
        hits[0].contains("send_batch -> serve/egress::Egress::flush"),
        "finding must name the trait entry point: {hits:?}"
    );
    // The clean tree's try_lock is invisible to the waits-for graph too:
    // a lock you never park on cannot deadlock.
    let report = analyze_workspace(&fixture("blocking_clean")).expect("fixture analyzes");
    assert!(report.graph.nodes.is_empty(), "{:?}", report.graph.nodes);
}

#[test]
fn alloc_fixtures() {
    assert_caught("alloc_bad", "alloc_clean", "alloc-in-steady-state");
}

#[test]
fn lock_cycle_fixture_is_detected() {
    let hits = findings_of("lock_cycle_bad", "lock-order-cycle");
    assert_eq!(hits.len(), 1, "ABBA order must be a cycle: {hits:?}");
    assert!(
        hits[0].contains("state::table") && hits[0].contains("state::journal"),
        "cycle names both locks: {hits:?}"
    );
}

#[test]
fn acyclic_fixture_is_fully_clean() {
    // This fixture also checks the drift rule end to end: its
    // analysis/lock-order.toml is checked in and must match extraction.
    let report = analyze_workspace(&fixture("lock_acyclic_clean")).expect("fixture analyzes");
    assert!(
        report.is_clean(),
        "acyclic fixture must be clean: {:?}",
        report.findings
    );
    assert_eq!(report.graph.cycles.len(), 0);
    assert_eq!(
        report.graph.order,
        vec!["serve/state::table", "serve/state::journal"]
    );
}

#[test]
fn every_bad_fixture_fails_the_analyzer() {
    for bad in [
        "wall_clock_bad",
        "unbounded_channel_bad",
        "panic_bad",
        "sleep_bad",
        "wire_drift_bad",
        "lock_cycle_bad",
        "panic_reach_bad",
        "blocking_bad",
        "alloc_bad",
    ] {
        let report = analyze_workspace(&fixture(bad)).expect("fixture analyzes");
        assert!(!report.is_clean(), "{bad} must produce findings");
    }
}
