//! Lexer robustness properties: the lexer's contract is that *any*
//! input produces a token list without panicking, since the analyzer
//! must survive whatever bytes a workspace file throws at it.

use proptest::prelude::*;
use rstp_analyze::lexer::{lex, TokenKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Workspace files are read as UTF-8; lossy decoding is the
        // harshest thing a file read can feed the lexer.
        let text = String::from_utf8_lossy(&bytes);
        let _ = lex(&text);
    }

    #[test]
    fn adversarial_delimiter_soup_never_panics(
        pieces in proptest::collection::vec(0usize..12, 0..64),
    ) {
        // Chain the constructs with tricky terminator rules.
        const ATOMS: [&str; 12] = [
            "\"", "r#\"", "'", "b'", "/*", "*/", "//", "\\", "\n", "'a", "#\"", "br##\"",
        ];
        let text: String = pieces.iter().map(|i| ATOMS[*i]).collect();
        let _ = lex(&text);
    }

    #[test]
    fn idents_round_trip_through_noise(
        letters in proptest::collection::vec(0usize..26, 1..10),
        junk in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        // An identifier surrounded by arbitrary noise still comes out as
        // an Ident token with its exact text. (The vendored proptest has
        // no regex strategies, so the name is built from letter indices.)
        let name: String = letters
            .iter()
            .map(|i| char::from(b'a' + u8::try_from(*i).unwrap_or(0)))
            .collect();
        let noise = String::from_utf8_lossy(&junk).replace(|c: char| c.is_alphanumeric() || c == '_' || c == '"' || c == '\'' || c == '/' || c == '#', "");
        let text = format!("{noise} {name} {noise}");
        let toks = lex(&text);
        prop_assert!(
            toks.iter().any(|t| t.kind == TokenKind::Ident && t.text == name),
            "lost {name:?} in {text:?}"
        );
    }
}
