//! Lexer robustness properties: the lexer's contract is that *any*
//! input produces a token list without panicking, since the analyzer
//! must survive whatever bytes a workspace file throws at it.

use proptest::prelude::*;
use rstp_analyze::lexer::{lex, TokenKind};
use rstp_analyze::path::{parse_path_at, qualified_self_before};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Workspace files are read as UTF-8; lossy decoding is the
        // harshest thing a file read can feed the lexer.
        let text = String::from_utf8_lossy(&bytes);
        let _ = lex(&text);
    }

    #[test]
    fn adversarial_delimiter_soup_never_panics(
        pieces in proptest::collection::vec(0usize..12, 0..64),
    ) {
        // Chain the constructs with tricky terminator rules.
        const ATOMS: [&str; 12] = [
            "\"", "r#\"", "'", "b'", "/*", "*/", "//", "\\", "\n", "'a", "#\"", "br##\"",
        ];
        let text: String = pieces.iter().map(|i| ATOMS[*i]).collect();
        let _ = lex(&text);
    }

    #[test]
    fn idents_round_trip_through_noise(
        letters in proptest::collection::vec(0usize..26, 1..10),
        junk in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        // An identifier surrounded by arbitrary noise still comes out as
        // an Ident token with its exact text. (The vendored proptest has
        // no regex strategies, so the name is built from letter indices.)
        let name: String = letters
            .iter()
            .map(|i| char::from(b'a' + u8::try_from(*i).unwrap_or(0)))
            .collect();
        let noise = String::from_utf8_lossy(&junk).replace(|c: char| c.is_alphanumeric() || c == '_' || c == '"' || c == '\'' || c == '/' || c == '#', "");
        let text = format!("{noise} {name} {noise}");
        let toks = lex(&text);
        prop_assert!(
            toks.iter().any(|t| t.kind == TokenKind::Ident && t.text == name),
            "lost {name:?} in {text:?}"
        );
    }

    #[test]
    fn turbofish_paths_keep_their_segments(
        seg_ids in proptest::collection::vec(0usize..8, 1..5),
        fish_mask in 0u32..32,
        nest in 0usize..3,
    ) {
        // `a::<Vec<..>>::b::c::<..>(` for every subset of fish positions:
        // the parser must collect exactly the identifier segments, flag
        // the turbofish, and end right at the `(`.
        const SEGS: [&str; 8] = ["alpha", "Frame", "Vec", "collect", "wire", "Codec", "push", "t0"];
        let mut arg = String::from("u8");
        for _ in 0..nest {
            arg = format!("Vec<{arg}>");
        }
        let mut text = String::new();
        for (i, id) in seg_ids.iter().enumerate() {
            if i > 0 {
                text.push_str("::");
            }
            text.push_str(SEGS[*id]);
            if fish_mask & (1 << i) != 0 {
                text.push_str("::<");
                text.push_str(&arg);
                text.push('>');
            }
        }
        text.push_str("(x)");
        let toks = lex(&text);
        let p = parse_path_at(&toks, 0).expect("starts with an ident");
        let expected: Vec<&str> = seg_ids.iter().map(|i| SEGS[*i]).collect();
        prop_assert_eq!(&p.segments, &expected, "in {}", text);
        let any_fish = fish_mask & ((1u32 << seg_ids.len()) - 1) != 0;
        prop_assert_eq!(p.turbofish, any_fish, "in {}", text);
        prop_assert!(toks[p.end].is_punct('('), "end must sit on the call paren in {}", text);
    }

    #[test]
    fn qualified_self_survives_generic_noise(
        ty in 0usize..4,
        tr in 0usize..3,
        letters in proptest::collection::vec(0usize..26, 1..8),
        nest in 0usize..3,
    ) {
        // `<Wheel<Vec<..>> as Trait>::method(` — the qualifier parser
        // must recover the type and trait names through any nesting
        // depth, for any method name.
        const TYPES: [&str; 4] = ["Frame", "Wheel", "RingProducer", "Hub"];
        const TRAITS: [&str; 3] = ["Encode", "Pop", "EgressSink"];
        let method: String = std::iter::once('m')
            .chain(letters.iter().map(|i| char::from(b'a' + u8::try_from(*i).unwrap_or(0))))
            .collect();
        let mut typ = TYPES[ty].to_string();
        for _ in 0..nest {
            typ = format!("{typ}<Vec<u8>>");
        }
        let text = format!("<{typ} as {}>::{method}(x)", TRAITS[tr]);
        let toks = lex(&text);
        let idx = toks
            .iter()
            .position(|t| t.kind == TokenKind::Ident && t.text == method)
            .expect("method ident survives lexing");
        let q = qualified_self_before(&toks, idx).expect("qualifier parses");
        prop_assert_eq!(q.type_name.as_deref(), Some(TYPES[ty]), "in {}", text);
        prop_assert_eq!(q.trait_name.as_str(), TRAITS[tr], "in {}", text);
    }
}
