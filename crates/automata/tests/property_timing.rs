//! Property tests for the timing machinery: the axioms of paper §2.2 and
//! the `Σ`/`Δ` checkers used to define `good(A)`.

use proptest::prelude::*;
use rstp_automata::timed::{check_delays, check_spacing};
use rstp_automata::{Time, TimeDelta, Timing, TimingAxiomError};

fn t(n: u64) -> Time {
    Time::from_ticks(n)
}

fn dt(n: u64) -> TimeDelta {
    TimeDelta::from_ticks(n)
}

proptest! {
    #[test]
    fn cumulative_sums_always_satisfy_the_axioms(
        gaps in proptest::collection::vec(0u64..1000, 0..50),
    ) {
        // Any sequence of nonnegative gaps starting at 0 is a valid timing.
        let mut now = 0u64;
        let mut times = Vec::new();
        if !gaps.is_empty() {
            times.push(t(0));
            for g in &gaps[1..] {
                now += g;
                times.push(t(now));
            }
        }
        let timing = Timing::from_times(times.clone());
        prop_assert!(timing.validate(times.len()).is_ok());
    }

    #[test]
    fn any_decrease_is_caught(
        prefix in proptest::collection::vec(0u64..100, 1..20),
        dip in 1u64..50,
    ) {
        // Build a monotone sequence, then force one decrease.
        let mut now = 0u64;
        let mut times = vec![t(0)];
        for g in &prefix {
            now += g;
            times.push(t(now));
        }
        times.push(t(now.saturating_sub(dip.min(now).max(1))));
        if *times.last().unwrap() < times[times.len() - 2] {
            let timing = Timing::from_times(times.clone());
            let verdict = timing.validate(times.len());
            prop_assert!(
                matches!(verdict, Err(TimingAxiomError::NotMonotone { index: _, earlier: _, later: _ })),
                "{verdict:?}"
            );
        }
    }

    #[test]
    fn spacing_accepts_exactly_gaps_within_bounds(
        c1 in 1u64..10,
        extra in 0u64..10,
        gaps in proptest::collection::vec(0u64..25, 1..30),
    ) {
        let c2 = c1 + extra;
        let mut now = 0u64;
        let mut times = vec![t(0)];
        for g in &gaps {
            now += g;
            times.push(t(now));
        }
        let ok = gaps.iter().all(|&g| g >= c1 && g <= c2);
        let result = check_spacing(&times, dt(c1), dt(c2), None);
        prop_assert_eq!(result.is_ok(), ok, "gaps {:?} c1={} c2={}", gaps, c1, c2);
    }

    #[test]
    fn delays_accept_exactly_window_satisfying_pairs(
        d in 1u64..50,
        pairs in proptest::collection::vec((0u64..100, 0u64..160), 0..20),
    ) {
        let matched: Vec<(Time, Time)> =
            pairs.iter().map(|&(s, r)| (t(s), t(r))).collect();
        let ok = pairs.iter().all(|&(s, r)| r >= s && r - s <= d);
        prop_assert_eq!(check_delays(&matched, dt(d)).is_ok(), ok);
    }

    #[test]
    fn origin_bound_has_no_lower_constraint(
        first in 0u64..5,
        c1 in 2u64..6,
    ) {
        // The first step after the origin may come arbitrarily soon.
        let times = [t(first)];
        let result = check_spacing(&times, dt(c1), dt(10), Some(Time::ZERO));
        prop_assert_eq!(result.is_ok(), first <= 10);
    }
}
