//! Boundmaps — the MMT90 form of timing assumptions.
//!
//! Merritt, Modugno and Tuttle attach to each fairness class `C` of an
//! automaton a pair `(lower(C), upper(C))`: once some action of `C` is
//! enabled, one must fire no earlier than `lower(C)` and no later than
//! `upper(C)` after the class last fired or became enabled. RSTP's
//! assumption — "each process takes a step at least every `c1` and at most
//! every `c2`" — is the boundmap `(c1, c2)` on the single fairness class
//! each process automaton has.
//!
//! [`BoundMap`] stores per-class bounds; [`check_class_spacing`] validates
//! the timed event sequence of one class against them. (The general MMT90
//! semantics also tracks *enabling* times; for the always-enabled process
//! classes of this paper the fired-to-fired spacing is the whole
//! condition, which is what the checker verifies.)

use crate::time::{Time, TimeDelta};
use crate::timed::{check_spacing, TimingAxiomError};
use core::fmt;

/// Per-fairness-class timing bounds `(lower, upper)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BoundMap {
    bounds: Vec<(TimeDelta, TimeDelta)>,
}

/// An invalid bound pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundMapError {
    class: usize,
    lower: TimeDelta,
    upper: TimeDelta,
}

impl fmt::Display for BoundMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "class {}: lower bound {} exceeds upper bound {}",
            self.class, self.lower, self.upper
        )
    }
}

impl std::error::Error for BoundMapError {}

impl BoundMap {
    /// An empty boundmap (no classes).
    #[must_use]
    pub fn new() -> Self {
        BoundMap::default()
    }

    /// The uniform boundmap: every one of `classes` classes gets
    /// `(lower, upper)` — RSTP's `(c1, c2)` on each process.
    ///
    /// # Errors
    ///
    /// [`BoundMapError`] if `lower > upper`.
    pub fn uniform(
        classes: usize,
        lower: TimeDelta,
        upper: TimeDelta,
    ) -> Result<Self, BoundMapError> {
        if lower > upper {
            return Err(BoundMapError {
                class: 0,
                lower,
                upper,
            });
        }
        Ok(BoundMap {
            bounds: vec![(lower, upper); classes],
        })
    }

    /// Appends a class with bounds `(lower, upper)`, returning its index.
    ///
    /// # Errors
    ///
    /// [`BoundMapError`] if `lower > upper`.
    pub fn push_class(
        &mut self,
        lower: TimeDelta,
        upper: TimeDelta,
    ) -> Result<usize, BoundMapError> {
        if lower > upper {
            return Err(BoundMapError {
                class: self.bounds.len(),
                lower,
                upper,
            });
        }
        self.bounds.push((lower, upper));
        Ok(self.bounds.len() - 1)
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.bounds.len()
    }

    /// The bounds of class `class`, if it exists.
    #[must_use]
    pub fn get(&self, class: usize) -> Option<(TimeDelta, TimeDelta)> {
        self.bounds.get(class).copied()
    }
}

/// Checks one class's fired-event times against its bounds: consecutive
/// events between `lower` and `upper` apart (and the first within `upper`
/// of `origin`, if provided — a class enabled from the start must fire by
/// `upper`).
///
/// # Errors
///
/// The underlying [`TimingAxiomError`], or a synthetic `SpacingTooLarge` if
/// the class is in the map but has no events despite `origin` being given
/// and an `end` time more than `upper` past it.
pub fn check_class_spacing(
    map: &BoundMap,
    class: usize,
    fired: &[Time],
    origin: Option<Time>,
    end: Option<Time>,
) -> Result<(), TimingAxiomError> {
    let Some((lower, upper)) = map.get(class) else {
        return Ok(()); // unknown class: nothing to check
    };
    check_spacing(fired, lower, upper, origin)?;
    // A perpetually enabled class must keep firing until `end`.
    if let (Some(end), Some(origin)) = (end, origin) {
        let last = fired.last().copied().unwrap_or(origin);
        if let Some(gap) = end.checked_since(last) {
            if gap > upper {
                return Err(TimingAxiomError::SpacingTooLarge {
                    index: fired.len(),
                    gap,
                    max: upper,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> Time {
        Time::from_ticks(n)
    }

    fn dt(n: u64) -> TimeDelta {
        TimeDelta::from_ticks(n)
    }

    #[test]
    fn uniform_boundmap() {
        let m = BoundMap::uniform(3, dt(1), dt(2)).unwrap();
        assert_eq!(m.classes(), 3);
        assert_eq!(m.get(2), Some((dt(1), dt(2))));
        assert_eq!(m.get(3), None);
    }

    #[test]
    fn invalid_bounds_rejected() {
        assert!(BoundMap::uniform(1, dt(3), dt(2)).is_err());
        let mut m = BoundMap::new();
        assert!(m.push_class(dt(5), dt(4)).is_err());
        let idx = m.push_class(dt(1), dt(4)).unwrap();
        assert_eq!(idx, 0);
        let e = BoundMap::uniform(1, dt(3), dt(2)).unwrap_err();
        assert!(e.to_string().contains("exceeds"));
    }

    #[test]
    fn spacing_within_bounds_passes() {
        let m = BoundMap::uniform(1, dt(2), dt(3)).unwrap();
        check_class_spacing(
            &m,
            0,
            &[t(0), t(2), t(5), t(8)],
            Some(Time::ZERO),
            Some(t(9)),
        )
        .unwrap();
    }

    #[test]
    fn stalled_class_detected_via_end_time() {
        // Last fired at 5, end at 20, upper 3 — the class stalled.
        let m = BoundMap::uniform(1, dt(2), dt(3)).unwrap();
        let err = check_class_spacing(&m, 0, &[t(0), t(3), t(5)], Some(Time::ZERO), Some(t(20)))
            .unwrap_err();
        assert!(matches!(err, TimingAxiomError::SpacingTooLarge { .. }));
    }

    #[test]
    fn never_fired_class_detected() {
        let m = BoundMap::uniform(1, dt(1), dt(3)).unwrap();
        let err = check_class_spacing(&m, 0, &[], Some(Time::ZERO), Some(t(10))).unwrap_err();
        assert!(matches!(err, TimingAxiomError::SpacingTooLarge { .. }));
        // …but fine if the run ends within `upper`.
        check_class_spacing(&m, 0, &[], Some(Time::ZERO), Some(t(3))).unwrap();
    }

    #[test]
    fn unknown_class_is_vacuous() {
        let m = BoundMap::new();
        check_class_spacing(&m, 7, &[t(0), t(100)], None, None).unwrap();
    }
}
