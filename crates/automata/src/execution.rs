//! Executions and behaviors (paper §2.1).
//!
//! An execution of `A` is a sequence `s0 —π1→ s1 —π2→ …` with `s0` the start
//! state and each `(s_i, π_{i+1}, s_{i+1}) ∈ steps(A)`. Its *behavior* is the
//! subsequence of external (input/output) actions. For a composite `C = A∘B`,
//! an execution of `C` projects onto executions of `A` and `B` (`α|A`,
//! `α|B`).
//!
//! Executions here are finite — the simulator produces finite prefixes of the
//! (conceptually infinite) runs, long enough for the receiver to write all of
//! `X`. Fairness of a finite execution is "no local action enabled at the
//! final state" (paper §2.1); see [`crate::fairness`].

use crate::action::ActionClass;
use crate::automaton::Automaton;
use core::fmt;

/// A finite execution fragment of an automaton: a start state followed by
/// `(action, post-state)` steps.
#[derive(Clone, Debug, PartialEq)]
pub struct Execution<S, A> {
    initial: S,
    steps: Vec<(A, S)>,
}

/// Why an execution failed validation against an automaton.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecutionError {
    /// A step's action was rejected by the automaton's transition function.
    StepRejected {
        /// Zero-based index of the offending step.
        index: usize,
        /// Rendered step error.
        cause: String,
    },
    /// A step's recorded post-state differs from the one the automaton
    /// computes.
    PostStateMismatch {
        /// Zero-based index of the offending step.
        index: usize,
        /// Debug rendering of the recorded post-state.
        recorded: String,
        /// Debug rendering of the recomputed post-state.
        computed: String,
    },
    /// The recorded initial state is not the automaton's start state.
    WrongInitialState {
        /// Debug rendering of the recorded initial state.
        recorded: String,
        /// Debug rendering of the automaton's start state.
        expected: String,
    },
}

impl fmt::Display for ExecutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionError::StepRejected { index, cause } => {
                write!(f, "step {index} rejected: {cause}")
            }
            ExecutionError::PostStateMismatch {
                index,
                recorded,
                computed,
            } => write!(
                f,
                "step {index}: recorded post-state {recorded} != computed {computed}"
            ),
            ExecutionError::WrongInitialState { recorded, expected } => {
                write!(f, "initial state {recorded} is not start state {expected}")
            }
        }
    }
}

impl std::error::Error for ExecutionError {}

impl<S, A> Execution<S, A>
where
    S: Clone + fmt::Debug,
    A: Clone + fmt::Debug + PartialEq,
{
    /// An empty execution at `initial`.
    pub fn new(initial: S) -> Self {
        Execution {
            initial,
            steps: Vec::new(),
        }
    }

    /// Appends a step.
    pub fn push(&mut self, action: A, post_state: S) {
        self.steps.push((action, post_state));
    }

    /// The initial state.
    pub fn initial_state(&self) -> &S {
        &self.initial
    }

    /// The final state (the initial state if no steps were taken).
    pub fn last_state(&self) -> &S {
        self.steps.last().map_or(&self.initial, |(_, s)| s)
    }

    /// Number of steps (events) in the execution.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the execution has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The recorded steps, in order.
    pub fn steps(&self) -> &[(A, S)] {
        &self.steps
    }

    /// Iterates over the actions (the event sequence `π1, π2, …`).
    pub fn actions(&self) -> impl Iterator<Item = &A> {
        self.steps.iter().map(|(a, _)| a)
    }

    /// The state *before* step `index` (so `state_before(0)` is the initial
    /// state). Returns `None` if `index > len()`.
    pub fn state_before(&self, index: usize) -> Option<&S> {
        match index.checked_sub(1) {
            None => Some(&self.initial),
            Some(prev) => self.steps.get(prev).map(|(_, s)| s),
        }
    }

    /// Restriction `α|pred`: the subsequence of actions satisfying `pred`,
    /// with their step indices (paper §2.1's `a|B'` on the action sequence).
    pub fn restrict<F>(&self, mut pred: F) -> Vec<(usize, &A)>
    where
        F: FnMut(&A) -> bool,
    {
        self.steps
            .iter()
            .enumerate()
            .filter(move |(_, (a, _))| pred(a))
            .map(|(i, (a, _))| (i, a))
            .collect()
    }

    /// The behavior `beh(α)`: the subsequence of external actions of
    /// `automaton`, cloned in order.
    pub fn behavior<M>(&self, automaton: &M) -> Vec<A>
    where
        M: Automaton<Action = A, State = S>,
    {
        self.steps
            .iter()
            .filter(|(a, _)| automaton.classify(a).is_some_and(ActionClass::is_external))
            .map(|(a, _)| a.clone())
            .collect()
    }

    /// Validates every recorded step against `automaton`: the initial state
    /// must equal the start state (compared via `Debug` rendering, since
    /// states need not be `PartialEq`), every action must be applicable, and
    /// every recorded post-state must match the recomputed one.
    ///
    /// # Errors
    ///
    /// Returns the first [`ExecutionError`] encountered.
    pub fn validate<M>(&self, automaton: &M) -> Result<(), ExecutionError>
    where
        M: Automaton<Action = A, State = S>,
    {
        let start = automaton.initial_state();
        let rendered_start = format!("{start:?}");
        let rendered_initial = format!("{:?}", self.initial);
        if rendered_start != rendered_initial {
            return Err(ExecutionError::WrongInitialState {
                recorded: rendered_initial,
                expected: rendered_start,
            });
        }
        let mut current = self.initial.clone();
        for (index, (action, recorded_post)) in self.steps.iter().enumerate() {
            let computed =
                automaton
                    .step(&current, action)
                    .map_err(|e| ExecutionError::StepRejected {
                        index,
                        cause: e.to_string(),
                    })?;
            let rendered_computed = format!("{computed:?}");
            let rendered_recorded = format!("{recorded_post:?}");
            if rendered_computed != rendered_recorded {
                return Err(ExecutionError::PostStateMismatch {
                    index,
                    recorded: rendered_recorded,
                    computed: rendered_computed,
                });
            }
            current = computed;
        }
        Ok(())
    }

    /// Projects an execution of a composite onto one component (paper §2.1:
    /// `α|A`), given the component's membership test for actions and a
    /// state extractor.
    ///
    /// Steps whose action the component does not participate in are dropped;
    /// each remaining post-state is mapped through `extract`.
    pub fn project<T, F, G>(&self, mut participates: F, mut extract: G) -> Execution<T, A>
    where
        T: Clone + fmt::Debug,
        F: FnMut(&A) -> bool,
        G: FnMut(&S) -> T,
    {
        let mut projected = Execution::new(extract(&self.initial));
        for (action, post) in &self.steps {
            if participates(action) {
                projected.push(action.clone(), extract(post));
            }
        }
        projected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionClass;
    use crate::automaton::StepError;

    #[derive(Clone, Debug, PartialEq, Eq)]
    enum Act {
        Inc,
        Report(u32),
        Nudge,
    }

    /// Counts `Inc`s; `Report(n)` is an output allowed only when counter==n.
    struct Counter;

    impl Automaton for Counter {
        type Action = Act;
        type State = u32;

        fn initial_state(&self) -> u32 {
            0
        }

        fn classify(&self, action: &Act) -> Option<ActionClass> {
            Some(match action {
                Act::Inc => ActionClass::Internal,
                Act::Report(_) => ActionClass::Output,
                Act::Nudge => ActionClass::Input,
            })
        }

        fn enabled(&self, state: &u32) -> Vec<Act> {
            vec![Act::Inc, Act::Report(*state)]
        }

        fn step(&self, state: &u32, action: &Act) -> Result<u32, StepError> {
            match action {
                Act::Inc => Ok(state + 1),
                Act::Nudge => Ok(*state),
                Act::Report(n) if n == state => Ok(*state),
                Act::Report(n) => Err(StepError::PreconditionFalse {
                    action: format!("Report({n})"),
                    reason: format!("counter is {state}"),
                }),
            }
        }
    }

    fn sample() -> Execution<u32, Act> {
        let mut e = Execution::new(0);
        e.push(Act::Inc, 1);
        e.push(Act::Nudge, 1);
        e.push(Act::Inc, 2);
        e.push(Act::Report(2), 2);
        e
    }

    #[test]
    fn accessors() {
        let e = sample();
        assert_eq!(*e.initial_state(), 0);
        assert_eq!(*e.last_state(), 2);
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
        assert_eq!(e.actions().count(), 4);
        assert_eq!(e.state_before(0), Some(&0));
        assert_eq!(e.state_before(3), Some(&2));
        assert_eq!(e.state_before(4), Some(&2));
        assert_eq!(e.state_before(5), None);
    }

    #[test]
    fn empty_execution() {
        let e: Execution<u32, Act> = Execution::new(7);
        assert!(e.is_empty());
        assert_eq!(*e.last_state(), 7);
    }

    #[test]
    fn valid_execution_passes() {
        sample().validate(&Counter).unwrap();
    }

    #[test]
    fn wrong_initial_state_caught() {
        let e: Execution<u32, Act> = Execution::new(5);
        let err = e.validate(&Counter).unwrap_err();
        assert!(matches!(err, ExecutionError::WrongInitialState { .. }));
    }

    #[test]
    fn rejected_step_caught() {
        let mut e = Execution::new(0);
        e.push(Act::Report(3), 0); // precondition false at counter=0
        let err = e.validate(&Counter).unwrap_err();
        assert!(matches!(err, ExecutionError::StepRejected { index: 0, .. }));
        assert!(err.to_string().contains("rejected"));
    }

    #[test]
    fn post_state_mismatch_caught() {
        let mut e = Execution::new(0);
        e.push(Act::Inc, 2); // should be 1
        let err = e.validate(&Counter).unwrap_err();
        assert!(matches!(
            err,
            ExecutionError::PostStateMismatch { index: 0, .. }
        ));
    }

    #[test]
    fn behavior_drops_internal_actions() {
        let e = sample();
        // Inc is internal; Nudge (input) and Report (output) are external.
        assert_eq!(e.behavior(&Counter), vec![Act::Nudge, Act::Report(2)]);
    }

    #[test]
    fn restrict_returns_indices() {
        let e = sample();
        let incs = e.restrict(|a| matches!(a, Act::Inc));
        assert_eq!(incs.len(), 2);
        assert_eq!(incs[0].0, 0);
        assert_eq!(incs[1].0, 2);
    }

    #[test]
    fn project_keeps_participating_steps() {
        let e = sample();
        // Project onto a fictitious component that only sees Report actions
        // and whose state is the parity of the counter.
        let p = e.project(|a| matches!(a, Act::Report(_)), |s| s % 2);
        assert_eq!(p.len(), 1);
        assert_eq!(*p.initial_state(), 0);
        assert_eq!(*p.last_state(), 0);
    }
}
