//! Bounded state-space exploration.
//!
//! A small model checker for I/O automata: breadth-first exploration of the
//! reachable states of an automaton under (a) its own locally controlled
//! actions and (b) an arbitrary interleaving of a caller-supplied set of
//! input actions. At every reachable state it verifies the structural
//! obligations of the model — determinism (at most one local action
//! enabled), enabled/step consistency — and a caller-supplied invariant.
//!
//! Exploration treats *time-free* nondeterminism: any enabled local action
//! or any supplied input may occur next. That over-approximates the timed
//! behaviors (a state reachable in no `good(A)` execution may be visited),
//! so invariant violations found here are not always real — but invariants
//! *verified* here hold in every timed execution a fortiori. The protocol
//! test-suites use it with inputs restricted to what the channel could
//! actually deliver.
//!
//! States are compared by their `Debug` rendering (the automaton's state
//! type need not be `Eq + Hash`); renderings must therefore be injective,
//! which `derive(Debug)` on field-complete structs guarantees.

use crate::action::ActionClass;
use crate::automaton::{check_deterministic, check_enabled_consistent, Automaton};
use core::fmt;
use std::collections::{HashSet, VecDeque};

/// The result of an exploration.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// Number of distinct states visited.
    pub states: usize,
    /// Number of transitions taken.
    pub transitions: usize,
    /// Whether the frontier was exhausted (`false` = state budget hit).
    pub complete: bool,
}

/// A defect found during exploration.
#[derive(Clone, Debug)]
pub enum ExploreError {
    /// More than one local action enabled in a reachable state.
    Nondeterministic {
        /// Debug rendering of the state.
        state: String,
        /// The simultaneously enabled actions.
        enabled: Vec<String>,
    },
    /// `enabled`/`step` inconsistency in a reachable state.
    Inconsistent {
        /// Debug rendering of the state.
        state: String,
        /// Description from the consistency checker.
        detail: String,
    },
    /// An input action was rejected (input-enabledness violation).
    InputRejected {
        /// Debug rendering of the state.
        state: String,
        /// Debug rendering of the input.
        input: String,
        /// The step error.
        detail: String,
    },
    /// The caller's invariant failed.
    InvariantViolated {
        /// Debug rendering of the state.
        state: String,
        /// The invariant's message.
        detail: String,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Nondeterministic { state, enabled } => {
                write!(f, "nondeterministic at {state}: {enabled:?}")
            }
            ExploreError::Inconsistent { state, detail } => {
                write!(f, "enabled/step inconsistent at {state}: {detail}")
            }
            ExploreError::InputRejected {
                state,
                input,
                detail,
            } => write!(f, "input {input} rejected at {state}: {detail}"),
            ExploreError::InvariantViolated { state, detail } => {
                write!(f, "invariant violated at {state}: {detail}")
            }
        }
    }
}

impl std::error::Error for ExploreError {}

/// Explores up to `max_states` reachable states of `automaton` under its
/// local actions plus arbitrary interleavings of `inputs`, checking
/// determinism, consistency, input-enabledness, and `invariant` at every
/// state.
///
/// `invariant` returns `Ok(())` or a message describing the violation.
///
/// # Errors
///
/// The first [`ExploreError`] found.
pub fn explore<M, F>(
    automaton: &M,
    inputs: &[M::Action],
    max_states: usize,
    mut invariant: F,
) -> Result<Exploration, ExploreError>
where
    M: Automaton,
    F: FnMut(&M::State) -> Result<(), String>,
{
    let mut seen: HashSet<String> = HashSet::new();
    let mut queue: VecDeque<M::State> = VecDeque::new();
    let initial = automaton.initial_state();
    seen.insert(format!("{initial:?}"));
    queue.push_back(initial);
    let mut transitions = 0usize;
    let mut complete = true;

    while let Some(state) = queue.pop_front() {
        let rendered = format!("{state:?}");
        check_deterministic(automaton, &state).map_err(|e| ExploreError::Nondeterministic {
            state: rendered.clone(),
            enabled: e.enabled,
        })?;
        check_enabled_consistent(automaton, &state).map_err(|detail| {
            ExploreError::Inconsistent {
                state: rendered.clone(),
                detail,
            }
        })?;
        invariant(&state).map_err(|detail| ExploreError::InvariantViolated {
            state: rendered.clone(),
            detail,
        })?;

        let mut successors: Vec<M::State> = Vec::new();
        for action in automaton.enabled(&state) {
            let next = automaton
                .step(&state, &action)
                .expect("consistency was checked");
            successors.push(next);
        }
        for input in inputs {
            debug_assert_eq!(
                automaton.classify(input),
                Some(ActionClass::Input),
                "explore inputs must be input actions"
            );
            let next = automaton
                .step(&state, input)
                .map_err(|e| ExploreError::InputRejected {
                    state: rendered.clone(),
                    input: format!("{input:?}"),
                    detail: e.to_string(),
                })?;
            successors.push(next);
        }

        for next in successors {
            transitions += 1;
            let key = format!("{next:?}");
            if seen.contains(&key) {
                continue;
            }
            if seen.len() >= max_states {
                complete = false;
                continue;
            }
            seen.insert(key);
            queue.push_back(next);
        }
    }

    Ok(Exploration {
        states: seen.len(),
        transitions,
        complete,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::StepError;

    #[derive(Clone, Debug, PartialEq, Eq)]
    enum Act {
        Inc,
        Reset, // input
    }

    /// Counts to `limit`, resettable by input.
    struct Saturating {
        limit: u32,
    }

    impl Automaton for Saturating {
        type Action = Act;
        type State = u32;

        fn initial_state(&self) -> u32 {
            0
        }

        fn classify(&self, action: &Act) -> Option<ActionClass> {
            Some(match action {
                Act::Inc => ActionClass::Internal,
                Act::Reset => ActionClass::Input,
            })
        }

        fn enabled(&self, state: &u32) -> Vec<Act> {
            if *state < self.limit {
                vec![Act::Inc]
            } else {
                vec![]
            }
        }

        fn step(&self, state: &u32, action: &Act) -> Result<u32, StepError> {
            match action {
                Act::Inc if *state < self.limit => Ok(state + 1),
                Act::Inc => Err(StepError::PreconditionFalse {
                    action: "Inc".into(),
                    reason: "saturated".into(),
                }),
                Act::Reset => Ok(0),
            }
        }
    }

    #[test]
    fn explores_all_states() {
        let m = Saturating { limit: 5 };
        let r = explore(&m, &[Act::Reset], 100, |_| Ok(())).unwrap();
        assert_eq!(r.states, 6); // 0..=5
        assert!(r.complete);
        assert!(r.transitions >= 11); // 5 incs + 6 resets
    }

    #[test]
    fn verified_invariant_passes() {
        let m = Saturating { limit: 4 };
        let r = explore(&m, &[Act::Reset], 100, |s| {
            if *s <= 4 {
                Ok(())
            } else {
                Err(format!("counter {s} exceeds limit"))
            }
        })
        .unwrap();
        assert!(r.complete);
    }

    #[test]
    fn violated_invariant_reported_with_state() {
        let m = Saturating { limit: 4 };
        let err = explore(&m, &[], 100, |s| {
            if *s < 3 {
                Ok(())
            } else {
                Err("too big".into())
            }
        })
        .unwrap_err();
        match err {
            ExploreError::InvariantViolated { state, detail } => {
                assert_eq!(state, "3");
                assert_eq!(detail, "too big");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn budget_reported_as_incomplete() {
        let m = Saturating { limit: 1000 };
        let r = explore(&m, &[], 10, |_| Ok(())).unwrap();
        assert_eq!(r.states, 10);
        assert!(!r.complete);
    }

    #[test]
    fn nondeterminism_caught() {
        struct Bad;
        impl Automaton for Bad {
            type Action = Act;
            type State = u32;
            fn initial_state(&self) -> u32 {
                0
            }
            fn classify(&self, _a: &Act) -> Option<ActionClass> {
                Some(ActionClass::Internal)
            }
            fn enabled(&self, _s: &u32) -> Vec<Act> {
                vec![Act::Inc, Act::Reset]
            }
            fn step(&self, s: &u32, _a: &Act) -> Result<u32, StepError> {
                Ok(*s)
            }
        }
        let err = explore(&Bad, &[], 10, |_| Ok(())).unwrap_err();
        assert!(matches!(err, ExploreError::Nondeterministic { .. }));
        assert!(err.to_string().contains("nondeterministic"));
    }
}
