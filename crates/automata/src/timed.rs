//! Timings and timed executions (paper §2.2).
//!
//! A *timing* for an execution maps each event to a nonnegative time such
//! that (1) the first event happens at time 0, (2) times are nondecreasing
//! along the execution, and (3) only finitely many events fall in any bounded
//! interval — automatic for the finite executions this crate manipulates.
//!
//! RSTP's two timing assumptions (paper §4) are *timing properties*, i.e.
//! predicates over timed executions:
//!
//! * `Σ(A_t, A_r)`: consecutive locally controlled events of each component
//!   are between `c1` and `c2` apart — checked by [`check_spacing`];
//! * `Δ(C(P))`: every `recv` happens at most `d` after its matching `send` —
//!   checked by [`check_delays`].
//!
//! Timed executions satisfying both are the paper's `good(A)` set; the
//! concrete `good`-ness predicate for RSTP systems lives in `rstp-core`,
//! built on these checkers.

use crate::execution::Execution;
use crate::time::{Time, TimeDelta};
use core::fmt;

/// A timing: one [`Time`] per event of an execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Timing {
    times: Vec<Time>,
}

/// A violation of the timing axioms or of a timing property.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TimingAxiomError {
    /// The timing has a different number of entries than the execution has
    /// events.
    LengthMismatch {
        /// Number of events in the execution.
        events: usize,
        /// Number of times in the timing.
        times: usize,
    },
    /// The first event is not at time 0 (paper §2.2 axiom 1).
    FirstEventNotAtZero {
        /// The recorded time of the first event.
        actual: Time,
    },
    /// Times decrease between consecutive events (paper §2.2 axiom 2).
    NotMonotone {
        /// Index of the later event.
        index: usize,
        /// Time of the earlier event.
        earlier: Time,
        /// Time of the later event.
        later: Time,
    },
    /// Two consecutive selected events are closer than the lower bound.
    SpacingTooSmall {
        /// Index (into the selected subsequence) of the second event.
        index: usize,
        /// Observed gap.
        gap: TimeDelta,
        /// Required minimum gap (`c1`).
        min: TimeDelta,
    },
    /// Two consecutive selected events are farther apart than the upper
    /// bound.
    SpacingTooLarge {
        /// Index (into the selected subsequence) of the second event.
        index: usize,
        /// Observed gap.
        gap: TimeDelta,
        /// Allowed maximum gap (`c2`).
        max: TimeDelta,
    },
    /// A matched (send, recv) pair violates the delivery bound `d`.
    DelayTooLarge {
        /// Index of the pair in the supplied matching.
        index: usize,
        /// Observed delay.
        delay: TimeDelta,
        /// Allowed maximum delay (`d`).
        max: TimeDelta,
    },
    /// A matched (send, recv) pair has the recv before the send.
    RecvBeforeSend {
        /// Index of the pair in the supplied matching.
        index: usize,
        /// Send time.
        send: Time,
        /// Recv time.
        recv: Time,
    },
}

impl fmt::Display for TimingAxiomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingAxiomError::LengthMismatch { events, times } => {
                write!(f, "{events} events but {times} times")
            }
            TimingAxiomError::FirstEventNotAtZero { actual } => {
                write!(f, "first event at {actual}, not t=0")
            }
            TimingAxiomError::NotMonotone {
                index,
                earlier,
                later,
            } => write!(f, "time decreases at event {index}: {earlier} then {later}"),
            TimingAxiomError::SpacingTooSmall { index, gap, min } => {
                write!(f, "selected events {} apart at #{index}, min {min}", gap)
            }
            TimingAxiomError::SpacingTooLarge { index, gap, max } => {
                write!(f, "selected events {} apart at #{index}, max {max}", gap)
            }
            TimingAxiomError::DelayTooLarge { index, delay, max } => {
                write!(f, "pair #{index} delivered after {delay}, max {max}")
            }
            TimingAxiomError::RecvBeforeSend { index, send, recv } => {
                write!(f, "pair #{index} received ({recv}) before sent ({send})")
            }
        }
    }
}

impl std::error::Error for TimingAxiomError {}

impl Timing {
    /// An empty timing.
    #[must_use]
    pub fn new() -> Self {
        Timing { times: Vec::new() }
    }

    /// A timing from explicit times.
    #[must_use]
    pub fn from_times(times: Vec<Time>) -> Self {
        Timing { times }
    }

    /// Appends the time of the next event.
    pub fn push(&mut self, time: Time) {
        self.times.push(time);
    }

    /// The recorded times in order.
    #[must_use]
    pub fn times(&self) -> &[Time] {
        &self.times
    }

    /// Number of timed events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether no events have been timed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The time of event `index`.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<Time> {
        self.times.get(index).copied()
    }

    /// Checks the timing axioms of paper §2.2 against an event count.
    ///
    /// # Errors
    ///
    /// [`TimingAxiomError::LengthMismatch`], `FirstEventNotAtZero`, or
    /// `NotMonotone`.
    pub fn validate(&self, event_count: usize) -> Result<(), TimingAxiomError> {
        if self.times.len() != event_count {
            return Err(TimingAxiomError::LengthMismatch {
                events: event_count,
                times: self.times.len(),
            });
        }
        if let Some(&first) = self.times.first() {
            if first != Time::ZERO {
                return Err(TimingAxiomError::FirstEventNotAtZero { actual: first });
            }
        }
        for (i, pair) in self.times.windows(2).enumerate() {
            if pair[1] < pair[0] {
                return Err(TimingAxiomError::NotMonotone {
                    index: i + 1,
                    earlier: pair[0],
                    later: pair[1],
                });
            }
        }
        Ok(())
    }
}

/// Checks the step-bound property `Σ`: every two *consecutive* times in
/// `selected` are at least `min` and at most `max` apart.
///
/// `selected` should be the times of one component's locally controlled
/// events, in order (extract them with [`TimedExecution::times_where`]).
/// Pass `origin` = `Some(t0)` to also bound the gap from `t0` to the first
/// selected event (the paper's constructions start processes at time 0).
///
/// # Errors
///
/// [`TimingAxiomError::SpacingTooSmall`] or `SpacingTooLarge` at the first
/// offending gap.
pub fn check_spacing(
    selected: &[Time],
    min: TimeDelta,
    max: TimeDelta,
    origin: Option<Time>,
) -> Result<(), TimingAxiomError> {
    let mut prev: Option<Time> = origin;
    for (index, &t) in selected.iter().enumerate() {
        if let Some(p) = prev {
            let gap = t.checked_since(p).ok_or(TimingAxiomError::NotMonotone {
                index,
                earlier: p,
                later: t,
            })?;
            // The origin gap has no lower bound: a process may take its
            // first step immediately at time 0.
            let is_origin_gap = index == 0;
            if !is_origin_gap && gap < min {
                return Err(TimingAxiomError::SpacingTooSmall { index, gap, min });
            }
            if gap > max {
                return Err(TimingAxiomError::SpacingTooLarge { index, gap, max });
            }
        }
        prev = Some(t);
    }
    Ok(())
}

/// Checks the delivery property `Δ`: each `(send, recv)` pair satisfies
/// `send <= recv <= send + d`.
///
/// The caller supplies the matching (the bijection between send and recv
/// events required by the channel's fairness condition, paper §4).
///
/// # Errors
///
/// [`TimingAxiomError::RecvBeforeSend`] or `DelayTooLarge` at the first
/// offending pair.
pub fn check_delays(pairs: &[(Time, Time)], d: TimeDelta) -> Result<(), TimingAxiomError> {
    for (index, &(send, recv)) in pairs.iter().enumerate() {
        let delay = recv
            .checked_since(send)
            .ok_or(TimingAxiomError::RecvBeforeSend { index, send, recv })?;
        if delay > d {
            return Err(TimingAxiomError::DelayTooLarge {
                index,
                delay,
                max: d,
            });
        }
    }
    Ok(())
}

/// A timed execution `η^t = (η, t)`: an execution paired with a timing.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedExecution<S, A> {
    execution: Execution<S, A>,
    timing: Timing,
}

impl<S, A> TimedExecution<S, A>
where
    S: Clone + fmt::Debug,
    A: Clone + fmt::Debug + PartialEq,
{
    /// Pairs an execution with a timing.
    ///
    /// # Errors
    ///
    /// Fails with the axiom violation if the timing does not satisfy the
    /// paper's timing axioms for this execution.
    pub fn new(execution: Execution<S, A>, timing: Timing) -> Result<Self, TimingAxiomError> {
        timing.validate(execution.len())?;
        Ok(TimedExecution { execution, timing })
    }

    /// The underlying (untimed) execution.
    pub fn execution(&self) -> &Execution<S, A> {
        &self.execution
    }

    /// The timing.
    pub fn timing(&self) -> &Timing {
        &self.timing
    }

    /// `(time, action)` pairs in order.
    pub fn timed_actions(&self) -> impl Iterator<Item = (Time, &A)> {
        self.timing
            .times()
            .iter()
            .copied()
            .zip(self.execution.actions())
    }

    /// The times of all events whose action satisfies `pred`, in order.
    pub fn times_where<F>(&self, mut pred: F) -> Vec<Time>
    where
        F: FnMut(&A) -> bool,
    {
        self.timed_actions()
            .filter(|(_, a)| pred(a))
            .map(|(t, _)| t)
            .collect()
    }

    /// The time of the *last* event satisfying `pred` — e.g. the paper's
    /// `t(last-send(η^t))`.
    pub fn last_time_where<F>(&self, mut pred: F) -> Option<Time>
    where
        F: FnMut(&A) -> bool,
    {
        self.timed_actions()
            .filter(|(_, a)| pred(a))
            .map(|(t, _)| t)
            .last()
    }

    /// The time of the final event, or `None` for an empty execution.
    pub fn end_time(&self) -> Option<Time> {
        self.timing.times().last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> Time {
        Time::from_ticks(n)
    }

    fn dt(n: u64) -> TimeDelta {
        TimeDelta::from_ticks(n)
    }

    #[derive(Clone, Debug, PartialEq, Eq)]
    enum Act {
        A,
        B,
    }

    fn exec_of(actions: &[Act]) -> Execution<u32, Act> {
        let mut e = Execution::new(0);
        for (i, a) in actions.iter().enumerate() {
            e.push(a.clone(), (i + 1) as u32);
        }
        e
    }

    #[test]
    fn timing_axioms_pass() {
        let timing = Timing::from_times(vec![t(0), t(3), t(3), t(9)]);
        timing.validate(4).unwrap();
    }

    #[test]
    fn timing_axioms_empty() {
        Timing::new().validate(0).unwrap();
    }

    #[test]
    fn length_mismatch() {
        let timing = Timing::from_times(vec![t(0)]);
        assert!(matches!(
            timing.validate(2),
            Err(TimingAxiomError::LengthMismatch {
                events: 2,
                times: 1
            })
        ));
    }

    #[test]
    fn first_event_must_be_zero() {
        let timing = Timing::from_times(vec![t(1), t(2)]);
        assert!(matches!(
            timing.validate(2),
            Err(TimingAxiomError::FirstEventNotAtZero { .. })
        ));
    }

    #[test]
    fn monotonicity_enforced() {
        let timing = Timing::from_times(vec![t(0), t(5), t(4)]);
        assert!(matches!(
            timing.validate(3),
            Err(TimingAxiomError::NotMonotone { index: 2, .. })
        ));
    }

    #[test]
    fn spacing_within_bounds() {
        check_spacing(&[t(0), t(2), t(5), t(8)], dt(2), dt(3), None).unwrap();
    }

    #[test]
    fn spacing_too_small() {
        let err = check_spacing(&[t(0), t(1)], dt(2), dt(3), None).unwrap_err();
        assert!(matches!(err, TimingAxiomError::SpacingTooSmall { .. }));
    }

    #[test]
    fn spacing_too_large() {
        let err = check_spacing(&[t(0), t(9)], dt(2), dt(3), None).unwrap_err();
        assert!(matches!(err, TimingAxiomError::SpacingTooLarge { .. }));
    }

    #[test]
    fn spacing_origin_has_upper_bound_only() {
        // First step may come immediately (gap 0 < min is fine at origin)…
        check_spacing(&[t(0), t(2)], dt(2), dt(3), Some(Time::ZERO)).unwrap();
        // …but may not be later than max after the origin.
        let err = check_spacing(&[t(4)], dt(2), dt(3), Some(Time::ZERO)).unwrap_err();
        assert!(matches!(err, TimingAxiomError::SpacingTooLarge { .. }));
    }

    #[test]
    fn delays_ok() {
        check_delays(&[(t(0), t(4)), (t(2), t(2))], dt(4)).unwrap();
    }

    #[test]
    fn delay_too_large() {
        let err = check_delays(&[(t(0), t(5))], dt(4)).unwrap_err();
        assert!(matches!(err, TimingAxiomError::DelayTooLarge { .. }));
    }

    #[test]
    fn recv_before_send() {
        let err = check_delays(&[(t(3), t(2))], dt(4)).unwrap_err();
        assert!(matches!(err, TimingAxiomError::RecvBeforeSend { .. }));
    }

    #[test]
    fn timed_execution_accessors() {
        let e = exec_of(&[Act::A, Act::B, Act::A]);
        let timing = Timing::from_times(vec![t(0), t(2), t(7)]);
        let te = TimedExecution::new(e, timing).unwrap();
        assert_eq!(te.end_time(), Some(t(7)));
        assert_eq!(te.times_where(|a| *a == Act::A), vec![t(0), t(7)]);
        assert_eq!(te.last_time_where(|a| *a == Act::B), Some(t(2)));
        assert_eq!(te.last_time_where(|_| false), None);
        assert_eq!(te.timed_actions().count(), 3);
        assert_eq!(te.execution().len(), 3);
        assert_eq!(te.timing().len(), 3);
    }

    #[test]
    fn timed_execution_rejects_bad_timing() {
        let e = exec_of(&[Act::A]);
        let timing = Timing::from_times(vec![t(1)]);
        assert!(TimedExecution::new(e, timing).is_err());
    }

    #[test]
    fn error_display_strings() {
        let errs: Vec<TimingAxiomError> = vec![
            TimingAxiomError::LengthMismatch {
                events: 1,
                times: 2,
            },
            TimingAxiomError::FirstEventNotAtZero { actual: t(1) },
            TimingAxiomError::NotMonotone {
                index: 1,
                earlier: t(2),
                later: t(1),
            },
            TimingAxiomError::SpacingTooSmall {
                index: 1,
                gap: dt(1),
                min: dt(2),
            },
            TimingAxiomError::SpacingTooLarge {
                index: 1,
                gap: dt(9),
                max: dt(2),
            },
            TimingAxiomError::DelayTooLarge {
                index: 0,
                delay: dt(9),
                max: dt(2),
            },
            TimingAxiomError::RecvBeforeSend {
                index: 0,
                send: t(3),
                recv: t(1),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
