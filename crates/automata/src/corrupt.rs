//! State corruption for self-stabilization testing.
//!
//! A self-stabilizing automaton converges to correct behavior from *any*
//! state, not just its start state (Dolev; Delaët et al.). To test that
//! claim mechanically, an adversary must be able to overwrite the
//! automaton's state mid-run with arbitrary values. This module gives
//! stabilizing automata a uniform, finite register view of their state so
//! a corruption pass can enumerate or sample the whole (bounded) state
//! space without knowing the concrete `State` type:
//!
//! * [`RegisterSpec`] names one register and its inclusive domain
//!   `0..=max`.
//! * [`Corruptible`] maps between `Automaton::State` and a register
//!   vector. `state_from_registers` must accept *every* in-domain vector
//!   — including unreachable combinations — because stabilization is
//!   exactly the promise that unreachable states still converge.
//!
//! The register encoding is also the contract for exhaustive small-state
//! tests: the product of `(max + 1)` over all registers is the number of
//! corrupted states to enumerate.

use crate::automaton::Automaton;

/// One named register of a [`Corruptible`] automaton with inclusive
/// domain `0..=max`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegisterSpec {
    /// Stable register name, used in diagnostics and corruption reports.
    pub name: &'static str,
    /// Largest legal value; the domain is `0..=max`.
    pub max: u64,
}

impl RegisterSpec {
    /// Builds a spec for a register with domain `0..=max`.
    #[must_use]
    pub const fn new(name: &'static str, max: u64) -> Self {
        Self { name, max }
    }

    /// Number of values in the register's domain.
    #[must_use]
    pub const fn domain_size(&self) -> u64 {
        self.max.saturating_add(1)
    }
}

/// An automaton whose state can be serialized to and rebuilt from a
/// bounded register vector, enabling state-corruption adversaries.
///
/// Implementations must uphold:
///
/// * `registers()` is constant for a given automaton instance;
/// * `state_to_registers` produces values within each register's domain
///   for every state the automaton can reach;
/// * `state_from_registers` accepts every in-domain vector and returns a
///   state the automaton can continue from (clamping or normalizing
///   internally if needed — it must not panic);
/// * round trip: `state_from_registers(state_to_registers(s))` is
///   behaviorally equivalent to `s` for reachable `s`.
pub trait Corruptible: Automaton {
    /// Register layout of this automaton's state.
    fn registers(&self) -> Vec<RegisterSpec>;

    /// Rebuilds a state from a register vector.
    ///
    /// `regs` has one entry per [`Self::registers`] spec; out-of-domain
    /// values are clamped to the register's domain rather than rejected,
    /// so any `u64` vector of the right length yields a usable state.
    fn state_from_registers(&self, regs: &[u64]) -> Self::State;

    /// Serializes a state into its register vector.
    fn state_to_registers(&self, state: &Self::State) -> Vec<u64>;

    /// Total number of distinct register vectors (the corrupted-state
    /// space an exhaustive test enumerates), saturating at `u64::MAX`.
    fn corrupted_state_count(&self) -> u64 {
        self.registers()
            .iter()
            .fold(1u64, |acc, r| acc.saturating_mul(r.domain_size()))
    }
}

/// Enumerates every register vector of `specs` in lexicographic order,
/// least-significant register first.
///
/// Intended for exhaustive small-state tests; the caller is responsible
/// for keeping the product of domain sizes small.
#[must_use]
pub fn enumerate_register_vectors(specs: &[RegisterSpec]) -> Vec<Vec<u64>> {
    let mut out = vec![vec![0u64; specs.len()]];
    for (i, spec) in specs.iter().enumerate() {
        let mut next = Vec::with_capacity(out.len() * spec.domain_size() as usize);
        for v in 0..=spec.max {
            for base in &out {
                let mut regs = base.clone();
                regs[i] = v;
                next.push(regs);
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionClass;
    use crate::automaton::StepError;

    #[derive(Clone, Debug, PartialEq, Eq)]
    enum Act {
        Tick,
    }

    struct Counter {
        cap: u64,
    }

    impl Automaton for Counter {
        type Action = Act;
        type State = u64;

        fn initial_state(&self) -> u64 {
            0
        }
        fn classify(&self, _a: &Act) -> Option<ActionClass> {
            Some(ActionClass::Internal)
        }
        fn enabled(&self, s: &u64) -> Vec<Act> {
            if *s < self.cap {
                vec![Act::Tick]
            } else {
                Vec::new()
            }
        }
        fn step(&self, s: &u64, _a: &Act) -> Result<u64, StepError> {
            Ok((s + 1).min(self.cap))
        }
    }

    impl Corruptible for Counter {
        fn registers(&self) -> Vec<RegisterSpec> {
            vec![RegisterSpec::new("count", self.cap)]
        }
        fn state_from_registers(&self, regs: &[u64]) -> u64 {
            regs.first().copied().unwrap_or(0).min(self.cap)
        }
        fn state_to_registers(&self, state: &u64) -> Vec<u64> {
            vec![*state]
        }
    }

    #[test]
    fn round_trips_and_clamps() {
        let c = Counter { cap: 3 };
        assert_eq!(c.state_from_registers(&c.state_to_registers(&2)), 2);
        assert_eq!(c.state_from_registers(&[99]), 3);
        assert_eq!(c.state_from_registers(&[]), 0);
        assert_eq!(c.corrupted_state_count(), 4);
    }

    #[test]
    fn enumeration_covers_the_product_space() {
        let specs = [RegisterSpec::new("a", 1), RegisterSpec::new("b", 2)];
        let all = enumerate_register_vectors(&specs);
        assert_eq!(all.len(), 6);
        let mut seen: Vec<_> = all.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 6, "no duplicate vectors");
        assert!(all.iter().all(|r| r[0] <= 1 && r[1] <= 2));
    }

    #[test]
    fn domain_size_saturates() {
        assert_eq!(RegisterSpec::new("x", u64::MAX).domain_size(), u64::MAX);
    }
}
