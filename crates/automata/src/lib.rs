//! I/O automata and timed I/O automata.
//!
//! This crate implements the formal model in which Wang & Zuck's
//! *Real-Time Sequence Transmission Problem* (Yale TR-856, 1991) states its
//! results: the I/O automata of Lynch and Tuttle (\[LT87\], \[LT89\]) extended
//! with the timing machinery of Merritt, Modugno and Tuttle (\[MMT90\]).
//!
//! The model, briefly (paper §2):
//!
//! * An **I/O automaton** has three disjoint action sets — *input*, *output*
//!   and *internal* — plus states, a start state, a transition relation that
//!   is **input-enabled** (every input action is applicable in every state),
//!   and a fairness partition of its locally controlled actions.
//! * **Composition** `A ∘ B` synchronizes shared actions: an output of one
//!   matching an input of the other becomes a single event of the composite.
//! * An **execution** is an alternating sequence `s0 π1 s1 π2 …` of states and
//!   actions; its **behavior** is its restriction to external actions.
//! * A **timing** assigns a nondecreasing real time to every event, starting
//!   at 0 and growing without bound on infinite executions. A **timed
//!   execution** pairs an execution with a timing; a *timing property* is a
//!   set of timed executions (here: step bounds `[c1, c2]` on local events and
//!   the delivery bound `d` on channels).
//!
//! # Organization
//!
//! | module | contents |
//! |---|---|
//! | [`time`] | integer tick clock: [`Time`], [`TimeDelta`] |
//! | [`action`] | [`ActionClass`], action-set signatures |
//! | [`automaton`] | the [`Automaton`] trait and determinism checks |
//! | [`composition`] | binary composition [`Compose`] and compatibility checks |
//! | [`corrupt`] | [`Corruptible`] register view for state-corruption adversaries |
//! | [`execution`] | untimed executions, validation, behaviors, restriction |
//! | [`timed`] | timings, timed executions, the timing axioms |
//! | [`fairness`] | fairness of finite executions |
//!
//! # Example
//!
//! A trivial one-action automaton and a validated execution:
//!
//! ```
//! use rstp_automata::{ActionClass, Automaton, Execution, StepError};
//!
//! #[derive(Clone, Debug, PartialEq, Eq)]
//! enum Act { Tick }
//!
//! struct Counter;
//!
//! impl Automaton for Counter {
//!     type Action = Act;
//!     type State = u32;
//!
//!     fn initial_state(&self) -> u32 { 0 }
//!     fn classify(&self, _a: &Act) -> Option<ActionClass> {
//!         Some(ActionClass::Internal)
//!     }
//!     fn enabled(&self, _s: &u32) -> Vec<Act> { vec![Act::Tick] }
//!     fn step(&self, s: &u32, _a: &Act) -> Result<u32, StepError> { Ok(s + 1) }
//! }
//!
//! let mut exec = Execution::new(Counter.initial_state());
//! let s1 = Counter.step(exec.last_state(), &Act::Tick).unwrap();
//! exec.push(Act::Tick, s1);
//! assert!(exec.validate(&Counter).is_ok());
//! assert_eq!(*exec.last_state(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod action;
pub mod automaton;
pub mod boundmap;
pub mod composition;
pub mod corrupt;
pub mod execution;
pub mod explore;
pub mod fairness;
pub mod time;
pub mod timed;

pub use action::ActionClass;
pub use automaton::{Automaton, DeterminismError, StepError};
pub use boundmap::{check_class_spacing, BoundMap, BoundMapError};
pub use composition::{CompatibilityError, Compose, Side};
pub use corrupt::{enumerate_register_vectors, Corruptible, RegisterSpec};
pub use execution::{Execution, ExecutionError};
pub use explore::{explore, Exploration, ExploreError};
pub use fairness::{finite_fairness, FairnessVerdict};
pub use time::{Time, TimeDelta};
pub use timed::{TimedExecution, Timing, TimingAxiomError};
