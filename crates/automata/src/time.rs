//! The integer tick clock.
//!
//! The paper assigns events real nonnegative times. We use an integer tick
//! clock instead: the timing constants `(c1, c2, d)` are rationals in every
//! experiment, so they can be scaled to integers, and all of the paper's
//! bounds are homogeneous of degree one in `(c1, c2, d)` — multiplying all
//! three by the same factor multiplies effort by that factor and changes
//! nothing else. Integer time keeps every simulation exact and every run
//! reproducible bit-for-bit.
//!
//! [`Time`] is an absolute instant; [`TimeDelta`] is a duration. Arithmetic
//! that could overflow is checked and panics with a clear message in debug
//! *and* release builds (an overflowing clock is a logic error, never data).

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An absolute instant on the simulation clock, in ticks since time zero.
///
/// Paper §2.2: timings map events to nonnegative reals starting at 0.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time(u64);

/// A nonnegative duration in ticks.
///
/// The problem constants `c1`, `c2` and `d` of the paper are `TimeDelta`s.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimeDelta(u64);

impl Time {
    /// Time zero — the time of the first event of every timed execution.
    pub const ZERO: Time = Time(0);

    /// The greatest representable instant.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant from a raw tick count.
    #[must_use]
    pub const fn from_ticks(ticks: u64) -> Self {
        Time(ticks)
    }

    /// Returns the raw tick count.
    #[must_use]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Duration since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    #[must_use]
    pub fn since(self, earlier: Time) -> TimeDelta {
        TimeDelta(
            self.0
                .checked_sub(earlier.0)
                .expect("Time::since: `earlier` is after `self`"),
        )
    }

    /// Duration since an earlier instant, or `None` if `earlier > self`.
    #[must_use]
    pub fn checked_since(self, earlier: Time) -> Option<TimeDelta> {
        self.0.checked_sub(earlier.0).map(TimeDelta)
    }

    /// Adds a duration, returning `None` on overflow.
    #[must_use]
    pub fn checked_add(self, delta: TimeDelta) -> Option<Time> {
        self.0.checked_add(delta.0).map(Time)
    }

    /// Adds a duration, clamping at [`Time::MAX`].
    #[must_use]
    pub fn saturating_add(self, delta: TimeDelta) -> Time {
        Time(self.0.saturating_add(delta.0))
    }
}

impl TimeDelta {
    /// The zero duration.
    pub const ZERO: TimeDelta = TimeDelta(0);

    /// The greatest representable duration.
    pub const MAX: TimeDelta = TimeDelta(u64::MAX);

    /// Creates a duration from a raw tick count.
    #[must_use]
    pub const fn from_ticks(ticks: u64) -> Self {
        TimeDelta(ticks)
    }

    /// Returns the raw tick count.
    #[must_use]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Whether this is the zero duration.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked multiplication by a step count.
    #[must_use]
    pub fn checked_mul(self, n: u64) -> Option<TimeDelta> {
        self.0.checked_mul(n).map(TimeDelta)
    }

    /// `ceil(self / unit)` — the least number of `unit`-length steps whose
    /// total length is at least `self`.
    ///
    /// This is the paper's `δ1 = d / c1` (the *maximum* number of steps a
    /// process can take in `d` time units) generalized to the case where
    /// `unit` does not divide `self` exactly: a protocol that must wait *at
    /// least* `d` needs `ceil(d / c1)` steps of length `>= c1`.
    ///
    /// # Panics
    ///
    /// Panics if `unit` is zero.
    #[must_use]
    pub fn div_ceil(self, unit: TimeDelta) -> u64 {
        assert!(!unit.is_zero(), "TimeDelta::div_ceil: zero unit");
        self.0.div_ceil(unit.0)
    }

    /// `floor(self / unit)` — the greatest number of `unit`-length steps that
    /// fit inside `self`.
    ///
    /// This is the paper's `δ2 = d / c2` (the *minimum* number of steps a
    /// process takes in `d` time units) generalized to inexact division.
    ///
    /// # Panics
    ///
    /// Panics if `unit` is zero.
    #[must_use]
    pub fn div_floor(self, unit: TimeDelta) -> u64 {
        assert!(!unit.is_zero(), "TimeDelta::div_floor: zero unit");
        self.0 / unit.0
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl Add<TimeDelta> for Time {
    type Output = Time;

    fn add(self, rhs: TimeDelta) -> Time {
        Time(
            self.0
                .checked_add(rhs.0)
                .expect("Time + TimeDelta overflowed"),
        )
    }
}

impl AddAssign<TimeDelta> for Time {
    fn add_assign(&mut self, rhs: TimeDelta) {
        *self = *self + rhs;
    }
}

impl Sub<TimeDelta> for Time {
    type Output = Time;

    fn sub(self, rhs: TimeDelta) -> Time {
        Time(
            self.0
                .checked_sub(rhs.0)
                .expect("Time - TimeDelta underflowed"),
        )
    }
}

impl Sub<Time> for Time {
    type Output = TimeDelta;

    fn sub(self, rhs: Time) -> TimeDelta {
        self.since(rhs)
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;

    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.checked_add(rhs.0).expect("TimeDelta + overflowed"))
    }
}

impl AddAssign for TimeDelta {
    fn add_assign(&mut self, rhs: TimeDelta) {
        *self = *self + rhs;
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;

    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.checked_sub(rhs.0).expect("TimeDelta - underflowed"))
    }
}

impl SubAssign for TimeDelta {
    fn sub_assign(&mut self, rhs: TimeDelta) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for TimeDelta {
    type Output = TimeDelta;

    fn mul(self, rhs: u64) -> TimeDelta {
        TimeDelta(self.0.checked_mul(rhs).expect("TimeDelta * overflowed"))
    }
}

impl Mul<TimeDelta> for u64 {
    type Output = TimeDelta;

    fn mul(self, rhs: TimeDelta) -> TimeDelta {
        rhs * self
    }
}

impl Div<TimeDelta> for TimeDelta {
    type Output = u64;

    /// Floor division: how many whole `rhs` fit in `self`.
    fn div(self, rhs: TimeDelta) -> u64 {
        self.div_floor(rhs)
    }
}

impl Rem<TimeDelta> for TimeDelta {
    type Output = TimeDelta;

    fn rem(self, rhs: TimeDelta) -> TimeDelta {
        assert!(!rhs.is_zero(), "TimeDelta % zero");
        TimeDelta(self.0 % rhs.0)
    }
}

impl Sum for TimeDelta {
    fn sum<I: Iterator<Item = TimeDelta>>(iter: I) -> TimeDelta {
        iter.fold(TimeDelta::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(Time::default(), Time::ZERO);
        assert_eq!(TimeDelta::default(), TimeDelta::ZERO);
    }

    #[test]
    fn roundtrips_ticks() {
        assert_eq!(Time::from_ticks(42).ticks(), 42);
        assert_eq!(TimeDelta::from_ticks(7).ticks(), 7);
    }

    #[test]
    fn add_sub_time() {
        let t = Time::from_ticks(10) + TimeDelta::from_ticks(5);
        assert_eq!(t, Time::from_ticks(15));
        assert_eq!(t - TimeDelta::from_ticks(15), Time::ZERO);
        assert_eq!(t - Time::from_ticks(10), TimeDelta::from_ticks(5));
    }

    #[test]
    fn since_and_checked_since() {
        let a = Time::from_ticks(3);
        let b = Time::from_ticks(9);
        assert_eq!(b.since(a), TimeDelta::from_ticks(6));
        assert_eq!(b.checked_since(a), Some(TimeDelta::from_ticks(6)));
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_when_reversed() {
        let _ = Time::from_ticks(1).since(Time::from_ticks(2));
    }

    #[test]
    fn checked_add_overflow() {
        assert_eq!(Time::MAX.checked_add(TimeDelta::from_ticks(1)), None);
        assert_eq!(
            Time::ZERO.checked_add(TimeDelta::from_ticks(1)),
            Some(Time::from_ticks(1))
        );
        assert_eq!(
            Time::MAX.saturating_add(TimeDelta::from_ticks(9)),
            Time::MAX
        );
    }

    #[test]
    fn delta_arithmetic() {
        let c = TimeDelta::from_ticks(4);
        assert_eq!(c + c, TimeDelta::from_ticks(8));
        assert_eq!(c - TimeDelta::from_ticks(1), TimeDelta::from_ticks(3));
        assert_eq!(c * 3, TimeDelta::from_ticks(12));
        assert_eq!(3 * c, TimeDelta::from_ticks(12));
        assert_eq!(TimeDelta::from_ticks(13) / c, 3);
        assert_eq!(TimeDelta::from_ticks(13) % c, TimeDelta::from_ticks(1));
    }

    #[test]
    fn div_ceil_and_floor_model_delta1_delta2() {
        // Exact division: both agree with the paper's d/c.
        let d = TimeDelta::from_ticks(12);
        assert_eq!(d.div_ceil(TimeDelta::from_ticks(3)), 4);
        assert_eq!(d.div_floor(TimeDelta::from_ticks(3)), 4);
        // Inexact: delta1 rounds up (enough fast steps to cover d),
        // delta2 rounds down (fewest slow steps inside d).
        assert_eq!(d.div_ceil(TimeDelta::from_ticks(5)), 3);
        assert_eq!(d.div_floor(TimeDelta::from_ticks(5)), 2);
    }

    #[test]
    fn delta_sum() {
        let total: TimeDelta = (1..=4).map(TimeDelta::from_ticks).sum();
        assert_eq!(total, TimeDelta::from_ticks(10));
    }

    #[test]
    fn ordering() {
        assert!(Time::from_ticks(1) < Time::from_ticks(2));
        assert!(TimeDelta::from_ticks(1) < TimeDelta::from_ticks(2));
    }

    #[test]
    fn display() {
        assert_eq!(Time::from_ticks(5).to_string(), "t=5");
        assert_eq!(TimeDelta::from_ticks(5).to_string(), "5t");
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn add_overflow_panics() {
        let _ = Time::MAX + TimeDelta::from_ticks(1);
    }
}
