//! The [`Automaton`] trait — paper §2.1's I/O automaton as a Rust interface.
//!
//! An implementation supplies the start state, the on-demand action
//! classification (`in`/`out`/`int`), the set of locally controlled actions
//! enabled in a state, the transition function, and the fairness partition.
//!
//! Protocol automata in this repository (the transmitter, receiver, and
//! channel of RSTP) implement this trait with *explicit
//! precondition/effect structure* mirroring the paper's figures; the
//! simulator drives them exclusively through this interface, so a protocol
//! cannot read the global clock or peek at its peer's state.

use crate::action::ActionClass;
use core::fmt;

/// Why a transition could not be taken.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepError {
    /// The action is not in `acts(A)` at all.
    UnknownAction {
        /// Debug rendering of the offending action.
        action: String,
    },
    /// A locally controlled action whose precondition is false in the given
    /// state. (Input actions can never fail this way — input-enabledness.)
    PreconditionFalse {
        /// Debug rendering of the offending action.
        action: String,
        /// Human-readable reason from the automaton.
        reason: String,
    },
}

impl fmt::Display for StepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepError::UnknownAction { action } => {
                write!(f, "action {action} is not in acts(A)")
            }
            StepError::PreconditionFalse { action, reason } => {
                write!(f, "precondition of {action} is false: {reason}")
            }
        }
    }
}

impl std::error::Error for StepError {}

/// An I/O automaton (paper §2.1).
///
/// The transition relation is represented by [`step`](Automaton::step)
/// (partial function: `None`-like failure via [`StepError`]) together with
/// [`enabled`](Automaton::enabled) (which local actions may fire). All
/// automata in this crate family are *deterministic* in the paper's sense —
/// at most one local action enabled per state and at most one post-state per
/// (state, action) — which [`check_deterministic`] can verify along an
/// execution.
pub trait Automaton {
    /// The action alphabet this automaton participates in. Composable
    /// automata share one action type.
    type Action: Clone + fmt::Debug + PartialEq;
    /// The automaton's state.
    type State: Clone + fmt::Debug;

    /// The start state (`start(A)`; our automata have a unique start state).
    fn initial_state(&self) -> Self::State;

    /// Classifies `action`: `Some(class)` if `action ∈ acts(A)`, else `None`.
    ///
    /// The classification must be state-independent, and the three classes
    /// must be disjoint by construction (a total function cannot overlap).
    fn classify(&self, action: &Self::Action) -> Option<ActionClass>;

    /// The locally controlled actions enabled in `state`.
    ///
    /// For a deterministic automaton this has length 0 or 1. The returned
    /// actions must all be classified [`ActionClass::Output`] or
    /// [`ActionClass::Internal`].
    fn enabled(&self, state: &Self::State) -> Vec<Self::Action>;

    /// Applies `action` to `state`.
    ///
    /// Must succeed for every input action in every state
    /// (**input-enabledness**, paper §2.1 item 3). For local actions it must
    /// succeed exactly when the action's precondition holds.
    fn step(&self, state: &Self::State, action: &Self::Action) -> Result<Self::State, StepError>;

    /// The index of the fairness class of a local action
    /// (`fair(A)` is a partition of `loc(A)`; paper §2.1 item 4).
    ///
    /// The default puts all local actions in a single class, which is the
    /// fairness partition used by every protocol in the paper ("the fairness
    /// partition of `(A_t^α, A_r^α)` has all the local actions in one
    /// class").
    fn fairness_class(&self, action: &Self::Action) -> usize {
        let _ = action;
        0
    }
}

/// A violation of determinism found by [`check_deterministic`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeterminismError {
    /// Debug rendering of the state at which the violation occurred.
    pub state: String,
    /// Debug renderings of the simultaneously enabled local actions.
    pub enabled: Vec<String>,
}

impl fmt::Display for DeterminismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} local actions enabled simultaneously in state {}: {:?}",
            self.enabled.len(),
            self.state,
            self.enabled
        )
    }
}

impl std::error::Error for DeterminismError {}

/// Checks the determinism condition of paper §2.1 in a single state: at most
/// one local action enabled.
///
/// # Errors
///
/// Returns a [`DeterminismError`] naming the state and the enabled actions
/// if more than one local action is enabled.
pub fn check_deterministic<A: Automaton>(
    automaton: &A,
    state: &A::State,
) -> Result<(), DeterminismError> {
    let enabled = automaton.enabled(state);
    if enabled.len() > 1 {
        return Err(DeterminismError {
            state: format!("{state:?}"),
            enabled: enabled.iter().map(|a| format!("{a:?}")).collect(),
        });
    }
    Ok(())
}

/// Verifies that every action reported by [`Automaton::enabled`] is locally
/// controlled and actually applicable via [`Automaton::step`].
///
/// This is the well-formedness obligation connecting the two halves of the
/// transition-relation encoding.
///
/// # Errors
///
/// Returns a human-readable description of the first inconsistency.
pub fn check_enabled_consistent<A: Automaton>(
    automaton: &A,
    state: &A::State,
) -> Result<(), String> {
    for action in automaton.enabled(state) {
        match automaton.classify(&action) {
            Some(class) if class.is_local() => {}
            Some(class) => {
                return Err(format!(
                    "enabled action {action:?} is classified {class}, not local"
                ));
            }
            None => {
                return Err(format!("enabled action {action:?} is not in acts(A)"));
            }
        }
        if let Err(e) = automaton.step(state, &action) {
            return Err(format!(
                "enabled action {action:?} failed to apply in state {state:?}: {e}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toggle with one internal action, used to exercise the checkers.
    struct Toggle {
        /// When true, both actions are (incorrectly) enabled at once.
        buggy: bool,
    }

    #[derive(Clone, Debug, PartialEq, Eq)]
    enum Act {
        On,
        Off,
        Poke, // input
    }

    impl Automaton for Toggle {
        type Action = Act;
        type State = bool;

        fn initial_state(&self) -> bool {
            false
        }

        fn classify(&self, action: &Act) -> Option<ActionClass> {
            Some(match action {
                Act::On | Act::Off => ActionClass::Internal,
                Act::Poke => ActionClass::Input,
            })
        }

        fn enabled(&self, state: &bool) -> Vec<Act> {
            if self.buggy {
                vec![Act::On, Act::Off]
            } else if *state {
                vec![Act::Off]
            } else {
                vec![Act::On]
            }
        }

        fn step(&self, state: &bool, action: &Act) -> Result<bool, StepError> {
            match action {
                Act::Poke => Ok(*state), // input-enabled: always applicable
                Act::On if !*state => Ok(true),
                Act::Off if *state => Ok(false),
                _ => Err(StepError::PreconditionFalse {
                    action: format!("{action:?}"),
                    reason: "toggle already in target position".into(),
                }),
            }
        }
    }

    #[test]
    fn deterministic_toggle_passes() {
        let t = Toggle { buggy: false };
        let s = t.initial_state();
        assert!(check_deterministic(&t, &s).is_ok());
        assert!(check_enabled_consistent(&t, &s).is_ok());
    }

    #[test]
    fn buggy_toggle_fails_determinism() {
        let t = Toggle { buggy: true };
        let err = check_deterministic(&t, &false).unwrap_err();
        assert_eq!(err.enabled.len(), 2);
        assert!(err.to_string().contains("enabled simultaneously"));
    }

    #[test]
    fn buggy_toggle_fails_consistency() {
        // In state `false`, `Off`'s precondition is false yet it is reported
        // enabled — check_enabled_consistent must object.
        let t = Toggle { buggy: true };
        let err = check_enabled_consistent(&t, &false).unwrap_err();
        assert!(err.contains("failed to apply"), "{err}");
    }

    #[test]
    fn input_always_applicable() {
        let t = Toggle { buggy: false };
        assert_eq!(t.step(&false, &Act::Poke), Ok(false));
        assert_eq!(t.step(&true, &Act::Poke), Ok(true));
    }

    #[test]
    fn default_fairness_is_one_class() {
        let t = Toggle { buggy: false };
        assert_eq!(t.fairness_class(&Act::On), 0);
        assert_eq!(t.fairness_class(&Act::Off), 0);
    }

    #[test]
    fn step_error_display() {
        let e = StepError::UnknownAction { action: "X".into() };
        assert_eq!(e.to_string(), "action X is not in acts(A)");
        let e = StepError::PreconditionFalse {
            action: "Y".into(),
            reason: "nope".into(),
        };
        assert!(e.to_string().contains("precondition of Y"));
    }
}
