//! Action classification.
//!
//! Paper §2.1: an I/O automaton `A` partitions the actions it participates in
//! into three mutually disjoint sets `in(A)`, `out(A)` and `int(A)`. Input
//! actions are imposed on the automaton by its environment; output and
//! internal actions — together the *locally controlled* actions `loc(A)` —
//! are under the automaton's own control.
//!
//! Because action universes are typically infinite (or at least large), we do
//! not represent the sets extensionally. Instead every [`Automaton`]
//! classifies actions on demand through [`Automaton::classify`], returning an
//! [`ActionClass`] for actions in `acts(A)` and `None` for the rest.
//!
//! [`Automaton`]: crate::automaton::Automaton
//! [`Automaton::classify`]: crate::automaton::Automaton::classify

use core::fmt;

/// The class of an action relative to one automaton: `in`, `out` or `int`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ActionClass {
    /// `in(A)` — imposed by the environment; must be enabled in every state.
    Input,
    /// `out(A)` — locally controlled, visible to the environment.
    Output,
    /// `int(A)` — locally controlled, invisible to the environment.
    Internal,
}

impl ActionClass {
    /// Whether the action is locally controlled (`loc(A) = out(A) ∪ int(A)`).
    #[must_use]
    pub const fn is_local(self) -> bool {
        matches!(self, ActionClass::Output | ActionClass::Internal)
    }

    /// Whether the action is external (`in(A) ∪ out(A)`), i.e. appears in
    /// behaviors.
    #[must_use]
    pub const fn is_external(self) -> bool {
        matches!(self, ActionClass::Input | ActionClass::Output)
    }
}

impl fmt::Display for ActionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ActionClass::Input => "input",
            ActionClass::Output => "output",
            ActionClass::Internal => "internal",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality() {
        assert!(!ActionClass::Input.is_local());
        assert!(ActionClass::Output.is_local());
        assert!(ActionClass::Internal.is_local());
    }

    #[test]
    fn externality() {
        assert!(ActionClass::Input.is_external());
        assert!(ActionClass::Output.is_external());
        assert!(!ActionClass::Internal.is_external());
    }

    #[test]
    fn display() {
        assert_eq!(ActionClass::Input.to_string(), "input");
        assert_eq!(ActionClass::Output.to_string(), "output");
        assert_eq!(ActionClass::Internal.to_string(), "internal");
    }
}
