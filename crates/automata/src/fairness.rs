//! Fairness of finite executions (paper §2.1).
//!
//! A *finite* execution is fair iff no locally controlled action is enabled
//! from its final state — the automaton has genuinely quiesced rather than
//! being cut off mid-run. (The paper's infinite-execution clause — every
//! fairness class fires or is disabled infinitely often — has no finite
//! witness; the simulator instead runs until quiescence or a step budget and
//! reports which.)

use crate::automaton::Automaton;
use crate::execution::Execution;
use core::fmt;

/// The fairness status of a finite execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FairnessVerdict {
    /// No local action is enabled at the final state: the execution is fair.
    Quiescent,
    /// Local actions remain enabled; the execution is an unfair (truncated)
    /// prefix. Carries the debug renderings of the enabled actions.
    Truncated {
        /// Debug renderings of the still-enabled local actions.
        enabled: Vec<String>,
    },
}

impl FairnessVerdict {
    /// Whether the execution is fair (quiescent).
    #[must_use]
    pub fn is_fair(&self) -> bool {
        matches!(self, FairnessVerdict::Quiescent)
    }
}

impl fmt::Display for FairnessVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FairnessVerdict::Quiescent => f.write_str("fair (quiescent)"),
            FairnessVerdict::Truncated { enabled } => {
                write!(f, "unfair prefix; still enabled: {enabled:?}")
            }
        }
    }
}

/// Decides fairness of a finite execution per paper §2.1 clause 1.
pub fn finite_fairness<M>(
    automaton: &M,
    execution: &Execution<M::State, M::Action>,
) -> FairnessVerdict
where
    M: Automaton,
{
    let enabled = automaton.enabled(execution.last_state());
    if enabled.is_empty() {
        FairnessVerdict::Quiescent
    } else {
        FairnessVerdict::Truncated {
            enabled: enabled.iter().map(|a| format!("{a:?}")).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionClass;
    use crate::automaton::StepError;

    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Emit;

    /// Emits exactly `limit` outputs, then quiesces.
    struct Bounded {
        limit: u32,
    }

    impl Automaton for Bounded {
        type Action = Emit;
        type State = u32;

        fn initial_state(&self) -> u32 {
            0
        }

        fn classify(&self, _action: &Emit) -> Option<ActionClass> {
            Some(ActionClass::Output)
        }

        fn enabled(&self, state: &u32) -> Vec<Emit> {
            if *state < self.limit {
                vec![Emit]
            } else {
                vec![]
            }
        }

        fn step(&self, state: &u32, _action: &Emit) -> Result<u32, StepError> {
            if *state < self.limit {
                Ok(state + 1)
            } else {
                Err(StepError::PreconditionFalse {
                    action: "Emit".into(),
                    reason: "limit reached".into(),
                })
            }
        }
    }

    #[test]
    fn complete_run_is_fair() {
        let m = Bounded { limit: 2 };
        let mut e = Execution::new(0);
        e.push(Emit, 1);
        e.push(Emit, 2);
        let v = finite_fairness(&m, &e);
        assert!(v.is_fair());
        assert_eq!(v.to_string(), "fair (quiescent)");
    }

    #[test]
    fn truncated_run_is_unfair() {
        let m = Bounded { limit: 2 };
        let mut e = Execution::new(0);
        e.push(Emit, 1);
        let v = finite_fairness(&m, &e);
        assert!(!v.is_fair());
        assert!(matches!(v, FairnessVerdict::Truncated { ref enabled } if enabled.len() == 1));
    }

    #[test]
    fn empty_run_of_quiescent_automaton_is_fair() {
        let m = Bounded { limit: 0 };
        let e: Execution<u32, Emit> = Execution::new(0);
        assert!(finite_fairness(&m, &e).is_fair());
    }
}
