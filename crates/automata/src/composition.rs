//! Composition of I/O automata (paper §2.1).
//!
//! Two automata `A` and `B` over the same action alphabet are *composable*
//! when their only mutual actions are input-of-one matching output-of-the-
//! other, or input of both. Their composition `A ∘ B`:
//!
//! * outputs: `out(A) ∪ out(B)`; internals: `int(A) ∪ int(B)`;
//!   inputs: `(in(A) ∪ in(B)) − (out(A) ∪ out(B))`,
//! * states: pairs of component states,
//! * a step on action `π` moves exactly the components with `π ∈ acts(·)`,
//! * fairness classes are inherited disjointly from the components.
//!
//! Action universes are not enumerable, so composability cannot be checked
//! globally; [`Compose::check_composable_on`] validates it over any finite
//! sample of actions (our tests pass the full concrete alphabet of each
//! protocol), and [`Compose::classify`] additionally rejects locally
//! controlled action sharing whenever it observes it.

use crate::action::ActionClass;
use crate::automaton::{Automaton, StepError};
use core::fmt;

/// Which component of a composition an item refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// The left component (`A` in `A ∘ B`).
    Left,
    /// The right component (`B` in `A ∘ B`).
    Right,
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Side::Left => "left",
            Side::Right => "right",
        })
    }
}

/// A composability violation detected on a concrete action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompatibilityError {
    /// The action is an output of both components.
    SharedOutput {
        /// Debug rendering of the action.
        action: String,
    },
    /// The action is internal to one component yet known to the other.
    SharedInternal {
        /// Debug rendering of the action.
        action: String,
        /// Which component claims the action as internal.
        internal_side: Side,
    },
}

impl fmt::Display for CompatibilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompatibilityError::SharedOutput { action } => {
                write!(f, "action {action} is an output of both components")
            }
            CompatibilityError::SharedInternal {
                action,
                internal_side,
            } => write!(
                f,
                "action {action} is internal to the {internal_side} component but shared"
            ),
        }
    }
}

impl std::error::Error for CompatibilityError {}

/// The composition `A ∘ B` of two I/O automata over one action alphabet.
///
/// # Example
///
/// Composing a one-shot sender with a latch that receives its output:
///
/// ```
/// use rstp_automata::{ActionClass, Automaton, Compose, StepError};
///
/// #[derive(Clone, Debug, PartialEq, Eq)]
/// enum Act { Fire }
///
/// struct Sender;
/// impl Automaton for Sender {
///     type Action = Act;
///     type State = bool; // fired?
///     fn initial_state(&self) -> bool { false }
///     fn classify(&self, _: &Act) -> Option<ActionClass> { Some(ActionClass::Output) }
///     fn enabled(&self, s: &bool) -> Vec<Act> {
///         if *s { vec![] } else { vec![Act::Fire] }
///     }
///     fn step(&self, s: &bool, _: &Act) -> Result<bool, StepError> {
///         if *s {
///             Err(StepError::PreconditionFalse {
///                 action: "Fire".into(),
///                 reason: "already fired".into(),
///             })
///         } else {
///             Ok(true)
///         }
///     }
/// }
///
/// struct Latch;
/// impl Automaton for Latch {
///     type Action = Act;
///     type State = bool; // latched?
///     fn initial_state(&self) -> bool { false }
///     fn classify(&self, _: &Act) -> Option<ActionClass> { Some(ActionClass::Input) }
///     fn enabled(&self, _: &bool) -> Vec<Act> { vec![] }
///     fn step(&self, _: &bool, _: &Act) -> Result<bool, StepError> { Ok(true) }
/// }
///
/// let sys = Compose::new(Sender, Latch);
/// sys.check_composable_on([Act::Fire]).unwrap();
/// let s0 = sys.initial_state();
/// let s1 = sys.step(&s0, &Act::Fire).unwrap();
/// assert_eq!(s1, (true, true)); // one event moved both components
/// // Fire is an output of the composite, not an input:
/// assert_eq!(sys.classify(&Act::Fire), Some(ActionClass::Output));
/// ```
#[derive(Clone, Debug)]
pub struct Compose<L, R> {
    left: L,
    right: R,
}

impl<L, R> Compose<L, R> {
    /// Composes two automata. Composability over any concrete action set can
    /// be verified with [`Compose::check_composable_on`].
    pub fn new(left: L, right: R) -> Self {
        Compose { left, right }
    }

    /// The left component.
    pub fn left(&self) -> &L {
        &self.left
    }

    /// The right component.
    pub fn right(&self) -> &R {
        &self.right
    }

    /// Consumes the composition, returning the components.
    pub fn into_parts(self) -> (L, R) {
        (self.left, self.right)
    }
}

impl<A, L, R> Compose<L, R>
where
    A: Clone + fmt::Debug + PartialEq,
    L: Automaton<Action = A>,
    R: Automaton<Action = A>,
{
    /// Verifies the composability conditions of paper §2.1 on a finite
    /// sample of actions.
    ///
    /// # Errors
    ///
    /// Returns the first [`CompatibilityError`] found: a shared output, or an
    /// internal action of one component known to the other.
    pub fn check_composable_on<I>(&self, actions: I) -> Result<(), CompatibilityError>
    where
        I: IntoIterator<Item = A>,
    {
        for action in actions {
            let l = self.left.classify(&action);
            let r = self.right.classify(&action);
            match (l, r) {
                (Some(ActionClass::Output), Some(ActionClass::Output)) => {
                    return Err(CompatibilityError::SharedOutput {
                        action: format!("{action:?}"),
                    });
                }
                (Some(ActionClass::Internal), Some(_)) => {
                    return Err(CompatibilityError::SharedInternal {
                        action: format!("{action:?}"),
                        internal_side: Side::Left,
                    });
                }
                (Some(_), Some(ActionClass::Internal)) => {
                    return Err(CompatibilityError::SharedInternal {
                        action: format!("{action:?}"),
                        internal_side: Side::Right,
                    });
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Which side(s) participate in `action`.
    pub fn participants(&self, action: &A) -> (bool, bool) {
        (
            self.left.classify(action).is_some(),
            self.right.classify(action).is_some(),
        )
    }
}

impl<A, L, R> Automaton for Compose<L, R>
where
    A: Clone + fmt::Debug + PartialEq,
    L: Automaton<Action = A>,
    R: Automaton<Action = A>,
{
    type Action = A;
    type State = (L::State, R::State);

    fn initial_state(&self) -> Self::State {
        (self.left.initial_state(), self.right.initial_state())
    }

    fn classify(&self, action: &A) -> Option<ActionClass> {
        match (self.left.classify(action), self.right.classify(action)) {
            (None, None) => None,
            (Some(c), None) | (None, Some(c)) => Some(c),
            (Some(l), Some(r)) => {
                // Shared action: by composability it is input/input or
                // input/output; an output of either side is an output of the
                // composite, and input/input stays input.
                debug_assert!(
                    l != ActionClass::Internal && r != ActionClass::Internal,
                    "internal action {action:?} shared between components"
                );
                if l == ActionClass::Output || r == ActionClass::Output {
                    Some(ActionClass::Output)
                } else {
                    Some(ActionClass::Input)
                }
            }
        }
    }

    fn enabled(&self, state: &Self::State) -> Vec<A> {
        let mut actions = self.left.enabled(&state.0);
        actions.extend(self.right.enabled(&state.1));
        actions
    }

    fn step(&self, state: &Self::State, action: &A) -> Result<Self::State, StepError> {
        let (in_left, in_right) = self.participants(action);
        if !in_left && !in_right {
            return Err(StepError::UnknownAction {
                action: format!("{action:?}"),
            });
        }
        let next_left = if in_left {
            self.left.step(&state.0, action)?
        } else {
            state.0.clone()
        };
        let next_right = if in_right {
            self.right.step(&state.1, action)?
        } else {
            state.1.clone()
        };
        Ok((next_left, next_right))
    }

    fn fairness_class(&self, action: &A) -> usize {
        // loc(A) and loc(B) are disjoint for composable automata, so exactly
        // one side owns a local action; interleave their class indices to
        // keep the partitions disjoint (paper §2.1 item 4 of composition).
        match (self.left.classify(action), self.right.classify(action)) {
            (Some(c), _) if c.is_local() => self.left.fairness_class(action) * 2,
            (_, Some(c)) if c.is_local() => self.right.fairness_class(action) * 2 + 1,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq, Eq)]
    enum Act {
        Ping,
        Pong,
        Tick(Side),
    }

    /// Emits Ping, waits for Pong.
    struct PingSide;
    /// Waits for Ping, emits Pong.
    struct PongSide;

    impl Automaton for PingSide {
        type Action = Act;
        type State = (bool, bool); // (pinged, ponged)

        fn initial_state(&self) -> Self::State {
            (false, false)
        }

        fn classify(&self, action: &Act) -> Option<ActionClass> {
            match action {
                Act::Ping => Some(ActionClass::Output),
                Act::Pong => Some(ActionClass::Input),
                Act::Tick(Side::Left) => Some(ActionClass::Internal),
                Act::Tick(Side::Right) => None,
            }
        }

        fn enabled(&self, state: &Self::State) -> Vec<Act> {
            if !state.0 {
                vec![Act::Ping]
            } else {
                vec![]
            }
        }

        fn step(&self, state: &Self::State, action: &Act) -> Result<Self::State, StepError> {
            match action {
                Act::Ping => Ok((true, state.1)),
                Act::Pong => Ok((state.0, true)),
                Act::Tick(_) => Ok(*state),
            }
        }
    }

    impl Automaton for PongSide {
        type Action = Act;
        type State = (bool, bool); // (saw ping, sent pong)

        fn initial_state(&self) -> Self::State {
            (false, false)
        }

        fn classify(&self, action: &Act) -> Option<ActionClass> {
            match action {
                Act::Ping => Some(ActionClass::Input),
                Act::Pong => Some(ActionClass::Output),
                Act::Tick(Side::Right) => Some(ActionClass::Internal),
                Act::Tick(Side::Left) => None,
            }
        }

        fn enabled(&self, state: &Self::State) -> Vec<Act> {
            if state.0 && !state.1 {
                vec![Act::Pong]
            } else {
                vec![]
            }
        }

        fn step(&self, state: &Self::State, action: &Act) -> Result<Self::State, StepError> {
            match action {
                Act::Ping => Ok((true, state.1)),
                Act::Pong => Ok((state.0, true)),
                Act::Tick(_) => Ok(*state),
            }
        }
    }

    fn all_actions() -> Vec<Act> {
        vec![
            Act::Ping,
            Act::Pong,
            Act::Tick(Side::Left),
            Act::Tick(Side::Right),
        ]
    }

    #[test]
    fn ping_pong_is_composable() {
        let sys = Compose::new(PingSide, PongSide);
        sys.check_composable_on(all_actions()).unwrap();
    }

    #[test]
    fn classification_follows_the_paper() {
        let sys = Compose::new(PingSide, PongSide);
        // Output of one + input of the other => output of the composite.
        assert_eq!(sys.classify(&Act::Ping), Some(ActionClass::Output));
        assert_eq!(sys.classify(&Act::Pong), Some(ActionClass::Output));
        // Internal actions stay internal.
        assert_eq!(
            sys.classify(&Act::Tick(Side::Left)),
            Some(ActionClass::Internal)
        );
    }

    #[test]
    fn shared_action_moves_both_components() {
        let sys = Compose::new(PingSide, PongSide);
        let s0 = sys.initial_state();
        let s1 = sys.step(&s0, &Act::Ping).unwrap();
        assert_eq!(s1, ((true, false), (true, false)));
        let s2 = sys.step(&s1, &Act::Pong).unwrap();
        assert_eq!(s2, ((true, true), (true, true)));
    }

    #[test]
    fn unshared_action_moves_one_component() {
        let sys = Compose::new(PingSide, PongSide);
        let s0 = sys.initial_state();
        let s1 = sys.step(&s0, &Act::Tick(Side::Left)).unwrap();
        assert_eq!(s1, s0); // Tick is a no-op but must not touch the right side
    }

    #[test]
    fn unknown_action_rejected() {
        let sys = Compose::new(PingSide, PingSide);
        // For Compose<PingSide, PingSide>, Tick(Right) is known to neither.
        let err = sys.step(&sys.initial_state(), &Act::Tick(Side::Right));
        assert!(matches!(err, Err(StepError::UnknownAction { .. })));
    }

    #[test]
    fn shared_output_detected() {
        let sys = Compose::new(PingSide, PingSide);
        let err = sys.check_composable_on(all_actions()).unwrap_err();
        assert!(matches!(err, CompatibilityError::SharedOutput { .. }));
        assert!(err.to_string().contains("output of both"));
    }

    #[test]
    fn enabled_unions_components() {
        let sys = Compose::new(PingSide, PongSide);
        let s0 = sys.initial_state();
        assert_eq!(sys.enabled(&s0), vec![Act::Ping]);
        let s1 = sys.step(&s0, &Act::Ping).unwrap();
        assert_eq!(sys.enabled(&s1), vec![Act::Pong]);
        let s2 = sys.step(&s1, &Act::Pong).unwrap();
        assert!(sys.enabled(&s2).is_empty());
    }

    #[test]
    fn fairness_classes_disjoint() {
        let sys = Compose::new(PingSide, PongSide);
        let left = sys.fairness_class(&Act::Ping);
        let right = sys.fairness_class(&Act::Pong);
        assert_ne!(left, right);
        assert_eq!(left % 2, 0);
        assert_eq!(right % 2, 1);
    }

    #[test]
    fn into_parts_roundtrip() {
        let sys = Compose::new(PingSide, PongSide);
        let _ = sys.left();
        let _ = sys.right();
        let (_l, _r) = sys.into_parts();
    }
}
