//! Lexicographic enumeration of `multi_k(n)`.
//!
//! [`MultisetIter`] yields every multiset of size `n` over `{0, …, k-1}` in
//! the same lexicographic order [`crate::MultisetCodec`] ranks them — so
//! `iter.nth(r)` equals `codec.unrank(r)`. Used by the exhaustive checkers
//! (Lemma 5.1, codec bijectivity) and handy for downstream brute-force
//! verification.

use crate::multiset::Multiset;

/// Iterator over all multisets of size `n` over a `k`-symbol universe, in
/// lexicographic order of their sorted linearizations.
///
/// # Example
///
/// ```
/// use rstp_combinatorics::{mu, MultisetIter};
///
/// let all: Vec<_> = MultisetIter::new(3, 2).collect();
/// assert_eq!(all.len() as u128, mu(3, 2).unwrap());
/// assert_eq!(all[0].to_sorted_vec(), vec![0, 0]);
/// assert_eq!(all[5].to_sorted_vec(), vec![2, 2]);
/// ```
#[derive(Clone, Debug)]
pub struct MultisetIter {
    k: u64,
    /// The current sorted linearization; `None` once exhausted.
    current: Option<Vec<u64>>,
}

impl MultisetIter {
    /// Creates the iterator. Panics if `k == 0` and `n > 0` (no multisets
    /// exist over an empty universe).
    ///
    /// # Panics
    ///
    /// If `k == 0` and `n > 0`.
    #[must_use]
    pub fn new(k: u64, n: u64) -> Self {
        assert!(
            k > 0 || n == 0,
            "no multisets of positive size over an empty universe"
        );
        MultisetIter {
            k: k.max(1),
            current: Some(vec![0; usize::try_from(n).expect("n fits usize")]),
        }
    }

    /// Advances `seq` to the lexicographically next nondecreasing sequence,
    /// or returns `false` when exhausted.
    fn advance(k: u64, seq: &mut [u64]) -> bool {
        // Find the rightmost position that can be incremented.
        let n = seq.len();
        for i in (0..n).rev() {
            if seq[i] + 1 < k {
                let v = seq[i] + 1;
                for s in seq.iter_mut().skip(i) {
                    *s = v;
                }
                return true;
            }
        }
        false
    }
}

impl Iterator for MultisetIter {
    type Item = Multiset;

    fn next(&mut self) -> Option<Multiset> {
        let seq = self.current.as_mut()?;
        let item = Multiset::from_symbols(self.k, seq);
        if !Self::advance(self.k, seq) {
            self.current = None;
        }
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::mu;
    use crate::rank::MultisetCodec;

    #[test]
    fn count_matches_mu() {
        for k in 1..=5u64 {
            for n in 0..=6u64 {
                let count = MultisetIter::new(k, n).count() as u128;
                assert_eq!(count, mu(k, n).unwrap(), "k={k} n={n}");
            }
        }
    }

    #[test]
    fn order_matches_codec_rank() {
        for k in 1..=4u64 {
            for n in 0..=5u64 {
                let codec = MultisetCodec::new(k, n).unwrap();
                for (i, m) in MultisetIter::new(k, n).enumerate() {
                    assert_eq!(codec.rank(&m).unwrap(), i as u128, "k={k} n={n} i={i}");
                    assert_eq!(codec.unrank(i as u128).unwrap(), m);
                }
            }
        }
    }

    #[test]
    fn size_zero_yields_exactly_the_empty_multiset() {
        let all: Vec<_> = MultisetIter::new(4, 0).collect();
        assert_eq!(all.len(), 1);
        assert!(all[0].is_empty());
    }

    #[test]
    fn empty_universe_size_zero_is_fine() {
        assert_eq!(MultisetIter::new(0, 0).count(), 1);
    }

    #[test]
    #[should_panic(expected = "empty universe")]
    fn empty_universe_positive_size_panics() {
        let _ = MultisetIter::new(0, 3);
    }

    #[test]
    fn sequences_are_nondecreasing_and_strictly_increasing_lexicographically() {
        let seqs: Vec<Vec<u64>> = MultisetIter::new(3, 4).map(|m| m.to_sorted_vec()).collect();
        for s in &seqs {
            assert!(s.windows(2).all(|w| w[0] <= w[1]));
        }
        for w in seqs.windows(2) {
            assert!(w[0] < w[1], "not strictly increasing: {w:?}");
        }
    }
}
