//! Exact counting: binomials, `μ_k(n)`, `ζ_k(n)`, and integer logarithms.
//!
//! Paper §3:
//!
//! * `|multi_k(n)| = μ_k(n) = C(n+k-1, k-1)` — multisets of size `n` over a
//!   universe of `k` symbols;
//! * `ζ_k(n) = Σ_{j=1..n} μ_k(j)` — multisets of size at most `n` (and at
//!   least 1), the denominator of the lower-bound theorems;
//! * the protocols pack `⌊log2 μ_k(n)⌋` bits into one size-`n` multiset
//!   ([`block_bits`]).
//!
//! Everything is computed exactly in `u128` with overflow detection.

use core::fmt;

/// Error for counting operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CountError {
    /// The exact value does not fit in `u128`.
    Overflow {
        /// Which quantity overflowed, e.g. `"C(200, 100)"`.
        what: String,
    },
    /// A parameter is outside its domain (e.g. `k = 0`).
    Domain {
        /// Human-readable description of the violated constraint.
        what: String,
    },
}

impl fmt::Display for CountError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CountError::Overflow { what } => write!(f, "{what} exceeds u128"),
            CountError::Domain { what } => write!(f, "domain error: {what}"),
        }
    }
}

impl std::error::Error for CountError {}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// The binomial coefficient `C(n, r)`, exactly.
///
/// Uses the multiplicative formula with per-step GCD reduction so that the
/// intermediate never exceeds `result * (n - r + i)` reduced by common
/// factors; overflow of the true value is still reported.
///
/// # Errors
///
/// [`CountError::Overflow`] if `C(n, r)` does not fit in `u128`.
pub fn binomial(n: u64, r: u64) -> Result<u128, CountError> {
    if r > n {
        return Ok(0);
    }
    let r = r.min(n - r);
    let mut acc: u128 = 1;
    for i in 1..=r {
        // acc <- acc * (n - r + i) / i ; the division is exact after the
        // loop body because C(n-r+i, i) is an integer. Reduce first to keep
        // intermediates small.
        let mut num = u128::from(n - r + i);
        let mut den = u128::from(i);
        let g = gcd(acc, den);
        let acc_red = acc / g;
        den /= g;
        let g2 = gcd(num, den);
        num /= g2;
        den /= g2;
        debug_assert_eq!(den, 1, "binomial division not exact after reduction");
        acc = acc_red
            .checked_mul(num)
            .ok_or_else(|| CountError::Overflow {
                what: format!("C({n}, {r})"),
            })?;
    }
    Ok(acc)
}

/// `μ_k(n) = C(n+k-1, k-1)` — the number of multisets of size `n` over a
/// `k`-symbol universe (paper §3).
///
/// `μ_k(0) = 1` (the empty multiset), matching the combinatorial convention;
/// the paper only uses `n ≥ 1`.
///
/// # Errors
///
/// [`CountError::Domain`] if `k = 0`; [`CountError::Overflow`] if the value
/// exceeds `u128`.
pub fn mu(k: u64, n: u64) -> Result<u128, CountError> {
    if k == 0 {
        return Err(CountError::Domain {
            what: "mu: universe size k must be >= 1".into(),
        });
    }
    let nk = n.checked_add(k - 1).ok_or_else(|| CountError::Overflow {
        what: format!("mu({k}, {n}) parameter n+k-1"),
    })?;
    binomial(nk, k - 1)
}

/// `ζ_k(n) = Σ_{j=1..n} μ_k(j)` — the number of nonempty multisets of size
/// at most `n` over a `k`-symbol universe (paper §3).
///
/// Satisfies `ζ_k(n) ≤ n · μ_k(n)`, the estimate the paper uses to relate
/// the two bound forms.
///
/// # Errors
///
/// [`CountError::Domain`] if `k = 0`; [`CountError::Overflow`] on `u128`
/// overflow of the sum.
pub fn zeta(k: u64, n: u64) -> Result<u128, CountError> {
    let mut total: u128 = 0;
    for j in 1..=n {
        total = total
            .checked_add(mu(k, j)?)
            .ok_or_else(|| CountError::Overflow {
                what: format!("zeta({k}, {n})"),
            })?;
    }
    Ok(total)
}

/// `⌊log2 x⌋` for `x ≥ 1`.
///
/// # Panics
///
/// Panics if `x == 0` (the logarithm is undefined).
#[must_use]
pub fn log2_floor(x: u128) -> u32 {
    assert!(x > 0, "log2_floor(0) is undefined");
    127 - x.leading_zeros()
}

/// `⌈log2 x⌉` for `x ≥ 1`.
///
/// # Panics
///
/// Panics if `x == 0`.
#[must_use]
pub fn log2_ceil(x: u128) -> u32 {
    assert!(x > 0, "log2_ceil(0) is undefined");
    if x == 1 {
        0
    } else {
        log2_floor(x - 1) + 1
    }
}

/// `log2` of a `u128` as `f64`, exact to f64 precision — used by the
/// real-valued bound formulas (`log2 ζ_k(δ)` in Theorems 5.3 / 5.6).
#[must_use]
pub fn log2_f64(x: u128) -> f64 {
    assert!(x > 0, "log2_f64(0) is undefined");
    // Split into high/low 64-bit halves to keep f64 conversion accurate.
    if x <= u128::from(u64::MAX) {
        (x as f64).log2()
    } else {
        let bits = log2_floor(x);
        let shift = bits - 52; // keep a 53-bit mantissa
        let top = (x >> shift) as f64;
        top.log2() + f64::from(shift)
    }
}

/// The number of binary messages packed into one size-`n` multiset over a
/// `k`-symbol alphabet: `⌊log2 μ_k(n)⌋` (paper §6, the block length of
/// `A^β(k)` and `A^γ(k)`).
///
/// # Errors
///
/// Propagates [`mu`]'s errors. Additionally returns
/// [`CountError::Domain`] if `μ_k(n) = 1` (i.e. `k = 1` or `n = 0`), since a
/// one-element code carries no information.
pub fn block_bits(k: u64, n: u64) -> Result<u32, CountError> {
    let m = mu(k, n)?;
    if m < 2 {
        return Err(CountError::Domain {
            what: format!("block_bits({k}, {n}): mu = {m} carries no information"),
        });
    }
    Ok(log2_floor(m))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force multiset count by enumeration (stars and bars check).
    fn mu_brute(k: u64, n: u64) -> u128 {
        // Count nondecreasing sequences of length n over {0..k-1}
        // recursively.
        fn rec(remaining: u64, lo: u64, k: u64) -> u128 {
            if remaining == 0 {
                return 1;
            }
            (lo..k).map(|s| rec(remaining - 1, s, k)).sum()
        }
        rec(n, 0, k)
    }

    #[test]
    fn binomial_small_table() {
        assert_eq!(binomial(0, 0).unwrap(), 1);
        assert_eq!(binomial(5, 0).unwrap(), 1);
        assert_eq!(binomial(5, 5).unwrap(), 1);
        assert_eq!(binomial(5, 2).unwrap(), 10);
        assert_eq!(binomial(10, 3).unwrap(), 120);
        assert_eq!(binomial(52, 5).unwrap(), 2_598_960);
        assert_eq!(binomial(3, 7).unwrap(), 0);
    }

    #[test]
    fn binomial_pascal_identity() {
        for n in 1..40u64 {
            for r in 1..n {
                let lhs = binomial(n, r).unwrap();
                let rhs = binomial(n - 1, r - 1).unwrap() + binomial(n - 1, r).unwrap();
                assert_eq!(lhs, rhs, "Pascal fails at C({n},{r})");
            }
        }
    }

    #[test]
    fn binomial_symmetry() {
        for n in 0..30u64 {
            for r in 0..=n {
                assert_eq!(binomial(n, r).unwrap(), binomial(n, n - r).unwrap());
            }
        }
    }

    #[test]
    fn binomial_large_exact() {
        // C(128, 64), cross-checked by Pascal's rule below and against
        // independent big-integer computation.
        assert_eq!(
            binomial(128, 64).unwrap(),
            23_951_146_041_928_082_866_135_587_776_380_551_750
        );
        // Consistency with Pascal at the boundary of the table test above.
        assert_eq!(
            binomial(128, 64).unwrap(),
            binomial(127, 63).unwrap() + binomial(127, 64).unwrap()
        );
    }

    #[test]
    fn binomial_overflow_detected() {
        let err = binomial(600, 300).unwrap_err();
        assert!(matches!(err, CountError::Overflow { .. }));
        assert!(err.to_string().contains("exceeds u128"));
    }

    #[test]
    fn mu_matches_brute_force() {
        for k in 1..=4u64 {
            for n in 0..=6u64 {
                assert_eq!(mu(k, n).unwrap(), mu_brute(k, n), "mu({k},{n})");
            }
        }
    }

    #[test]
    fn mu_known_values() {
        // Paper's running example: mu_2(n) = n + 1.
        for n in 0..20u64 {
            assert_eq!(mu(2, n).unwrap(), u128::from(n) + 1);
        }
        assert_eq!(mu(3, 2).unwrap(), 6);
        assert_eq!(mu(1, 9).unwrap(), 1);
        assert_eq!(mu(16, 64).unwrap(), binomial(79, 15).unwrap());
    }

    #[test]
    fn mu_rejects_empty_universe() {
        assert!(matches!(mu(0, 3), Err(CountError::Domain { .. })));
    }

    #[test]
    fn zeta_matches_definition() {
        for k in 1..=5u64 {
            for n in 1..=8u64 {
                let direct: u128 = (1..=n).map(|j| mu(k, j).unwrap()).sum();
                assert_eq!(zeta(k, n).unwrap(), direct);
            }
        }
        assert_eq!(zeta(2, 3).unwrap(), 2 + 3 + 4);
        assert_eq!(zeta(4, 0).unwrap(), 0);
    }

    #[test]
    fn zeta_upper_estimate_from_paper() {
        // The paper notes zeta_k(n) <= n * mu_k(n) since mu is increasing.
        for k in 2..=6u64 {
            for n in 1..=10u64 {
                assert!(zeta(k, n).unwrap() <= u128::from(n) * mu(k, n).unwrap());
            }
        }
    }

    #[test]
    fn mu_monotone_in_both_arguments() {
        for k in 2..=6u64 {
            for n in 1..=10u64 {
                assert!(mu(k, n).unwrap() < mu(k, n + 1).unwrap());
                assert!(mu(k, n).unwrap() < mu(k + 1, n).unwrap());
            }
        }
    }

    #[test]
    fn log2_floor_and_ceil() {
        assert_eq!(log2_floor(1), 0);
        assert_eq!(log2_floor(2), 1);
        assert_eq!(log2_floor(3), 1);
        assert_eq!(log2_floor(4), 2);
        assert_eq!(log2_floor(u128::MAX), 127);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn log2_floor_zero_panics() {
        let _ = log2_floor(0);
    }

    #[test]
    fn log2_f64_accuracy() {
        assert!((log2_f64(1024) - 10.0).abs() < 1e-12);
        let big = u128::MAX;
        assert!((log2_f64(big) - 128.0).abs() < 1e-9);
        let c = binomial(128, 64).unwrap();
        let expected = 124.1714; // log2 C(128,64)
        assert!((log2_f64(c) - expected).abs() < 0.001, "{}", log2_f64(c));
    }

    #[test]
    fn block_bits_examples() {
        // k=2, n=7: mu = 8 -> 3 bits per block of 7 packets.
        assert_eq!(block_bits(2, 7).unwrap(), 3);
        // k=4, n=4: mu_4(4) = C(7,3) = 35 -> 5 bits.
        assert_eq!(block_bits(4, 4).unwrap(), 5);
        // Degenerate alphabets carry nothing.
        assert!(matches!(block_bits(1, 5), Err(CountError::Domain { .. })));
        assert!(matches!(block_bits(2, 0), Err(CountError::Domain { .. })));
    }

    #[test]
    fn block_bits_is_floor_log() {
        for k in 2..=8u64 {
            for n in 1..=12u64 {
                let m = mu(k, n).unwrap();
                let b = block_bits(k, n).unwrap();
                assert!(u128::from(2u64).pow(b) <= m);
                assert!(u128::from(2u64).pow(b + 1) > m);
            }
        }
    }
}
