//! Multisets over finite alphabets and the counting functions of
//! Wang & Zuck's RSTP paper (§3).
//!
//! The paper's protocols encode blocks of binary messages as **multisets** of
//! packets, because the bounded-delay channel may reorder any burst of
//! packets whose delivery windows overlap — the multiset is exactly the
//! information that survives reordering. Three objects from §3:
//!
//! * `multi_k(n)` — the set of multisets of size `n` over `{0, …, k-1}`;
//!   its cardinality is `μ_k(n) = C(n+k-1, k-1)` ([`mu`]);
//! * `ζ_k(n) = Σ_{j=1..n} μ_k(j)` — multisets of size between 1 and `n`
//!   ([`zeta`]);
//! * `toseq_k(n)` — a linearization of a multiset into a `k`-ary sequence,
//!   and `tomulti_k(n)` — an injection from binary strings of length
//!   `⌊log2 μ_k(n)⌋` into `multi_k(n)`. Both are realized here by an exact
//!   lexicographic rank/unrank bijection ([`MultisetCodec`]).
//!
//! All counting is exact over checked `u128`; overflow is reported, never
//! wrapped. For every parameter used by the experiments (`k ≤ 64`,
//! `n ≤ 128`) the values fit comfortably.
//!
//! # Example
//!
//! ```
//! use rstp_combinatorics::{mu, zeta, Multiset, MultisetCodec};
//!
//! // μ_2(3) = C(4,1) = 4 multisets of size 3 over {0,1}.
//! assert_eq!(mu(2, 3).unwrap(), 4);
//! // ζ_2(3) = μ_2(1) + μ_2(2) + μ_2(3) = 2 + 3 + 4.
//! assert_eq!(zeta(2, 3).unwrap(), 9);
//!
//! // Rank/unrank is a bijection multi_k(n) <-> [0, μ_k(n)).
//! let codec = MultisetCodec::new(2, 3).unwrap();
//! for r in 0..4 {
//!     let m: Multiset = codec.unrank(r).unwrap();
//!     assert_eq!(codec.rank(&m).unwrap(), r);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod counting;
pub mod iter;
pub mod multiset;
pub mod rank;

pub use counting::{binomial, block_bits, log2_ceil, log2_f64, log2_floor, mu, zeta, CountError};
pub use iter::MultisetIter;
pub use multiset::Multiset;
pub use rank::{MultisetCodec, RankError};
