//! Lexicographic ranking of multisets — the computational heart of
//! `toseq_k(n)` / `tomulti_k(n)` (paper §3).
//!
//! The paper posits a one-to-one map `tomulti_k(n)` from binary strings of
//! length `⌊log2 μ_k(n)⌋` into `multi_k(n)` and a linearization `toseq_k(n)`
//! out of it, leaving the construction to the reader ("straightforward but
//! tedious"). We realize both with an exact bijection
//!
//! ```text
//! multi_k(n)  <-- rank/unrank -->  { 0, 1, …, μ_k(n) - 1 } ⊂ u128
//! ```
//!
//! A multiset corresponds to its sorted linearization — a nondecreasing
//! sequence `x_1 ≤ … ≤ x_n` over `{0, …, k-1}` — and ranks are assigned in
//! lexicographic order of that sequence. The count of nondecreasing
//! sequences of length `m` over the sub-alphabet `{s, …, k-1}` is
//! `μ_{k-s}(m)`, which gives the classic combinatorial number-system
//! algorithm.

use crate::counting::{mu, CountError};
use crate::multiset::Multiset;
use core::fmt;

/// Errors from [`MultisetCodec`] operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RankError {
    /// The multiset's size differs from the codec's `n`.
    WrongSize {
        /// Size the codec expects.
        expected: u64,
        /// Size of the offending multiset.
        actual: u64,
    },
    /// The multiset's universe differs from the codec's `k`.
    WrongUniverse {
        /// Universe the codec expects.
        expected: u64,
        /// Universe of the offending multiset.
        actual: u64,
    },
    /// The rank is `≥ μ_k(n)`.
    RankOutOfRange {
        /// The offending rank.
        rank: u128,
        /// The number of multisets, `μ_k(n)`.
        total: u128,
    },
    /// Counting overflowed `u128`.
    Count(CountError),
}

impl fmt::Display for RankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankError::WrongSize { expected, actual } => {
                write!(
                    f,
                    "multiset has {actual} elements, codec expects {expected}"
                )
            }
            RankError::WrongUniverse { expected, actual } => {
                write!(f, "multiset universe {actual}, codec expects {expected}")
            }
            RankError::RankOutOfRange { rank, total } => {
                write!(f, "rank {rank} out of range (μ = {total})")
            }
            RankError::Count(e) => write!(f, "counting failed: {e}"),
        }
    }
}

impl std::error::Error for RankError {}

impl From<CountError> for RankError {
    fn from(e: CountError) -> Self {
        RankError::Count(e)
    }
}

/// An exact bijection between `multi_k(n)` and `[0, μ_k(n))`.
///
/// Construct once per `(k, n)` pair; `rank`/`unrank` are then `O(n·k)` with
/// table-free exact arithmetic (μ values are recomputed per step; for the
/// protocol block sizes involved this is negligible, and it keeps the type
/// trivially `Send + Sync`).
///
/// # Example
///
/// ```
/// use rstp_combinatorics::{Multiset, MultisetCodec};
///
/// let codec = MultisetCodec::new(3, 2).unwrap(); // multisets of size 2 over {0,1,2}
/// assert_eq!(codec.total(), 6);
/// // Lexicographic order of sorted linearizations:
/// // {0,0} {0,1} {0,2} {1,1} {1,2} {2,2}
/// assert_eq!(codec.unrank(0).unwrap().to_sorted_vec(), vec![0, 0]);
/// assert_eq!(codec.unrank(3).unwrap().to_sorted_vec(), vec![1, 1]);
/// assert_eq!(codec.unrank(5).unwrap().to_sorted_vec(), vec![2, 2]);
/// ```
#[derive(Clone, Debug)]
pub struct MultisetCodec {
    k: u64,
    n: u64,
    total: u128,
}

impl MultisetCodec {
    /// Creates the codec for multisets of size `n` over `{0, …, k-1}`.
    ///
    /// # Errors
    ///
    /// [`CountError::Domain`] if `k = 0`, or overflow if `μ_k(n)` exceeds
    /// `u128`.
    pub fn new(k: u64, n: u64) -> Result<Self, CountError> {
        let total = mu(k, n)?;
        Ok(MultisetCodec { k, n, total })
    }

    /// Universe size `k`.
    #[must_use]
    pub fn universe(&self) -> u64 {
        self.k
    }

    /// Multiset size `n`.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.n
    }

    /// `μ_k(n)` — the number of multisets this codec ranges over.
    #[must_use]
    pub fn total(&self) -> u128 {
        self.total
    }

    fn check(&self, m: &Multiset) -> Result<(), RankError> {
        if m.universe() != self.k {
            return Err(RankError::WrongUniverse {
                expected: self.k,
                actual: m.universe(),
            });
        }
        if m.len() != self.n {
            return Err(RankError::WrongSize {
                expected: self.n,
                actual: m.len(),
            });
        }
        Ok(())
    }

    /// The lexicographic rank of `m` among all size-`n` multisets, in
    /// `[0, μ_k(n))`.
    ///
    /// # Errors
    ///
    /// [`RankError::WrongSize`] / [`RankError::WrongUniverse`] if `m` does
    /// not belong to `multi_k(n)`.
    pub fn rank(&self, m: &Multiset) -> Result<u128, RankError> {
        self.check(m)?;
        let seq = m.to_sorted_vec();
        let mut rank: u128 = 0;
        let mut lo: u64 = 0;
        for (i, &x) in seq.iter().enumerate() {
            let remaining = self.n - 1 - i as u64;
            for s in lo..x {
                // Sequences that agree on the prefix, place `s` here, and
                // continue nondecreasingly over {s, …, k-1}.
                rank += mu(self.k - s, remaining)?;
            }
            lo = x;
        }
        Ok(rank)
    }

    /// The multiset of rank `rank` (inverse of [`rank`](Self::rank)).
    ///
    /// # Errors
    ///
    /// [`RankError::RankOutOfRange`] if `rank ≥ μ_k(n)`.
    pub fn unrank(&self, rank: u128) -> Result<Multiset, RankError> {
        if rank >= self.total {
            return Err(RankError::RankOutOfRange {
                rank,
                total: self.total,
            });
        }
        let mut remaining_rank = rank;
        let mut m = Multiset::empty(self.k);
        let mut lo: u64 = 0;
        for i in 0..self.n {
            let remaining = self.n - 1 - i;
            let mut s = lo;
            loop {
                let block = mu(self.k - s, remaining)?;
                if remaining_rank < block {
                    break;
                }
                remaining_rank -= block;
                s += 1;
                debug_assert!(s < self.k, "unrank ran past the alphabet");
            }
            m.insert(s);
            lo = s;
        }
        debug_assert_eq!(remaining_rank, 0);
        Ok(m)
    }

    /// `toseq_k(n)`: the canonical linearization of `m` — its sorted symbol
    /// sequence (paper §3).
    ///
    /// # Errors
    ///
    /// Same domain checks as [`rank`](Self::rank).
    pub fn to_sequence(&self, m: &Multiset) -> Result<Vec<u64>, RankError> {
        self.check(m)?;
        Ok(m.to_sorted_vec())
    }

    /// Rebuilds the multiset from any linearization (order-insensitive, as
    /// the channel may deliver a burst in any order).
    ///
    /// # Errors
    ///
    /// [`RankError::WrongSize`] if the sequence length differs from `n`;
    /// [`RankError::WrongUniverse`] if a symbol is `≥ k`.
    pub fn from_sequence(&self, seq: &[u64]) -> Result<Multiset, RankError> {
        if seq.len() as u64 != self.n {
            return Err(RankError::WrongSize {
                expected: self.n,
                actual: seq.len() as u64,
            });
        }
        if let Some(&bad) = seq.iter().find(|&&s| s >= self.k) {
            return Err(RankError::WrongUniverse {
                expected: self.k,
                actual: bad + 1,
            });
        }
        Ok(Multiset::from_symbols(self.k, seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn all_multisets(k: u64, n: u64) -> Vec<Multiset> {
        // Enumerate nondecreasing sequences in lexicographic order.
        fn rec(k: u64, remaining: u64, lo: u64, prefix: &mut Vec<u64>, out: &mut Vec<Multiset>) {
            if remaining == 0 {
                out.push(Multiset::from_symbols(k, prefix));
                return;
            }
            for s in lo..k {
                prefix.push(s);
                rec(k, remaining - 1, s, prefix, out);
                prefix.pop();
            }
        }
        let mut out = Vec::new();
        rec(k, n, 0, &mut Vec::new(), &mut out);
        out
    }

    #[test]
    fn rank_is_lexicographic_and_bijective_small() {
        for k in 1..=4u64 {
            for n in 0..=5u64 {
                let codec = MultisetCodec::new(k, n).unwrap();
                let all = all_multisets(k, n);
                assert_eq!(all.len() as u128, codec.total(), "k={k} n={n}");
                for (expected_rank, m) in all.iter().enumerate() {
                    let r = codec.rank(m).unwrap();
                    assert_eq!(r, expected_rank as u128, "rank of {m:?} (k={k},n={n})");
                    let back = codec.unrank(r).unwrap();
                    assert_eq!(&back, m);
                }
            }
        }
    }

    #[test]
    fn unrank_rejects_out_of_range() {
        let codec = MultisetCodec::new(2, 3).unwrap();
        assert_eq!(codec.total(), 4);
        assert!(codec.unrank(3).is_ok());
        let err = codec.unrank(4).unwrap_err();
        assert!(matches!(err, RankError::RankOutOfRange { total: 4, .. }));
    }

    #[test]
    fn rank_rejects_wrong_shape() {
        let codec = MultisetCodec::new(3, 2).unwrap();
        let wrong_size = Multiset::from_symbols(3, &[0]);
        assert!(matches!(
            codec.rank(&wrong_size),
            Err(RankError::WrongSize {
                expected: 2,
                actual: 1
            })
        ));
        let wrong_universe = Multiset::from_symbols(4, &[0, 1]);
        assert!(matches!(
            codec.rank(&wrong_universe),
            Err(RankError::WrongUniverse {
                expected: 3,
                actual: 4
            })
        ));
    }

    #[test]
    fn sequences_roundtrip_and_tolerate_reorder() {
        let codec = MultisetCodec::new(4, 3).unwrap();
        let m = Multiset::from_symbols(4, &[2, 0, 2]);
        let seq = codec.to_sequence(&m).unwrap();
        assert_eq!(seq, vec![0, 2, 2]);
        // Any permutation reconstructs the same multiset.
        assert_eq!(codec.from_sequence(&[2, 2, 0]).unwrap(), m);
        assert_eq!(codec.from_sequence(&[2, 0, 2]).unwrap(), m);
    }

    #[test]
    fn from_sequence_validates() {
        let codec = MultisetCodec::new(2, 2).unwrap();
        assert!(matches!(
            codec.from_sequence(&[0]),
            Err(RankError::WrongSize { .. })
        ));
        assert!(matches!(
            codec.from_sequence(&[0, 5]),
            Err(RankError::WrongUniverse { .. })
        ));
    }

    #[test]
    fn extreme_ranks() {
        let codec = MultisetCodec::new(5, 4).unwrap();
        // Rank 0 is all-zeros; the last rank is all-(k-1).
        assert_eq!(codec.unrank(0).unwrap().to_sorted_vec(), vec![0, 0, 0, 0]);
        let last = codec.total() - 1;
        assert_eq!(
            codec.unrank(last).unwrap().to_sorted_vec(),
            vec![4, 4, 4, 4]
        );
    }

    #[test]
    fn error_display() {
        let codec = MultisetCodec::new(2, 2).unwrap();
        let e = codec.rank(&Multiset::from_symbols(2, &[0])).unwrap_err();
        assert!(e.to_string().contains("codec expects 2"));
    }

    proptest! {
        #[test]
        fn prop_roundtrip_rank_unrank(k in 1u64..8, n in 0u64..10, seed in any::<u64>()) {
            let codec = MultisetCodec::new(k, n).unwrap();
            let rank = u128::from(seed) % codec.total().max(1);
            let m = codec.unrank(rank).unwrap();
            prop_assert_eq!(m.len(), n);
            prop_assert_eq!(codec.rank(&m).unwrap(), rank);
        }

        #[test]
        fn prop_rank_respects_lex_order(k in 2u64..5, n in 1u64..6, a in any::<u64>(), b in any::<u64>()) {
            let codec = MultisetCodec::new(k, n).unwrap();
            let ra = u128::from(a) % codec.total();
            let rb = u128::from(b) % codec.total();
            let ma = codec.unrank(ra).unwrap().to_sorted_vec();
            let mb = codec.unrank(rb).unwrap().to_sorted_vec();
            // Lexicographic comparison of sorted sequences mirrors rank order.
            prop_assert_eq!(ra.cmp(&rb), ma.cmp(&mb));
        }

        #[test]
        fn prop_from_sequence_is_order_insensitive(
            k in 1u64..6,
            seq in proptest::collection::vec(0u64..6, 0..8),
            shuffle_seed in any::<u64>(),
        ) {
            let seq: Vec<u64> = seq.into_iter().map(|s| s % k).collect();
            let codec = MultisetCodec::new(k, seq.len() as u64).unwrap();
            let m1 = codec.from_sequence(&seq).unwrap();
            // Deterministic pseudo-shuffle.
            let mut shuffled = seq.clone();
            let mut state = shuffle_seed | 1;
            for i in (1..shuffled.len()).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                shuffled.swap(i, j);
            }
            let m2 = codec.from_sequence(&shuffled).unwrap();
            prop_assert_eq!(m1, m2);
        }
    }
}
