//! The [`Multiset`] type: a multiset over the universe `{0, …, k-1}`.
//!
//! Paper §3: a multiset over a universe `U` is a function `Q: U → ℕ`;
//! `mult(u, Q)` is the number of occurrences of `u`. RSTP's packet alphabets
//! are always `{0, …, k-1}`, so the universe is a prefix of the naturals and
//! the multiset is stored as a dense vector of counts.

use core::fmt;

/// A multiset over the universe `{0, …, k-1}` (`k` = universe size).
///
/// The representation is a dense count vector, so equality, union and
/// sub-multiset tests are `O(k)`.
///
/// # Example
///
/// ```
/// use rstp_combinatorics::Multiset;
///
/// let mut q = Multiset::empty(3);
/// q.insert(1);
/// q.insert(1);
/// q.insert(2);
/// assert_eq!(q.mult(1), 2);
/// assert_eq!(q.len(), 3);
/// assert_eq!(q.to_sorted_vec(), vec![1, 1, 2]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Multiset {
    counts: Vec<u64>,
}

impl Multiset {
    /// The empty multiset `∅` over a `k`-symbol universe.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`: the paper always has `k ≥ 2`, and an empty
    /// universe admits no multisets but the empty one, which would make
    /// every downstream computation degenerate.
    #[must_use]
    pub fn empty(k: u64) -> Self {
        assert!(k >= 1, "Multiset universe must have at least one symbol");
        Multiset {
            counts: vec![0; usize::try_from(k).expect("universe size fits usize")],
        }
    }

    /// Builds a multiset from a sequence of symbols (the inverse direction
    /// of `toseq`).
    ///
    /// # Panics
    ///
    /// Panics if any symbol is `>= k` — callers validate packets before
    /// accumulating them.
    #[must_use]
    pub fn from_symbols(k: u64, symbols: &[u64]) -> Self {
        let mut m = Multiset::empty(k);
        for &s in symbols {
            m.insert(s);
        }
        m
    }

    /// The universe size `k`.
    #[must_use]
    pub fn universe(&self) -> u64 {
        self.counts.len() as u64
    }

    /// `mult(u, Q)` — the multiplicity of `symbol`.
    ///
    /// Symbols outside the universe have multiplicity 0.
    #[must_use]
    pub fn mult(&self, symbol: u64) -> u64 {
        usize::try_from(symbol)
            .ok()
            .and_then(|i| self.counts.get(i))
            .copied()
            .unwrap_or(0)
    }

    /// Total number of elements (with multiplicity), `|Q|`.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether this is the empty multiset `∅`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// `Q ∪ {u}` in place (paper §3: bump the multiplicity of `u` by one).
    ///
    /// # Panics
    ///
    /// Panics if `symbol >= k`.
    pub fn insert(&mut self, symbol: u64) {
        let i = usize::try_from(symbol).expect("symbol fits usize");
        assert!(
            i < self.counts.len(),
            "symbol {symbol} outside universe of size {}",
            self.counts.len()
        );
        self.counts[i] += 1;
    }

    /// Removes one occurrence of `symbol`; returns whether one was present.
    pub fn remove(&mut self, symbol: u64) -> bool {
        match usize::try_from(symbol)
            .ok()
            .and_then(|i| self.counts.get_mut(i))
        {
            Some(c) if *c > 0 => {
                *c -= 1;
                true
            }
            _ => false,
        }
    }

    /// Resets to the empty multiset (the receiver's `A := ∅` at the end of a
    /// round).
    pub fn clear(&mut self) {
        self.counts.fill(0);
    }

    /// Sub-multiset test `self ⊆ other`: `mult(u, self) ≤ mult(u, other)`
    /// for every `u` (paper §3). Universes must agree.
    #[must_use]
    pub fn is_submultiset_of(&self, other: &Multiset) -> bool {
        self.universe() == other.universe()
            && self.counts.iter().zip(&other.counts).all(|(a, b)| a <= b)
    }

    /// Multiset union-with-sum: multiplicities add.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    #[must_use]
    pub fn sum(&self, other: &Multiset) -> Multiset {
        assert_eq!(
            self.universe(),
            other.universe(),
            "multiset sum over different universes"
        );
        Multiset {
            counts: self
                .counts
                .iter()
                .zip(&other.counts)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// The multiplicity vector, indexed by symbol.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Iterates over `(symbol, multiplicity)` pairs with positive
    /// multiplicity.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(s, &c)| (s as u64, c))
    }

    /// The canonical linearization: symbols in nondecreasing order, each
    /// repeated by its multiplicity. This is our `toseq_k(n)` (paper §3 asks
    /// only that the linearization contain `mult(j, P)` occurrences of each
    /// `j`; sorted order is the canonical choice).
    #[must_use]
    pub fn to_sorted_vec(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(usize::try_from(self.len()).unwrap_or(0));
        for (symbol, count) in self.iter() {
            for _ in 0..count {
                out.push(symbol);
            }
        }
        out
    }
}

impl fmt::Debug for Multiset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (symbol, count) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            if count == 1 {
                write!(f, "{symbol}")?;
            } else {
                write!(f, "{symbol}×{count}")?;
            }
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Multiset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_zero_of_everything() {
        let m = Multiset::empty(4);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.universe(), 4);
        for s in 0..6 {
            assert_eq!(m.mult(s), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one symbol")]
    fn zero_universe_rejected() {
        let _ = Multiset::empty(0);
    }

    #[test]
    fn insert_and_mult() {
        let mut m = Multiset::empty(3);
        m.insert(0);
        m.insert(2);
        m.insert(2);
        assert_eq!(m.mult(0), 1);
        assert_eq!(m.mult(1), 0);
        assert_eq!(m.mult(2), 2);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_universe_panics() {
        Multiset::empty(2).insert(2);
    }

    #[test]
    fn remove_behaviour() {
        let mut m = Multiset::from_symbols(3, &[1, 1]);
        assert!(m.remove(1));
        assert!(m.remove(1));
        assert!(!m.remove(1));
        assert!(!m.remove(0));
        assert!(!m.remove(99)); // outside universe: absent, not a panic
        assert!(m.is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut m = Multiset::from_symbols(2, &[0, 1, 1]);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.universe(), 2);
    }

    #[test]
    fn from_symbols_equals_inserts() {
        let a = Multiset::from_symbols(4, &[3, 0, 3]);
        let mut b = Multiset::empty(4);
        b.insert(3);
        b.insert(0);
        b.insert(3);
        assert_eq!(a, b);
    }

    #[test]
    fn submultiset() {
        let small = Multiset::from_symbols(3, &[1]);
        let big = Multiset::from_symbols(3, &[1, 1, 2]);
        assert!(small.is_submultiset_of(&big));
        assert!(!big.is_submultiset_of(&small));
        assert!(Multiset::empty(3).is_submultiset_of(&small));
        // Different universes are incomparable.
        assert!(!Multiset::empty(2).is_submultiset_of(&Multiset::empty(3)));
    }

    #[test]
    fn sum_adds_multiplicities() {
        let a = Multiset::from_symbols(3, &[0, 1]);
        let b = Multiset::from_symbols(3, &[1, 2]);
        let s = a.sum(&b);
        assert_eq!(s.to_sorted_vec(), vec![0, 1, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "different universes")]
    fn sum_universe_mismatch_panics() {
        let _ = Multiset::empty(2).sum(&Multiset::empty(3));
    }

    #[test]
    fn sorted_vec_is_nondecreasing_and_complete() {
        let m = Multiset::from_symbols(5, &[4, 0, 2, 2, 0]);
        let v = m.to_sorted_vec();
        assert_eq!(v, vec![0, 0, 2, 2, 4]);
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(Multiset::from_symbols(5, &v), m);
    }

    #[test]
    fn iter_skips_zero_counts() {
        let m = Multiset::from_symbols(4, &[0, 3]);
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs, vec![(0, 1), (3, 1)]);
    }

    #[test]
    fn debug_format() {
        let m = Multiset::from_symbols(4, &[1, 1, 3]);
        assert_eq!(format!("{m:?}"), "{1×2, 3}");
        assert_eq!(format!("{}", Multiset::empty(2)), "{}");
    }

    #[test]
    fn equality_is_by_counts_not_insertion_order() {
        let a = Multiset::from_symbols(3, &[0, 1, 2]);
        let b = Multiset::from_symbols(3, &[2, 1, 0]);
        assert_eq!(a, b);
    }
}
